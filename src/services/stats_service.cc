#include "src/services/stats_service.h"

#include <chrono>
#include <utility>
#include <vector>

#include "src/base/failpoint.h"
#include "src/base/strings.h"
#include "src/monitor/mediation_ring.h"
#include "src/naming/path.h"

namespace xsec {

StatsService::StatsService(Kernel* kernel, StatsServiceOptions options)
    : kernel_(kernel), options_(std::move(options)) {}

StatsService::StatsService(Kernel* kernel, std::string mount_path, std::string service_path)
    : kernel_(kernel) {
  options_.mount_path = std::move(mount_path);
  options_.service_path = std::move(service_path);
}

StatsService::~StatsService() {
  {
    std::lock_guard<std::mutex> lock(pub_mu_);
    stop_ = true;
  }
  pub_cv_.notify_all();
  if (publisher_.joinable()) {
    publisher_.join();
  }
}

Status StatsService::MountRing(MediationRing* ring) {
  auto count = [](uint64_t v) { return std::to_string(v); };
  XSEC_RETURN_IF_ERROR(
      MountLeaf("ring/shards", [ring, count] { return count(ring->shard_count()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("ring/depth", [ring, count] { return count(ring->depth()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("ring/batches", [ring, count] { return count(ring->batches()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("ring/submitted", [ring, count] { return count(ring->submitted()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("ring/completed", [ring, count] { return count(ring->completed()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("ring/stalls", [ring, count] { return count(ring->stalls()); }));
  return MountLeaf("ring/grant_rejections",
                   [ring, count] { return count(ring->grant_rejections()); });
}

Status StatsService::MountShards(ReferenceMonitor* monitor) {
  auto count = [](uint64_t v) { return std::to_string(v); };
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "shard/count", [count] { return count(kMonitorShardCount); }));
  for (ShardId i = 0; i < kMonitorShardCount; ++i) {
    std::string prefix = "shard/" + std::to_string(i) + "/";
    XSEC_RETURN_IF_ERROR(MountLeaf(prefix + "checks", [monitor, i, count] {
      return count(monitor->shard_checks(i));
    }));
    XSEC_RETURN_IF_ERROR(MountLeaf(prefix + "ns_gen", [monitor, i, count] {
      return count(monitor->CurrentStampsFor(i).namespace_generation);
    }));
    XSEC_RETURN_IF_ERROR(MountLeaf(prefix + "acl_gen", [monitor, i, count] {
      return count(monitor->CurrentStampsFor(i).acl_generation);
    }));
    XSEC_RETURN_IF_ERROR(MountLeaf(prefix + "label_epoch", [monitor, i, count] {
      return count(monitor->CurrentStampsFor(i).label_epoch);
    }));
  }
  return MountLeaf("shard/aggregate/checks", [monitor, count] {
    return count(monitor->shard_checks(kAggregateShard));
  });
}

Status StatsService::MountGrants(ShardGrantTable* grants) {
  auto count = [](uint64_t v) { return std::to_string(v); };
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "shard/grants/count", [grants, count] { return count(grants->grant_count()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "shard/grants/admitted", [grants, count] { return count(grants->admitted()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "shard/grants/rejected", [grants, count] { return count(grants->rejected()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf("shard/grants/transfers_consumed", [grants, count] {
    return count(grants->transfers_consumed());
  }));
  return MountLeaf("shard/grants/interned_names", [grants, count] {
    return count(grants->interned_names());
  });
}

Status StatsService::MountLeaf(const std::string& relative_path,
                               std::function<std::string()> render, bool in_dump) {
  std::string full = JoinPath(options_.mount_path, relative_path);
  auto node = kernel_->name_space().BindPath(full, NodeKind::kFile,
                                             kernel_->system_principal());
  if (!node.ok()) {
    return node.status();
  }
  std::unique_lock<std::shared_mutex> lock(values_mu_);
  values_.emplace(std::move(full), Leaf{*node, std::move(render), in_dump});
  return OkStatus();
}

Status StatsService::Install() {
  PrincipalId system = kernel_->system_principal();
  auto mount = kernel_->name_space().BindPath(options_.mount_path, NodeKind::kDirectory, system);
  if (!mount.ok()) {
    return mount.status();
  }
  // Fail-closed: telemetry reveals who was denied what, so the mount root
  // carries an own ACL (overriding any permissive inherited default) that
  // grants read|list to the system principal only. Administrators widen
  // visibility with ordinary AddAclEntry calls.
  Acl restricted;
  restricted.AddEntry({AclEntryType::kAllow, system, AccessMode::kRead | AccessMode::kList});
  XSEC_RETURN_IF_ERROR(
      kernel_->name_space().SetAclRef(*mount, kernel_->acls().Create(std::move(restricted))));

  ReferenceMonitor* monitor = &kernel_->monitor();
  MonitorStats* stats = &monitor->stats();
  DecisionCache* cache = &monitor->cache();
  AuditLog* audit = &monitor->audit();
  auto count = [](uint64_t v) { return std::to_string(v); };

  // The sanctioned multi-counter view and its version stamp. The snapshot
  // leaf is multi-line, so it is excluded from dumps; `version` does *not*
  // refresh the publication on read — it answers "has anything been
  // published since I last looked", which a self-refreshing value could not.
  XSEC_RETURN_IF_ERROR(
      MountLeaf("snapshot", [this] { return RenderSnapshot(); }, /*in_dump=*/false));
  XSEC_RETURN_IF_ERROR(MountLeaf("version", [this] { return std::to_string(version()); }));

  XSEC_RETURN_IF_ERROR(
      MountLeaf("checks/total", [stats, count] { return count(stats->checks_total()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("checks/allowed", [stats, count] { return count(stats->allowed_total()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("checks/denied", [stats, count] { return count(stats->denied_total()); }));
  for (int i = 0; i < kAccessModeCount; ++i) {
    AccessMode mode = static_cast<AccessMode>(1u << i);
    XSEC_RETURN_IF_ERROR(MountLeaf(
        StrFormat("checks/by-mode/%s", std::string(AccessModeName(mode)).c_str()),
        [stats, count, mode] { return count(stats->by_mode(mode)); }));
  }
  for (size_t r = 1; r < kDenyReasonCount; ++r) {  // skip kNone (that is an allow)
    DenyReason reason = static_cast<DenyReason>(r);
    XSEC_RETURN_IF_ERROR(MountLeaf(
        StrFormat("denials/by-reason/%s", std::string(DenyReasonName(reason)).c_str()),
        [stats, count, reason] { return count(stats->by_reason(reason)); }));
  }
  XSEC_RETURN_IF_ERROR(
      MountLeaf("cache/hits", [cache, count] { return count(cache->hits()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("cache/misses", [cache, count] { return count(cache->misses()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("cache/stale", [cache, count] { return count(cache->stale_hits()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf("cache/hit_rate", [cache] {
    uint64_t hits = cache->hits();
    uint64_t probes = hits + cache->misses();
    // Fixed 4-digit rendering with a locale-independent '.' radix point:
    // this leaf is machine-parsed (tools/xsec_stats, golden tests), and
    // printf "%f" follows the process locale's decimal separator.
    return FormatFixed(
        probes == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(probes), 4);
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "latency/p50", [stats, count] { return count(stats->LatencyQuantileNs(0.50)); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "latency/p90", [stats, count] { return count(stats->LatencyQuantileNs(0.90)); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "latency/p99", [stats, count] { return count(stats->LatencyQuantileNs(0.99)); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "latency/samples", [stats, count] { return count(stats->latency_samples()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "audit/retained", [audit, count] { return count(audit->retained()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("audit/dropped", [audit, count] { return count(audit->dropped()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "audit/sink_dropped", [audit, count] { return count(audit->sink_dropped()); }));
  // Resilient-sink health (MODEL.md §12): circuit state plus the retry /
  // give-up counters, and the allows that proceeded unaudited in fail-open
  // mode while the sink was down.
  XSEC_RETURN_IF_ERROR(
      MountLeaf("audit/sink_state", [audit] { return audit->sink_state(); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("audit/retries", [audit, count] { return count(audit->sink_retries()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("audit/gave_up", [audit, count] { return count(audit->sink_gave_up()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf("audit/unaudited_allows", [audit, count] {
    return count(audit->unaudited_allows());
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "subscribers/active", [this] { return std::to_string(active_subscribers()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf("subscribers/dropped", [this] {
    return std::to_string(subscriber_dropped_total());
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf("subscribers/quota_denied", [this] {
    return std::to_string(quota_denied_total());
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf("rate/checks_per_sec", [this] {
    MaybeTick();
    std::lock_guard<std::mutex> lock(pub_mu_);
    return FormatFixed(ChecksPerSecLocked(), 2);
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf("rate/denials_per_sec", [this] {
    MaybeTick();
    std::lock_guard<std::mutex> lock(pub_mu_);
    return FormatFixed(DenialsPerSecLocked(), 2);
  }));

  snapshot_node_ = values_.at(JoinPath(options_.mount_path, "snapshot")).node;

  auto svc = kernel_->RegisterService(options_.service_path, system);
  if (!svc.ok()) {
    return svc.status();
  }
  auto read_node = kernel_->RegisterProcedure(
      JoinPath(options_.service_path, "read"), system,
      [this](CallContext& ctx) -> StatusOr<Value> {
        auto path = ArgString(ctx.args, 0);
        if (!path.ok()) {
          return path.status();
        }
        auto value = ReadStat(*ctx.subject, *path);
        if (!value.ok()) {
          return value.status();
        }
        return Value{std::move(*value)};
      });
  if (!read_node.ok()) {
    return read_node.status();
  }
  auto dump_node = kernel_->RegisterProcedure(
      JoinPath(options_.service_path, "dump"), system,
      [this](CallContext& ctx) -> StatusOr<Value> {
        auto text = DumpTree(*ctx.subject);
        if (!text.ok()) {
          return text.status();
        }
        return Value{std::move(*text)};
      });
  if (!dump_node.ok()) {
    return dump_node.status();
  }
  // Shared by watch and poll: the optional trailing timeout argument. A
  // non-positive timeout used to park the caller for a zero-length wait that
  // always "timed out"; it is a caller bug, so it is rejected loudly.
  auto parse_timeout_ms = [](const std::vector<Value>& args,
                             size_t index) -> StatusOr<int64_t> {
    int64_t timeout_ms = 1000;
    if (args.size() > index) {
      auto t = ArgInt(args, index);
      if (!t.ok()) {
        return t.status();
      }
      if (*t <= 0) {
        return InvalidArgumentError(
            StrFormat("timeout_ms must be positive, got %lld",
                      static_cast<long long>(*t)));
      }
      timeout_ms = *t;
    }
    if (timeout_ms > 60'000) {
      timeout_ms = 60'000;  // never parks a thread for minutes
    }
    return timeout_ms;
  };

  auto watch_node = kernel_->RegisterProcedure(
      JoinPath(options_.service_path, "watch"), system,
      [this, parse_timeout_ms](CallContext& ctx) -> StatusOr<Value> {
        auto since = ArgInt(ctx.args, 0);
        if (!since.ok()) {
          return since.status();
        }
        if (*since < -1) {
          return InvalidArgumentError(
              StrFormat("since must be a version or -1, got %lld",
                        static_cast<long long>(*since)));
        }
        auto timeout_ms = parse_timeout_ms(ctx.args, 1);
        if (!timeout_ms.ok()) {
          return timeout_ms.status();
        }
        // Admission before blocking: watching the snapshot is reading it.
        Decision decision =
            kernel_->monitor().Check(*ctx.subject, snapshot_node_, AccessMode::kRead);
        if (!decision.allowed) {
          return decision.ToStatus();
        }
        uint64_t since_v;
        if (*since < 0) {
          // "Any change after this call": baseline a fresh publication that
          // already folds in this watch's own admission check, so the caller
          // blocks for the next *external* change instead of unblocking on
          // the counter bump the watch itself just caused.
          since_v = Tick();
        } else {
          since_v = static_cast<uint64_t>(*since);
        }
        uint64_t deadline =
            MonotonicNowNs() + static_cast<uint64_t>(*timeout_ms) * 1'000'000;
        if (ctx.deadline_ns != 0 && ctx.deadline_ns < deadline) {
          deadline = ctx.deadline_ns;
        }
        auto text = WaitForUpdate(since_v, deadline, &ctx);
        if (!text.ok()) {
          return text.status();
        }
        return Value{std::move(*text)};
      });
  if (!watch_node.ok()) {
    return watch_node.status();
  }
  auto subscribe_node = kernel_->RegisterProcedure(
      JoinPath(options_.service_path, "subscribe"), system,
      [this](CallContext& ctx) -> StatusOr<Value> {
        int64_t since = -1;
        if (!ctx.args.empty()) {
          auto s = ArgInt(ctx.args, 0);
          if (!s.ok()) {
            return s.status();
          }
          since = *s;
        }
        SubscriberBackpressure backpressure = SubscriberBackpressure::kDropOldest;
        if (ctx.args.size() > 1) {
          auto policy = ArgString(ctx.args, 1);
          if (!policy.ok()) {
            return policy.status();
          }
          if (*policy == "block") {
            backpressure = SubscriberBackpressure::kBlockPublisher;
          } else if (*policy != "drop") {
            return InvalidArgumentError(
                StrFormat("backpressure policy must be 'drop' or 'block', got '%s'",
                          std::string(*policy).c_str()));
          }
        }
        auto id = Subscribe(*ctx.subject, since, backpressure);
        if (!id.ok()) {
          return id.status();
        }
        return Value{std::to_string(*id)};
      });
  if (!subscribe_node.ok()) {
    return subscribe_node.status();
  }
  auto poll_node = kernel_->RegisterProcedure(
      JoinPath(options_.service_path, "poll"), system,
      [this, parse_timeout_ms](CallContext& ctx) -> StatusOr<Value> {
        auto id = ArgInt(ctx.args, 0);
        if (!id.ok()) {
          return id.status();
        }
        if (*id < 0) {
          return InvalidArgumentError("subscription handle cannot be negative");
        }
        auto timeout_ms = parse_timeout_ms(ctx.args, 1);
        if (!timeout_ms.ok()) {
          return timeout_ms.status();
        }
        uint64_t deadline =
            MonotonicNowNs() + static_cast<uint64_t>(*timeout_ms) * 1'000'000;
        if (ctx.deadline_ns != 0 && ctx.deadline_ns < deadline) {
          deadline = ctx.deadline_ns;
        }
        auto text =
            PollSubscription(*ctx.subject, static_cast<uint64_t>(*id), deadline, &ctx);
        if (!text.ok()) {
          return text.status();
        }
        return Value{std::move(*text)};
      });
  if (!poll_node.ok()) {
    return poll_node.status();
  }
  auto unsubscribe_node = kernel_->RegisterProcedure(
      JoinPath(options_.service_path, "unsubscribe"), system,
      [this](CallContext& ctx) -> StatusOr<Value> {
        auto id = ArgInt(ctx.args, 0);
        if (!id.ok()) {
          return id.status();
        }
        if (*id < 0) {
          return InvalidArgumentError("subscription handle cannot be negative");
        }
        XSEC_RETURN_IF_ERROR(Unsubscribe(*ctx.subject, static_cast<uint64_t>(*id)));
        return Value{"unsubscribed"};
      });
  if (!unsubscribe_node.ok()) {
    return unsubscribe_node.status();
  }

  Tick();  // version 1: the boot-time state

  if (options_.background_publisher) {
    publisher_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(pub_mu_);
      while (!stop_) {
        pub_cv_.wait_for(lock, std::chrono::nanoseconds(options_.epoch_interval_ns));
        if (stop_) {
          break;
        }
        lock.unlock();
        Tick();
        lock.lock();
      }
    });
  }
  return OkStatus();
}

StatusOr<std::string> StatsService::ReadStat(Subject& subject, std::string_view path) {
  if (!StartsWith(path, options_.mount_path + "/")) {
    return InvalidArgumentError(
        StrFormat("'%s' is outside the stats mount '%s'", std::string(path).c_str(),
                  options_.mount_path.c_str()));
  }
  std::shared_lock<std::shared_mutex> lock(values_mu_);
  auto it = values_.find(std::string(path));
  if (it == values_.end()) {
    return NotFoundError(
        StrFormat("'%s' is not a stats leaf", std::string(path).c_str()));
  }
  Decision decision = kernel_->monitor().Check(subject, it->second.node, AccessMode::kRead);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  return it->second.render();
}

StatusOr<std::string> StatsService::DumpTree(Subject& subject) {
  std::string out;
  std::shared_lock<std::shared_mutex> lock(values_mu_);
  for (const auto& [path, leaf] : values_) {
    if (!leaf.in_dump) {
      continue;  // multi-line leaves (snapshot) don't fit the line format
    }
    if (!kernel_->monitor().Check(subject, leaf.node, AccessMode::kRead).allowed) {
      continue;  // the denial is counted and audited like any other
    }
    out += path + " " + leaf.render() + "\n";
  }
  return out;
}

std::string StatsService::RenderAll() const {
  std::string out;
  std::shared_lock<std::shared_mutex> lock(values_mu_);
  for (const auto& [path, leaf] : values_) {
    if (!leaf.in_dump) {
      continue;
    }
    out += path + " " + leaf.render() + "\n";
  }
  return out;
}

uint64_t StatsService::Tick() {
  ReferenceMonitor& monitor = kernel_->monitor();
  // Capture everything before taking pub_mu_: TakeSnapshot can spin briefly
  // around a concurrent Reset and must not do so while holding the
  // publication lock watchers block on.
  MonitorStats::Snapshot snap = monitor.stats().TakeSnapshot();
  uint64_t cache_hits = monitor.cache().hits();
  uint64_t cache_misses = monitor.cache().misses();
  uint64_t cache_stale = monitor.cache().stale_hits();
  uint64_t audit_retained = monitor.audit().retained();
  uint64_t audit_dropped = monitor.audit().dropped();
  uint64_t now = MonotonicNowNs();

  uint64_t version;
  std::shared_ptr<const std::string> rendered;
  {
    std::lock_guard<std::mutex> lock(pub_mu_);
    bool changed = version_ == 0 || !snap.SameCounters(published_) ||
                   cache_hits != pub_cache_hits_ || cache_misses != pub_cache_misses_ ||
                   cache_stale != pub_cache_stale_ || audit_retained != pub_audit_retained_ ||
                   audit_dropped != pub_audit_dropped_;
    if (changed) {
      ++version_;
      snap.version = version_;
      published_ = snap;
      pub_cache_hits_ = cache_hits;
      pub_cache_misses_ = cache_misses;
      pub_cache_stale_ = cache_stale;
      pub_audit_retained_ = audit_retained;
      pub_audit_dropped_ = audit_dropped;
    }
    // The rate ring tracks cumulative counters per publication epoch; a
    // decrease means the stats were Reset, which invalidates every delta.
    if (!rate_ring_.empty() && snap.checks_total < rate_ring_.back().checks) {
      rate_ring_.clear();
    }
    rate_ring_.push_back(RateEpoch{now, snap.checks_total, snap.denied});
    while (rate_ring_.size() > 2 &&
           now - rate_ring_[1].t_ns >= options_.rate_window_ns) {
      rate_ring_.pop_front();
    }
    last_tick_ns_ = now;
    version = version_;
    if (changed) {
      pub_cv_.notify_all();
      // Render once for all subscribers; fan-out happens after pub_mu_ is
      // released so a kBlockPublisher wait never stalls watchers.
      rendered = std::make_shared<const std::string>(RenderSnapshotLocked());
    }
  }
  if (rendered != nullptr) {
    FanOut(version, std::move(rendered));
  }
  return version;
}

void StatsService::FanOut(uint64_t version, std::shared_ptr<const std::string> rendered) {
  // Snapshot the channel list first: a kBlockPublisher wait releases sub_mu_,
  // and subscribe/unsubscribe may mutate the registry meanwhile.
  std::vector<std::shared_ptr<SubscriberChannel>> channels;
  {
    std::lock_guard<std::mutex> lock(sub_mu_);
    channels.reserve(subscribers_.size());
    for (const auto& [id, channel] : subscribers_) {
      channels.push_back(channel);
    }
  }
  for (const auto& channel : channels) {
    std::unique_lock<std::mutex> lock(sub_mu_);
    if (channel->closed || version <= channel->last_version) {
      continue;  // gone, or a concurrent Tick already delivered this epoch
    }
    if (XSEC_FAILPOINT_FIRED("stats.fanout.push")) {
      // Injected delivery failure: the epoch is lost to this channel exactly
      // like a backpressure drop (a sleep spec instead stalls fan-out under
      // sub_mu_, the shape of a wedged delivery path).
      channel->last_version = version;
      ++channel->dropped;
      subscriber_dropped_total_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (channel->queue.size() >= options_.subscriber_queue_capacity &&
        channel->backpressure == SubscriberBackpressure::kBlockPublisher) {
      // Wait for the subscriber to drain — capped, so a stuck subscriber
      // costs the publisher at most publisher_block_cap_ns per epoch.
      channel->cv.wait_for(
          lock, std::chrono::nanoseconds(options_.publisher_block_cap_ns), [&] {
            return channel->closed ||
                   channel->queue.size() < options_.subscriber_queue_capacity;
          });
      if (channel->closed) {
        continue;
      }
    }
    channel->last_version = version;
    if (channel->queue.size() >= options_.subscriber_queue_capacity) {
      if (channel->backpressure == SubscriberBackpressure::kDropOldest) {
        channel->queue.pop_front();  // evict: the subscriber sees a gap
        channel->queue.push_back(rendered);
      }
      // kBlockPublisher past the cap: the new epoch is the one dropped.
      ++channel->dropped;
      subscriber_dropped_total_.fetch_add(1, std::memory_order_relaxed);
      if (channel->backpressure == SubscriberBackpressure::kDropOldest) {
        channel->cv.notify_all();
      }
      continue;
    }
    channel->queue.push_back(rendered);
    channel->cv.notify_all();
  }
}

uint64_t StatsService::version() const {
  std::lock_guard<std::mutex> lock(pub_mu_);
  return version_;
}

void StatsService::MaybeTick() {
  {
    std::lock_guard<std::mutex> lock(pub_mu_);
    if (last_tick_ns_ != 0 &&
        MonotonicNowNs() - last_tick_ns_ < options_.epoch_interval_ns) {
      return;
    }
  }
  Tick();
}

std::string StatsService::RenderSnapshot() {
  MaybeTick();
  std::lock_guard<std::mutex> lock(pub_mu_);
  return RenderSnapshotLocked();
}

StatusOr<std::string> StatsService::WaitForUpdate(uint64_t since, uint64_t deadline_ns,
                                                  const CallContext* call) {
  for (;;) {
    // Wakeup-path injection point: a sleep spec delays each recheck cycle
    // (simulating a tardy wakeup), an error spec just counts a fire — the
    // wait itself must not fail, only the deadline/cancel checks below can
    // end it.
    (void)XSEC_FAILPOINT_FIRED("stats.poll.wakeup");
    std::unique_lock<std::mutex> lock(pub_mu_);
    // A `since` *ahead* of the published version is a handle from before a
    // service restart (version counters restart at 1): the caller's era is
    // gone, so the honest answer is the current state now, not a park that
    // can only time out.
    if (version_ != since) {
      return RenderSnapshotLocked();
    }
    uint64_t now = MonotonicNowNs();
    if (call != nullptr) {
      XSEC_RETURN_IF_ERROR(call->CheckDeadline());  // lock-free cancellation point
    }
    if (deadline_ns != 0 && now >= deadline_ns) {
      return DeadlineExceededError(
          StrFormat("no stats update past version %llu within the deadline",
                    static_cast<unsigned long long>(since)));
    }
    // Self-clocking: when the current epoch has elapsed, this watcher takes
    // its own fresh capture (outside the lock) instead of waiting for a
    // publisher thread that may not exist.
    uint64_t next_capture = last_tick_ns_ + options_.epoch_interval_ns;
    if (now >= next_capture) {
      lock.unlock();
      Tick();
      continue;
    }
    uint64_t wake = next_capture;
    if (deadline_ns != 0 && deadline_ns < wake) {
      wake = deadline_ns;
    }
    if (call != nullptr && options_.cancel_poll_interval_ns != 0 &&
        now + options_.cancel_poll_interval_ns < wake) {
      // A cancellable waiter never parks a whole epoch blind: cap the slice
      // so the loop re-polls CheckDeadline at cancel granularity. (Before
      // this cap a cancelled watcher slept out the full slice — up to the
      // epoch interval — before noticing.)
      wake = now + options_.cancel_poll_interval_ns;
    }
    pub_cv_.wait_for(lock, std::chrono::nanoseconds(wake - now));
    if (call != nullptr) {
      // Recheck before re-arming: a spurious wakeup (or a notify for some
      // other waiter) must not put a cancelled caller back to sleep.
      XSEC_RETURN_IF_ERROR(call->CheckDeadline());
    }
  }
}

StatusOr<uint64_t> StatsService::Subscribe(Subject& subject, int64_t since,
                                           SubscriberBackpressure backpressure) {
  if (since < -1) {
    return InvalidArgumentError(
        StrFormat("since must be a version or -1, got %lld", static_cast<long long>(since)));
  }
  // The ONE admission check of the channel's lifetime: opening a stream of
  // snapshots is reading the snapshot leaf. From here on the handle itself
  // is the capability.
  Decision decision = kernel_->monitor().Check(subject, snapshot_node_, AccessMode::kRead);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  // Baseline a fresh publication (folds in the admission check above), so
  // the channel starts at a well-defined epoch.
  uint64_t version = Tick();
  std::shared_ptr<const std::string> catch_up;
  if (since >= 0 && static_cast<uint64_t>(since) < version) {
    // The subscriber is behind: seed the queue with one catch-up snapshot.
    // Intermediate epochs are not retained — a subscription delivers current
    // state plus every change from now on, not history.
    std::lock_guard<std::mutex> lock(pub_mu_);
    catch_up = std::make_shared<const std::string>(RenderSnapshotLocked());
  }
  auto channel = std::make_shared<SubscriberChannel>();
  channel->owner = subject.principal;
  channel->backpressure = backpressure;
  channel->last_version = version;
  if (catch_up != nullptr) {
    channel->queue.push_back(std::move(catch_up));
  }
  {
    std::lock_guard<std::mutex> lock(sub_mu_);
    if (subscribers_.size() >= options_.max_subscribers) {
      return ResourceExhaustedError(
          StrFormat("subscriber limit (%zu) reached", options_.max_subscribers));
    }
    if (options_.max_channels_per_principal != 0) {
      size_t owned = 0;
      for (const auto& [id, existing] : subscribers_) {
        if (existing->owner == subject.principal) {
          ++owned;
        }
      }
      if (owned >= options_.max_channels_per_principal) {
        quota_denied_total_.fetch_add(1, std::memory_order_relaxed);
        return ResourceExhaustedError(StrFormat(
            "per-principal channel quota (%zu) reached; unsubscribe or raise "
            "max_channels_per_principal",
            options_.max_channels_per_principal));
      }
    }
    channel->id = next_subscriber_id_++;
    subscribers_.emplace(channel->id, channel);
  }
  Status mounted = MountSubscriberLeaves(channel);
  if (!mounted.ok()) {
    (void)Unsubscribe(subject, channel->id);
    return mounted;
  }
  return channel->id;
}

StatusOr<std::string> StatsService::PollSubscription(Subject& subject, uint64_t id,
                                                     uint64_t deadline_ns,
                                                     const CallContext* call) {
  std::shared_ptr<SubscriberChannel> channel;
  {
    std::lock_guard<std::mutex> lock(sub_mu_);
    auto it = subscribers_.find(id);
    if (it == subscribers_.end()) {
      return NotFoundError(StrFormat("no subscription with handle %llu",
                                     static_cast<unsigned long long>(id)));
    }
    if (it->second->owner != subject.principal) {
      // The handle is a capability bound to the principal it was issued to;
      // a guessed or leaked handle number grants nothing.
      return PermissionDeniedError("subscription handle belongs to another principal");
    }
    channel = it->second;
  }
  for (;;) {
    (void)XSEC_FAILPOINT_FIRED("stats.poll.wakeup");
    {
      std::lock_guard<std::mutex> lock(sub_mu_);
      if (!channel->queue.empty()) {
        std::shared_ptr<const std::string> epoch = std::move(channel->queue.front());
        channel->queue.pop_front();
        ++channel->delivered;
        channel->cv.notify_all();  // a capped publisher may be waiting for space
        return *epoch;
      }
      if (channel->closed) {
        return FailedPreconditionError("subscription was closed");
      }
    }
    if (call != nullptr) {
      XSEC_RETURN_IF_ERROR(call->CheckDeadline());
    }
    uint64_t now = MonotonicNowNs();
    if (deadline_ns != 0 && now >= deadline_ns) {
      return DeadlineExceededError("no epoch published within the deadline");
    }
    // Self-clocking, like WaitForUpdate: with no background publisher the
    // blocked poller captures an epoch itself once the interval elapses
    // (Tick fans out to this very channel).
    uint64_t next_capture;
    {
      std::lock_guard<std::mutex> lock(pub_mu_);
      next_capture = last_tick_ns_ + options_.epoch_interval_ns;
    }
    if (now >= next_capture) {
      Tick();
      continue;
    }
    uint64_t wake = next_capture;
    if (deadline_ns != 0 && deadline_ns < wake) {
      wake = deadline_ns;
    }
    if (call != nullptr && options_.cancel_poll_interval_ns != 0 &&
        now + options_.cancel_poll_interval_ns < wake) {
      // Same cancel-granularity cap as WaitForUpdate: a cancelled poller
      // must not sleep out a whole epoch slice before noticing.
      wake = now + options_.cancel_poll_interval_ns;
    }
    {
      std::unique_lock<std::mutex> lock(sub_mu_);
      if (channel->queue.empty() && !channel->closed) {
        channel->cv.wait_for(lock, std::chrono::nanoseconds(wake - now));
      }
    }
    if (call != nullptr) {
      // Recheck before re-arming after a (possibly spurious) wakeup.
      XSEC_RETURN_IF_ERROR(call->CheckDeadline());
    }
  }
}

Status StatsService::Unsubscribe(Subject& subject, uint64_t id) {
  {
    std::lock_guard<std::mutex> lock(sub_mu_);
    auto it = subscribers_.find(id);
    if (it == subscribers_.end()) {
      return NotFoundError(StrFormat("no subscription with handle %llu",
                                     static_cast<unsigned long long>(id)));
    }
    if (it->second->owner != subject.principal) {
      return PermissionDeniedError("subscription handle belongs to another principal");
    }
    it->second->closed = true;
    it->second->cv.notify_all();  // release any blocked poller or publisher
    subscribers_.erase(it);
  }
  UnmountSubscriberLeaves(id);
  return OkStatus();
}

size_t StatsService::GcChannelsFor(PrincipalId principal) {
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(sub_mu_);
    for (auto it = subscribers_.begin(); it != subscribers_.end();) {
      if (it->second->owner == principal) {
        ids.push_back(it->first);
        it->second->closed = true;
        it->second->cv.notify_all();  // release blocked pollers/publishers
        it = subscribers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Leaves are unmounted outside sub_mu_ (lock order: values_mu_ is never
  // taken while sub_mu_ is held).
  for (uint64_t id : ids) {
    UnmountSubscriberLeaves(id);
  }
  return ids.size();
}

size_t StatsService::active_subscribers() const {
  std::lock_guard<std::mutex> lock(sub_mu_);
  return subscribers_.size();
}

Status StatsService::MountSubscriberLeaves(const std::shared_ptr<SubscriberChannel>& channel) {
  // Renders hold the channel shared_ptr, so a leaf read races safely with
  // Unsubscribe (it reports the channel's final counters until unmounted).
  std::string base = StrFormat("subscribers/%llu", static_cast<unsigned long long>(channel->id));
  XSEC_RETURN_IF_ERROR(MountLeaf(base + "/queued", [this, channel] {
    std::lock_guard<std::mutex> lock(sub_mu_);
    return std::to_string(channel->queue.size());
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf(base + "/delivered", [this, channel] {
    std::lock_guard<std::mutex> lock(sub_mu_);
    return std::to_string(channel->delivered);
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf(base + "/dropped", [this, channel] {
    std::lock_guard<std::mutex> lock(sub_mu_);
    return std::to_string(channel->dropped);
  }));
  return OkStatus();
}

void StatsService::UnmountSubscriberLeaves(uint64_t id) {
  std::string prefix = JoinPath(
      options_.mount_path,
      StrFormat("subscribers/%llu", static_cast<unsigned long long>(id)));
  std::unique_lock<std::shared_mutex> lock(values_mu_);
  for (auto it = values_.lower_bound(prefix); it != values_.end();) {
    if (!StartsWith(it->first, prefix + "/")) {
      break;
    }
    (void)kernel_->name_space().Unbind(it->second.node);
    it = values_.erase(it);
  }
  // The now-empty per-channel directory goes too.
  auto dir = kernel_->name_space().Lookup(prefix);
  if (dir.ok()) {
    (void)kernel_->name_space().Unbind(*dir);
  }
}

double StatsService::ChecksPerSecLocked() const {
  if (rate_ring_.size() < 2) {
    return 0.0;
  }
  const RateEpoch& oldest = rate_ring_.front();
  const RateEpoch& newest = rate_ring_.back();
  if (newest.t_ns <= oldest.t_ns || newest.checks < oldest.checks) {
    return 0.0;
  }
  return static_cast<double>(newest.checks - oldest.checks) * 1e9 /
         static_cast<double>(newest.t_ns - oldest.t_ns);
}

double StatsService::DenialsPerSecLocked() const {
  if (rate_ring_.size() < 2) {
    return 0.0;
  }
  const RateEpoch& oldest = rate_ring_.front();
  const RateEpoch& newest = rate_ring_.back();
  if (newest.t_ns <= oldest.t_ns || newest.denials < oldest.denials) {
    return 0.0;
  }
  return static_cast<double>(newest.denials - oldest.denials) * 1e9 /
         static_cast<double>(newest.t_ns - oldest.t_ns);
}

std::string StatsService::RenderSnapshotLocked() const {
  const std::string& m = options_.mount_path;
  const MonitorStats::Snapshot& s = published_;
  std::string out;
  out += StrFormat("version %llu\n", static_cast<unsigned long long>(s.version));
  out += StrFormat("reset_epoch %llu\n", static_cast<unsigned long long>(s.reset_epoch));
  auto line = [&out, &m](const char* rel, uint64_t v) {
    out += StrFormat("%s/%s %llu\n", m.c_str(), rel, static_cast<unsigned long long>(v));
  };
  line("checks/total", s.checks_total);
  line("checks/allowed", s.allowed);
  line("checks/denied", s.denied);
  for (int i = 0; i < kAccessModeCount; ++i) {
    AccessMode mode = static_cast<AccessMode>(1u << i);
    line(StrFormat("checks/by-mode/%s", std::string(AccessModeName(mode)).c_str()).c_str(),
         s.by_mode[i]);
  }
  for (size_t r = 1; r < kDenyReasonCount; ++r) {
    DenyReason reason = static_cast<DenyReason>(r);
    line(StrFormat("denials/by-reason/%s", std::string(DenyReasonName(reason)).c_str()).c_str(),
         s.by_reason[r]);
  }
  line("cache/hits", pub_cache_hits_);
  line("cache/misses", pub_cache_misses_);
  line("cache/stale", pub_cache_stale_);
  uint64_t probes = pub_cache_hits_ + pub_cache_misses_;
  out += StrFormat("%s/cache/hit_rate %s\n", m.c_str(),
                   FormatFixed(probes == 0 ? 0.0
                                           : static_cast<double>(pub_cache_hits_) /
                                                 static_cast<double>(probes),
                               4)
                       .c_str());
  line("latency/p50", s.LatencyQuantileNs(0.50));
  line("latency/p90", s.LatencyQuantileNs(0.90));
  line("latency/p99", s.LatencyQuantileNs(0.99));
  line("latency/samples", s.latency_samples);
  line("audit/retained", pub_audit_retained_);
  line("audit/dropped", pub_audit_dropped_);
  out += StrFormat("%s/rate/checks_per_sec %s\n", m.c_str(),
                   FormatFixed(ChecksPerSecLocked(), 2).c_str());
  out += StrFormat("%s/rate/denials_per_sec %s\n", m.c_str(),
                   FormatFixed(DenialsPerSecLocked(), 2).c_str());
  return out;
}

}  // namespace xsec
