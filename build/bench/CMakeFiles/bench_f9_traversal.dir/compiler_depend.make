# Empty compiler generated dependencies file for bench_f9_traversal.
# This may be replaced when dependencies are built.
