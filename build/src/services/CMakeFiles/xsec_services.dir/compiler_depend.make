# Empty compiler generated dependencies file for xsec_services.
# This may be replaced when dependencies are built.
