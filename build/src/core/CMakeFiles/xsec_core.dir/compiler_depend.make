# Empty compiler generated dependencies file for xsec_core.
# This may be replaced when dependencies are built.
