// The Inferno baseline (paper §1.2).
//
// "Inferno uses encryption for the mutual authentication of communicating
// parties and their messages." The public literature the paper surveys says
// nothing about authorization, so the model has exactly one input: whether
// the party authenticated. Authentication without access control is the
// point of including this row in T1 — knowing *who* someone is does not
// decide *what* they may do, and an authenticated attacker passes every
// check.

#ifndef XSEC_SRC_BASELINES_INFERNO_MODEL_H_
#define XSEC_SRC_BASELINES_INFERNO_MODEL_H_

#include "src/baselines/model.h"

namespace xsec {

class InfernoModel : public ProtectionModel {
 public:
  std::string_view name() const override { return "inferno"; }

  bool Allows(const BaselineWorld& world, const BaselineSubject& subject,
              const BaselineObject& object, AccessMode mode) const override {
    (void)world;
    (void)object;
    (void)mode;
    return subject.inferno_authenticated;
  }
};

}  // namespace xsec

#endif  // XSEC_SRC_BASELINES_INFERNO_MODEL_H_
