file(REMOVE_RECURSE
  "libxsec_monitor.a"
)
