#include "src/base/strings.h"

#include <gtest/gtest.h>

#include <limits>

namespace xsec {
namespace {

TEST(StringsTest, SplitBasic) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, SplitSkipEmpty) {
  EXPECT_EQ(StrSplit("a,,c,", ',', /*skip_empty=*/true),
            (std::vector<std::string>{"a", "c"}));
}

TEST(StringsTest, SplitEmptyInput) {
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_TRUE(StrSplit("", ',', /*skip_empty=*/true).empty());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, "|"), "a|b|c");
  EXPECT_EQ(StrJoin({}, "|"), "");
  EXPECT_EQ(StrJoin({"solo"}, ", "), "solo");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("/svc/fs", "/svc"));
  EXPECT_FALSE(StartsWith("/sv", "/svc"));
  EXPECT_TRUE(EndsWith("file.txt", ".txt"));
  EXPECT_FALSE(EndsWith("txt", "file.txt"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringsTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
  std::string big(500, 'a');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 500u);
}

TEST(StringsTest, FormatFixedRendersExactPrecisionWithDotRadix) {
  EXPECT_EQ(FormatFixed(0.0, 4), "0.0000");
  EXPECT_EQ(FormatFixed(1.0, 4), "1.0000");
  EXPECT_EQ(FormatFixed(0.5, 4), "0.5000");
  EXPECT_EQ(FormatFixed(0.87654321, 4), "0.8765");
  EXPECT_EQ(FormatFixed(12.345, 2), "12.35");   // round half up
  EXPECT_EQ(FormatFixed(-2.5, 1), "-2.5");
  EXPECT_EQ(FormatFixed(3.0, 0), "3");          // no radix char at precision 0
  EXPECT_EQ(FormatFixed(0.05, 4), "0.0500");    // leading fraction zeros kept
  EXPECT_EQ(FormatFixed(0.99999, 4), "1.0000"); // carry into the integer part
}

TEST(StringsTest, FormatFixedClampsAndHandlesNonFinite) {
  EXPECT_EQ(FormatFixed(1.5, -3), "2");  // precision clamps to 0, rounds
  EXPECT_EQ(FormatFixed(0.123456789012, 99), "0.123456789");  // clamps to 9
  EXPECT_EQ(FormatFixed(std::numeric_limits<double>::quiet_NaN(), 4), "nan");
  EXPECT_EQ(FormatFixed(std::numeric_limits<double>::infinity(), 4), "inf");
  EXPECT_EQ(FormatFixed(-std::numeric_limits<double>::infinity(), 4), "-inf");
  // Values too large for 64-bit fixed-point fall back to a radix-free form.
  std::string huge = FormatFixed(1e30, 4);
  EXPECT_EQ(huge.find('.'), std::string::npos);
  EXPECT_FALSE(huge.empty());
}

}  // namespace
}  // namespace xsec
