# Empty dependencies file for xsec_base_tests.
# This may be replaced when dependencies are built.
