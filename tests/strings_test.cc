#include "src/base/strings.h"

#include <gtest/gtest.h>

namespace xsec {
namespace {

TEST(StringsTest, SplitBasic) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, SplitSkipEmpty) {
  EXPECT_EQ(StrSplit("a,,c,", ',', /*skip_empty=*/true),
            (std::vector<std::string>{"a", "c"}));
}

TEST(StringsTest, SplitEmptyInput) {
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_TRUE(StrSplit("", ',', /*skip_empty=*/true).empty());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, "|"), "a|b|c");
  EXPECT_EQ(StrJoin({}, "|"), "");
  EXPECT_EQ(StrJoin({"solo"}, ", "), "solo");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("/svc/fs", "/svc"));
  EXPECT_FALSE(StartsWith("/sv", "/svc"));
  EXPECT_TRUE(EndsWith("file.txt", ".txt"));
  EXPECT_FALSE(EndsWith("txt", "file.txt"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringsTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
  std::string big(500, 'a');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 500u);
}

}  // namespace
}  // namespace xsec
