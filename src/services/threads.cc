#include "src/services/threads.h"

#include "src/base/strings.h"

namespace xsec {

ThreadService::ThreadService(Kernel* kernel, std::string service_path, std::string object_dir)
    : kernel_(kernel),
      service_path_(std::move(service_path)),
      object_dir_(std::move(object_dir)) {}

Status ThreadService::Install() {
  PrincipalId system = kernel_->system_principal();
  auto dir = kernel_->name_space().BindPath(object_dir_, NodeKind::kDirectory, system);
  if (!dir.ok()) {
    return dir.status();
  }
  auto svc = kernel_->RegisterService(service_path_, system);
  if (!svc.ok()) {
    return svc.status();
  }
  auto proc = [this, system](std::string_view name, HandlerFn fn) -> Status {
    auto node = kernel_->RegisterProcedure(JoinPath(service_path_, name), system, std::move(fn));
    return node.ok() ? OkStatus() : node.status();
  };

  XSEC_RETURN_IF_ERROR(proc("spawn", [this](CallContext& ctx) -> StatusOr<Value> {
    auto name = ArgString(ctx.args, 0);
    if (!name.ok()) {
      return name.status();
    }
    auto id = Spawn(*ctx.subject, *name);
    if (!id.ok()) {
      return id.status();
    }
    return Value{*id};
  }));
  XSEC_RETURN_IF_ERROR(proc("kill", [this](CallContext& ctx) -> StatusOr<Value> {
    auto id = ArgInt(ctx.args, 0);
    if (!id.ok()) {
      return id.status();
    }
    XSEC_RETURN_IF_ERROR(Kill(*ctx.subject, *id));
    return Value{true};
  }));
  XSEC_RETURN_IF_ERROR(proc("list", [this](CallContext& ctx) -> StatusOr<Value> {
    auto ids = List(*ctx.subject);
    if (!ids.ok()) {
      return ids.status();
    }
    std::vector<std::string> pieces;
    pieces.reserve(ids->size());
    for (int64_t id : *ids) {
      pieces.push_back(std::to_string(id));
    }
    return Value{StrJoin(pieces, ",")};
  }));
  XSEC_RETURN_IF_ERROR(proc("send", [this](CallContext& ctx) -> StatusOr<Value> {
    auto id = ArgInt(ctx.args, 0);
    auto message = ArgString(ctx.args, 1);
    if (!id.ok()) {
      return id.status();
    }
    if (!message.ok()) {
      return message.status();
    }
    XSEC_RETURN_IF_ERROR(SendMessage(*ctx.subject, *id, *message));
    return Value{true};
  }));
  XSEC_RETURN_IF_ERROR(proc("recv", [this](CallContext& ctx) -> StatusOr<Value> {
    auto id = ArgInt(ctx.args, 0);
    if (!id.ok()) {
      return id.status();
    }
    auto messages = ReceiveMessages(*ctx.subject, *id);
    if (!messages.ok()) {
      return messages.status();
    }
    return Value{StrJoin(*messages, "\n")};
  }));
  XSEC_RETURN_IF_ERROR(proc("status", [this](CallContext& ctx) -> StatusOr<Value> {
    auto id = ArgInt(ctx.args, 0);
    if (!id.ok()) {
      return id.status();
    }
    auto running = IsRunning(*ctx.subject, *id);
    if (!running.ok()) {
      return running.status();
    }
    return Value{*running};
  }));
  return OkStatus();
}

StatusOr<int64_t> ThreadService::Spawn(Subject& subject, std::string_view name) {
  int64_t id = next_id_++;
  auto node = kernel_->name_space().BindPath(
      StrFormat("%s/t%lld", object_dir_.c_str(), static_cast<long long>(id)),
      NodeKind::kObject, subject.principal);
  if (!node.ok()) {
    return node.status();
  }
  // Label the thread object at the spawner's class and give the spawner an
  // exclusive ACL. The service is trusted base-system code, so it writes the
  // stores directly; everything *after* this point is mediated.
  LabelAuthority::LabelRef label = kernel_->labels().StoreLabel(subject.security_class);
  XSEC_RETURN_IF_ERROR(kernel_->name_space().SetLabelRef(*node, label));
  Acl acl;
  acl.AddEntry(AclEntry{AclEntryType::kAllow, subject.principal,
                        AccessMode::kRead | AccessMode::kWrite | AccessMode::kDelete |
                            AccessMode::kList | AccessMode::kWriteAppend});
  // Message delivery (write-append) is discretionarily open to everyone;
  // the mandatory lattice still confines it to upward flows, and the
  // spawner can tighten the ACL afterwards.
  auto everyone = kernel_->principals().FindByName("everyone");
  if (everyone.ok()) {
    acl.AddEntry(AclEntry{AclEntryType::kAllow, *everyone,
                          AccessModeSet(AccessMode::kWriteAppend)});
  }
  XSEC_RETURN_IF_ERROR(
      kernel_->name_space().SetAclRef(*node, kernel_->acls().Create(std::move(acl))));

  Record record;
  record.name = std::string(name);
  record.owner = subject.principal;
  record.node = *node;
  records_.emplace(id, std::move(record));
  return id;
}

Status ThreadService::Kill(Subject& subject, int64_t thread_id) {
  auto it = records_.find(thread_id);
  if (it == records_.end() || !it->second.running) {
    return NotFoundError(
        StrFormat("no running thread %lld", static_cast<long long>(thread_id)));
  }
  Decision decision = kernel_->monitor().Check(subject, it->second.node, AccessMode::kDelete);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  it->second.running = false;
  return kernel_->name_space().Unbind(it->second.node);
}

StatusOr<std::vector<int64_t>> ThreadService::List(Subject& subject) {
  std::vector<int64_t> visible;
  for (const auto& [id, record] : records_) {
    if (!record.running) {
      continue;
    }
    Decision decision = kernel_->monitor().Check(subject, record.node, AccessMode::kRead);
    if (decision.allowed) {
      visible.push_back(id);
    }
  }
  return visible;
}

StatusOr<bool> ThreadService::IsRunning(Subject& subject, int64_t thread_id) {
  auto it = records_.find(thread_id);
  if (it == records_.end()) {
    return NotFoundError(StrFormat("no thread %lld", static_cast<long long>(thread_id)));
  }
  if (it->second.running) {
    Decision decision = kernel_->monitor().Check(subject, it->second.node, AccessMode::kRead);
    if (!decision.allowed) {
      return decision.ToStatus();
    }
  }
  return it->second.running;
}

Status ThreadService::SendMessage(Subject& subject, int64_t to_thread,
                                  std::string_view message) {
  auto it = records_.find(to_thread);
  if (it == records_.end() || !it->second.running) {
    return NotFoundError(
        StrFormat("no running thread %lld", static_cast<long long>(to_thread)));
  }
  Decision decision =
      kernel_->monitor().Check(subject, it->second.node, AccessMode::kWriteAppend);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  it->second.mailbox.emplace_back(message);
  return OkStatus();
}

StatusOr<std::vector<std::string>> ThreadService::ReceiveMessages(Subject& subject,
                                                                  int64_t thread_id) {
  auto it = records_.find(thread_id);
  if (it == records_.end() || !it->second.running) {
    return NotFoundError(
        StrFormat("no running thread %lld", static_cast<long long>(thread_id)));
  }
  Decision decision = kernel_->monitor().Check(subject, it->second.node, AccessMode::kRead);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  std::vector<std::string> drained = std::move(it->second.mailbox);
  it->second.mailbox.clear();
  return drained;
}

StatusOr<int64_t> ThreadService::PendingMessages(Subject& subject, int64_t thread_id) {
  auto it = records_.find(thread_id);
  if (it == records_.end() || !it->second.running) {
    return NotFoundError(
        StrFormat("no running thread %lld", static_cast<long long>(thread_id)));
  }
  Decision decision = kernel_->monitor().Check(subject, it->second.node, AccessMode::kRead);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  return static_cast<int64_t>(it->second.mailbox.size());
}

size_t ThreadService::live_count() const {
  size_t n = 0;
  for (const auto& [id, record] : records_) {
    if (record.running) {
      ++n;
    }
  }
  return n;
}

}  // namespace xsec
