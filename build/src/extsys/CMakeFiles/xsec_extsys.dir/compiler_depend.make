# Empty compiler generated dependencies file for xsec_extsys.
# This may be replaced when dependencies are built.
