# Empty compiler generated dependencies file for xsec_codeload.
# This may be replaced when dependencies are built.
