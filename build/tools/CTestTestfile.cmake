# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(policyc_demo_checks "sh" "-c" "/root/repo/build/tools/policyc demo > demo.pol && /root/repo/build/tools/policyc check demo.pol")
set_tests_properties(policyc_demo_checks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(policyc_rejects_garbage "sh" "-c" "echo garbage > bad.pol; ! /root/repo/build/tools/policyc check bad.pol")
set_tests_properties(policyc_rejects_garbage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
