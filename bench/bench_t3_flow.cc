// Experiment T3 — information-flow soundness under randomized workloads.
//
// DAC is wide open in the simulated world; subjects and objects carry random
// security classes. Each model processes the same operation stream; every
// ALLOWED operation that violates the lattice flow rules counts as one flow
// violation. Paper claim (§2.2): with mandatory control, "all flow of
// information … can be tightly controlled" — the xsec-dac+mac row must be 0,
// and every discretionary-only model must leak.

#include <cstdio>

#include "src/core/flow_sim.h"
#include "src/core/scenarios.h"

int main() {
  xsec::ModelSet models;
  xsec::FlowSimConfig config;
  config.num_subjects = 32;
  config.num_objects = 256;
  config.num_ops = 200000;
  config.seed = 20260706;

  std::printf("T3: flow violations over %llu random read/write/append ops\n",
              static_cast<unsigned long long>(config.num_ops));
  std::printf("(%zu subjects x %zu objects, %zu levels x %zu categories, DAC wide open)\n\n",
              config.num_subjects, config.num_objects, config.num_levels,
              config.num_categories);
  std::printf("%-14s %10s %10s %14s %16s\n", "model", "allowed", "denied",
              "flow-violations", "over-restrictions");
  for (const xsec::ProtectionModel* model : models.all()) {
    xsec::FlowSimResult result = xsec::RunFlowSimulation(*model, config);
    std::printf("%-14s %10llu %10llu %14llu %16llu\n",
                std::string(model->name()).c_str(),
                static_cast<unsigned long long>(result.allowed),
                static_cast<unsigned long long>(result.denied),
                static_cast<unsigned long long>(result.flow_violations),
                static_cast<unsigned long long>(result.over_restrictions));
  }
  std::printf("\nexpected shape: every model except xsec-dac+mac has nonzero violations;\n");
  std::printf("xsec-dac+mac has exactly zero violations and zero over-restrictions.\n");
  return 0;
}
