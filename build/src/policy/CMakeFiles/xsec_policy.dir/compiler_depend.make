# Empty compiler generated dependencies file for xsec_policy.
# This may be replaced when dependencies are built.
