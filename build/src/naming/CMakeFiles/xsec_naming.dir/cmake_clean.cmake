file(REMOVE_RECURSE
  "CMakeFiles/xsec_naming.dir/namespace.cc.o"
  "CMakeFiles/xsec_naming.dir/namespace.cc.o.d"
  "CMakeFiles/xsec_naming.dir/path.cc.o"
  "CMakeFiles/xsec_naming.dir/path.cc.o.d"
  "libxsec_naming.a"
  "libxsec_naming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_naming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
