// A model-neutral world description for head-to-head protection comparisons.
//
// The paper's §1.2/§2 argument is comparative: Unix, AFS and NT cannot
// express what extensible systems need; the Java sandbox and SPIN domains
// are too coarse. To compare fairly, every scenario (experiment T1) is
// phrased against one world structure that carries *all* the policy inputs —
// Unix mode bits, object ACLs, SPIN domain links, origins, security classes —
// and each ProtectionModel reads only the inputs its real-world counterpart
// understands.

#ifndef XSEC_SRC_BASELINES_WORLD_H_
#define XSEC_SRC_BASELINES_WORLD_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/dac/access_mode.h"
#include "src/extsys/extension.h"  // for Origin
#include "src/mac/security_class.h"

namespace xsec {

struct BaselineSubject {
  std::string name;
  uint32_t uid = 0;
  std::set<uint32_t> gids;       // group memberships (transitively closed)
  Origin origin = Origin::kLocal;
  SecurityClass security_class;  // read by MAC-capable models only
  // VINO distinguishes "regular and privileged users" (paper §1.2).
  bool vino_privileged = false;
  // Inferno mutually authenticates communicating parties; it says nothing
  // about authorization, so this flag is all its model can consult.
  bool inferno_authenticated = true;
};

// One entry of a generic object ACL (read by AFS/NT/xsec models).
struct BaselineAce {
  bool allow = true;
  bool is_group = false;
  uint32_t id = 0;  // uid or gid
  AccessModeSet modes;
};

enum class ObjectCategory : uint8_t {
  kFile = 0,
  kDirectory,
  kServiceProcedure,  // callable (execute target)
  kServiceInterface,  // extensible (extend target)
  kThread,            // another subject's thread object
};

struct BaselineObject {
  std::string path;  // hierarchical ("/fs/projects/report")
  ObjectCategory category = ObjectCategory::kFile;
  uint32_t owner_uid = 0;
  uint32_t owner_gid = 0;
  // Unix permission bits, 0oOGW style (e.g. 0644). Only 9 rwx bits are used.
  uint16_t unix_mode = 0644;
  std::vector<BaselineAce> acl;  // object-granular ACL
  std::string spin_domain;       // which SPIN domain this object belongs to
  SecurityClass security_class;  // MAC label
  // VINO's dynamic privilege checks guard "sensitive data"; scenarios mark
  // which objects count as sensitive.
  bool vino_sensitive = false;
};

struct BaselineWorld {
  std::vector<BaselineSubject> subjects;
  std::vector<BaselineObject> objects;
  // SPIN: subject name -> names of domains the extension was linked against.
  std::map<std::string, std::set<std::string>> spin_links;
  // Java sandbox health: when any prong is broken, the sandbox fails open
  // for untrusted code (the "three prongs" critique, §1.2).
  bool java_verifier_ok = true;
  bool java_classloader_ok = true;
  bool java_security_manager_ok = true;

  const BaselineObject* FindObject(const std::string& path) const {
    for (const BaselineObject& object : objects) {
      if (object.path == path) {
        return &object;
      }
    }
    return nullptr;
  }
  BaselineSubject* FindSubject(const std::string& name) {
    for (BaselineSubject& subject : subjects) {
      if (subject.name == name) {
        return &subject;
      }
    }
    return nullptr;
  }
};

}  // namespace xsec

#endif  // XSEC_SRC_BASELINES_WORLD_H_
