#include "src/monitor/audit.h"

#include <ostream>

#include "src/base/strings.h"

namespace xsec {

std::string_view DenyReasonName(DenyReason reason) {
  switch (reason) {
    case DenyReason::kNone:
      return "none";
    case DenyReason::kNotFound:
      return "not-found";
    case DenyReason::kTraversal:
      return "traversal";
    case DenyReason::kDacExplicitDeny:
      return "dac-explicit-deny";
    case DenyReason::kDacNoGrant:
      return "dac-no-grant";
    case DenyReason::kMacFlow:
      return "mac-flow";
    case DenyReason::kNotAuthorized:
      return "not-authorized";
  }
  return "unknown";
}

std::string AuditRecord::ToString() const {
  return StrFormat("#%llu p%u/t%llu %s %s -> %s%s%s",
                   static_cast<unsigned long long>(sequence), principal.value,
                   static_cast<unsigned long long>(thread_id), path.c_str(),
                   modes.ToString().c_str(), allowed ? "ALLOW" : "DENY",
                   allowed ? "" : StrFormat(" (%s)", std::string(DenyReasonName(reason)).c_str())
                                      .c_str(),
                   detail.empty() ? "" : StrFormat(" [%s]", detail.c_str()).c_str());
}

std::string AuditRecord::ToJson() const {
  return StrFormat(
      "{\"seq\":%llu,\"principal\":%u,\"thread\":%llu,\"node\":%u,\"path\":\"%s\","
      "\"modes\":\"%s\",\"allowed\":%s,\"reason\":\"%s\",\"detail\":\"%s\"}",
      static_cast<unsigned long long>(sequence), principal.value,
      static_cast<unsigned long long>(thread_id), node.value, JsonEscape(path).c_str(),
      modes.ToString().c_str(), allowed ? "true" : "false",
      std::string(DenyReasonName(reason)).c_str(), JsonEscape(detail).c_str());
}

std::function<void(const AuditRecord&)> MakeNdjsonSink(std::ostream* out) {
  return [out](const AuditRecord& record) { *out << record.ToJson() << '\n'; };
}

void AuditLog::Record(AuditRecord record) {
  Count(record.allowed);
  if (!WouldRetain(record.allowed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  record.sequence = next_sequence_++;
  if (sink_) {
    sink_(record);
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else if (capacity_ > 0) {
    // Full: overwrite the oldest record (at head_) and advance.
    ring_[head_] = std::move(record);
    head_ = (head_ + 1) % capacity_;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void AuditLog::set_sink(std::function<void(const AuditRecord&)> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

template <typename Visit>
void AuditLog::ForEachLocked(Visit visit) const {
  for (size_t i = head_; i < ring_.size(); ++i) {
    visit(ring_[i]);
  }
  for (size_t i = 0; i < head_; ++i) {
    visit(ring_[i]);
  }
}

std::vector<AuditRecord> AuditLog::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditRecord> out;
  out.reserve(ring_.size());
  ForEachLocked([&out](const AuditRecord& r) { out.push_back(r); });
  return out;
}

std::vector<AuditRecord> AuditLog::Query(
    const std::function<bool(const AuditRecord&)>& pred) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditRecord> out;
  ForEachLocked([&out, &pred](const AuditRecord& r) {
    if (pred(r)) {
      out.push_back(r);
    }
  });
  return out;
}

void AuditLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  next_sequence_ = 0;
  total_checks_.store(0, std::memory_order_relaxed);
  total_denials_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace xsec
