file(REMOVE_RECURSE
  "CMakeFiles/threadmurder.dir/threadmurder.cpp.o"
  "CMakeFiles/threadmurder.dir/threadmurder.cpp.o.d"
  "threadmurder"
  "threadmurder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threadmurder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
