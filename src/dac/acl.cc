#include "src/dac/acl.h"

#include <algorithm>
#include <mutex>

#include "src/base/strings.h"

namespace xsec {

void Acl::AddEntry(const AclEntry& entry) {
  for (AclEntry& existing : entries_) {
    if (existing.type == entry.type && existing.who == entry.who) {
      existing.modes |= entry.modes;
      return;
    }
  }
  entries_.push_back(entry);
}

size_t Acl::RemoveEntriesFor(PrincipalId who) {
  size_t before = entries_.size();
  entries_.erase(
      std::remove_if(entries_.begin(), entries_.end(),
                     [who](const AclEntry& e) { return e.who == who; }),
      entries_.end());
  return before - entries_.size();
}

AclVerdict Acl::Evaluate(const DynamicBitset& closure, AccessModeSet requested) const {
  if (requested.empty()) {
    return AclVerdict::kGranted;
  }
  AccessModeSet allowed;
  for (const AclEntry& entry : entries_) {
    if (!closure.Test(entry.who.value)) {
      continue;
    }
    if (entry.type == AclEntryType::kDeny) {
      if (entry.modes.Intersects(requested)) {
        return AclVerdict::kDeniedByEntry;
      }
    } else {
      allowed |= entry.modes;
    }
  }
  return allowed.ContainsAll(requested) ? AclVerdict::kGranted : AclVerdict::kNoMatchingGrant;
}

AccessModeSet Acl::EffectiveModes(const DynamicBitset& closure) const {
  AccessModeSet allowed;
  AccessModeSet denied;
  for (const AclEntry& entry : entries_) {
    if (!closure.Test(entry.who.value)) {
      continue;
    }
    if (entry.type == AclEntryType::kDeny) {
      denied |= entry.modes;
    } else {
      allowed |= entry.modes;
    }
  }
  return allowed - denied;
}

std::string Acl::ToString() const {
  std::string out;
  for (const AclEntry& entry : entries_) {
    if (!out.empty()) {
      out += "; ";
    }
    out += entry.type == AclEntryType::kAllow ? "allow" : "deny";
    out += StrFormat(" p%u %s", entry.who.value, entry.modes.ToString().c_str());
  }
  return out.empty() ? "(empty)" : out;
}

AclStore::AclRef AclStore::Create(Acl acl) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  AclRef ref = static_cast<AclRef>(acls_.size());
  acls_.push_back(Slot{std::move(acl), 0});
  // Mutate, then publish: readers that observe the new generation also see
  // the new ACL (the lock orders the data; release orders the stamp).
  acls_.back().generation = store_generation_.fetch_add(1, std::memory_order_release) + 1;
  return ref;
}

const Acl* AclStore::Get(AclRef ref) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (ref >= acls_.size()) {
    return nullptr;
  }
  return &acls_[ref].acl;
}

AclVerdict AclStore::Evaluate(AclRef ref, const DynamicBitset& closure,
                              AccessModeSet requested) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (ref >= acls_.size()) {
    return requested.empty() ? AclVerdict::kGranted : AclVerdict::kNoMatchingGrant;
  }
  return acls_[ref].acl.Evaluate(closure, requested);
}

bool AclStore::CopyAcl(AclRef ref, Acl* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (ref >= acls_.size()) {
    return false;
  }
  *out = acls_[ref].acl;
  return true;
}

Status AclStore::Replace(AclRef ref, Acl acl) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (ref >= acls_.size()) {
    return NotFoundError("no such ACL");
  }
  acls_[ref].acl = std::move(acl);
  acls_[ref].generation = store_generation_.fetch_add(1, std::memory_order_release) + 1;
  return OkStatus();
}

Status AclStore::AddEntry(AclRef ref, const AclEntry& entry) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (ref >= acls_.size()) {
    return NotFoundError("no such ACL");
  }
  acls_[ref].acl.AddEntry(entry);
  acls_[ref].generation = store_generation_.fetch_add(1, std::memory_order_release) + 1;
  return OkStatus();
}

Status AclStore::RemoveEntriesFor(AclRef ref, PrincipalId who) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (ref >= acls_.size()) {
    return NotFoundError("no such ACL");
  }
  acls_[ref].acl.RemoveEntriesFor(who);
  acls_[ref].generation = store_generation_.fetch_add(1, std::memory_order_release) + 1;
  return OkStatus();
}

uint64_t AclStore::GenerationOf(AclRef ref) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (ref >= acls_.size()) {
    return 0;
  }
  return acls_[ref].generation;
}

size_t AclStore::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return acls_.size();
}

}  // namespace xsec
