#include "src/policy/policy_io.h"

#include <gtest/gtest.h>

#include "src/core/secure_system.h"

namespace xsec {
namespace {

TEST(PolicyIoTest, SerializeContainsEveryLayer) {
  Kernel kernel;
  (void)kernel.labels().DefineLevels({"low", "high"});
  (void)kernel.labels().DefineCategory("alpha");
  PrincipalId alice = *kernel.principals().CreateUser("alice");
  PrincipalId staff = *kernel.principals().CreateGroup("staff");
  (void)kernel.principals().AddMember(staff, alice);
  kernel.monitor().set_security_officer(alice);
  NodeId dir = *kernel.name_space().BindPath("/fs/data", NodeKind::kDirectory, alice);
  (void)kernel.name_space().SetLabelRef(
      dir, kernel.labels().StoreLabel(*kernel.labels().MakeClass("high", {"alpha"})));
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, staff, AccessMode::kRead | AccessMode::kList});
  acl.AddEntry({AclEntryType::kDeny, alice, AccessModeSet(AccessMode::kWrite)});
  (void)kernel.name_space().SetAclRef(dir, kernel.acls().Create(std::move(acl)));

  std::string text = SerializePolicy(kernel);
  EXPECT_NE(text.find("xsec-policy v1"), std::string::npos);
  EXPECT_NE(text.find("levels low high"), std::string::npos);
  EXPECT_NE(text.find("category alpha"), std::string::npos);
  EXPECT_NE(text.find("user alice"), std::string::npos);
  EXPECT_NE(text.find("group staff"), std::string::npos);
  EXPECT_NE(text.find("member staff alice"), std::string::npos);
  EXPECT_NE(text.find("officer alice"), std::string::npos);
  EXPECT_NE(text.find("node /fs/data directory alice"), std::string::npos);
  EXPECT_NE(text.find("label /fs/data high alpha"), std::string::npos);
  EXPECT_NE(text.find("acl /fs/data allow staff read|list"), std::string::npos);
  EXPECT_NE(text.find("acl /fs/data deny alice write"), std::string::npos);
}

TEST(PolicyIoTest, RoundTripIsStable) {
  Kernel source;
  (void)source.labels().DefineLevels({"others", "organization", "local"});
  (void)source.labels().DefineCategory("dep1");
  (void)source.labels().DefineCategory("dep2");
  PrincipalId alice = *source.principals().CreateUser("alice");
  PrincipalId bob = *source.principals().CreateUser("bob");
  PrincipalId team = *source.principals().CreateGroup("team");
  (void)source.principals().AddMember(team, alice);
  (void)source.principals().AddMember(team, bob);
  NodeId a = *source.name_space().BindPath("/fs/a", NodeKind::kFile, alice);
  NodeId b = *source.name_space().BindPath("/fs/b/c", NodeKind::kObject, bob);
  (void)source.name_space().SetLabelRef(
      a, source.labels().StoreLabel(*source.labels().MakeClass("organization", {"dep1"})));
  Acl acl_a;
  acl_a.AddEntry({AclEntryType::kAllow, team, AccessModeSet(AccessMode::kRead)});
  (void)source.name_space().SetAclRef(a, source.acls().Create(std::move(acl_a)));
  Acl acl_b;
  acl_b.AddEntry({AclEntryType::kDeny, bob, AccessModeSet(AccessMode::kDelete)});
  acl_b.AddEntry({AclEntryType::kAllow, alice, AccessModeSet::All()});
  (void)source.name_space().SetAclRef(b, source.acls().Create(std::move(acl_b)));

  std::string first = SerializePolicy(source);
  Kernel restored;
  ASSERT_TRUE(LoadPolicy(first, &restored).ok());
  std::string second = SerializePolicy(restored);
  EXPECT_EQ(first, second);
}

TEST(PolicyIoTest, RestoredKernelMakesIdenticalDecisions) {
  Kernel source;
  (void)source.labels().DefineLevels({"low", "high"});
  (void)source.labels().DefineCategory("a");
  PrincipalId alice = *source.principals().CreateUser("alice");
  PrincipalId bob = *source.principals().CreateUser("bob");
  NodeId secret = *source.name_space().BindPath("/fs/secret", NodeKind::kFile, alice);
  (void)source.name_space().SetLabelRef(
      secret, source.labels().StoreLabel(*source.labels().MakeClass("high", {"a"})));
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, alice, AccessMode::kRead | AccessMode::kWrite});
  acl.AddEntry({AclEntryType::kAllow, bob, AccessModeSet(AccessMode::kRead)});
  (void)source.name_space().SetAclRef(secret, source.acls().Create(std::move(acl)));

  Kernel restored;
  ASSERT_TRUE(LoadPolicy(SerializePolicy(source), &restored).ok());

  PrincipalId r_alice = *restored.principals().FindByName("alice");
  PrincipalId r_bob = *restored.principals().FindByName("bob");
  NodeId r_secret = *restored.name_space().Lookup("/fs/secret");
  SecurityClass high = *restored.labels().MakeClass("high", {"a"});

  Subject alice_high = restored.CreateSubject(r_alice, high);
  Subject bob_low = restored.CreateSubject(r_bob, restored.labels().Bottom());
  Subject bob_high = restored.CreateSubject(r_bob, high);
  EXPECT_TRUE(restored.monitor().Check(alice_high, r_secret, AccessMode::kRead).allowed);
  EXPECT_TRUE(restored.monitor().Check(alice_high, r_secret, AccessMode::kWrite).allowed);
  EXPECT_FALSE(restored.monitor().Check(bob_low, r_secret, AccessMode::kRead).allowed);
  EXPECT_TRUE(restored.monitor().Check(bob_high, r_secret, AccessMode::kRead).allowed);
  EXPECT_FALSE(restored.monitor().Check(bob_high, r_secret, AccessMode::kWrite).allowed);
}

TEST(PolicyIoTest, LoadOntoBootedSystemReattachesPolicyToServices) {
  // Serialize a SecureSystem's policy and re-apply it to a fresh one: the
  // service nodes already exist and are reused.
  SecureSystem source;
  PrincipalId alice = *source.CreateUser("alice");
  (void)*source.CreateUser("carol");
  NodeId read_proc = *source.name_space().Lookup("/svc/fs/read");
  (void)source.monitor().AddAclEntry(
      source.SystemSubject(), read_proc,
      {AclEntryType::kDeny, alice, AccessModeSet(AccessMode::kExecute)});
  std::string text = SerializePolicy(source.kernel());

  SecureSystem fresh;
  ASSERT_TRUE(LoadPolicy(text, &fresh.kernel()).ok());
  PrincipalId r_alice = *fresh.principals().FindByName("alice");
  Subject subject = fresh.Login(r_alice, fresh.labels().Bottom());
  // The procedure still has its handler (services installed it) AND the
  // restored deny applies.
  auto denied = fresh.Invoke(subject, "/svc/fs/read", {Value{std::string("/fs/x")}});
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  // Another restored user (in the restored "everyone" group) is unaffected.
  PrincipalId r_carol = *fresh.principals().FindByName("carol");
  Subject carol = fresh.Login(r_carol, fresh.labels().Bottom());
  auto not_found = fresh.Invoke(carol, "/svc/fs/read", {Value{std::string("/fs/x")}});
  EXPECT_EQ(not_found.status().code(), StatusCode::kNotFound);  // no such file, but callable
}

TEST(PolicyIoTest, CommentsAndBlankLinesIgnored) {
  Kernel kernel;
  std::string text =
      "# a policy\n"
      "xsec-policy v1\n"
      "\n"
      "user carol   # trailing comment\n"
      "group crew\n"
      "member crew carol\n";
  ASSERT_TRUE(LoadPolicy(text, &kernel).ok());
  EXPECT_TRUE(kernel.principals().FindByName("carol").ok());
  EXPECT_TRUE(kernel.principals().FindByName("crew").ok());
}

TEST(PolicyIoTest, MalformedPoliciesAreRejectedWithLineNumbers) {
  Kernel kernel;
  auto expect_fail = [&kernel](std::string_view text, std::string_view needle) {
    Kernel fresh;
    Status status = LoadPolicy(text, &fresh);
    ASSERT_FALSE(status.ok()) << text;
    EXPECT_NE(status.message().find(needle), std::string::npos) << status.message();
  };
  expect_fail("bogus header\n", "header");
  expect_fail("", "empty policy");
  expect_fail("xsec-policy v1\nfrobnicate x\n", "unknown directive");
  expect_fail("xsec-policy v1\nuser\n", "exactly one name");
  expect_fail("xsec-policy v1\nmember ghosts nobody\n", "unknown principal");
  expect_fail("xsec-policy v1\nnode /x widget system\n", "unknown node kind");
  expect_fail("xsec-policy v1\nlabel /missing low\n", "unknown node");
  expect_fail("xsec-policy v1\nuser u\nnode /x file u\nacl /x maybe u read\n", "polarity");
  expect_fail("xsec-policy v1\nuser u\nnode /x file u\nacl /x allow u fly\n",
              "unknown access mode");
  expect_fail("xsec-policy v1\nlevels a b\nlevels b a\n", "already defined differently");
  // Line numbers are reported.
  Status status = LoadPolicy("xsec-policy v1\n\nfrobnicate\n", &kernel);
  EXPECT_NE(status.message().find("line 3"), std::string::npos);
}

TEST(PolicyIoTest, ClearancesSurviveRoundTrip) {
  Kernel source;
  (void)source.labels().DefineLevels({"low", "high"});
  (void)source.labels().DefineCategory("a");
  PrincipalId alice = *source.principals().CreateUser("alice");
  CategorySet a(1);
  a.Set(0);
  source.labels().SetClearance(alice.value, SecurityClass(1, a));

  std::string text = SerializePolicy(source);
  EXPECT_NE(text.find("clearance alice high a"), std::string::npos);

  Kernel restored;
  ASSERT_TRUE(LoadPolicy(text, &restored).ok());
  PrincipalId r_alice = *restored.principals().FindByName("alice");
  const SecurityClass* clearance = restored.labels().ClearanceOf(r_alice.value);
  ASSERT_NE(clearance, nullptr);
  EXPECT_EQ(clearance->level(), 1);
  EXPECT_TRUE(clearance->categories().Test(0));
  EXPECT_EQ(text, SerializePolicy(restored));
}

TEST(PolicyIoTest, EmptyOwnAclSurvivesRoundTrip) {
  // An empty own ACL overrides inheritance (deny-all); it must not vanish.
  Kernel source;
  PrincipalId alice = *source.principals().CreateUser("alice");
  NodeId parent = *source.name_space().BindPath("/d", NodeKind::kDirectory, alice);
  Acl generous;
  generous.AddEntry({AclEntryType::kAllow, alice, AccessModeSet::All()});
  (void)source.name_space().SetAclRef(parent, source.acls().Create(std::move(generous)));
  NodeId child = *source.name_space().BindPath("/d/locked", NodeKind::kFile, alice);
  (void)source.name_space().SetAclRef(child, source.acls().Create(Acl()));  // deny-all

  std::string text = SerializePolicy(source);
  EXPECT_NE(text.find("acl /d/locked none"), std::string::npos);

  Kernel restored;
  ASSERT_TRUE(LoadPolicy(text, &restored).ok());
  PrincipalId r_alice = *restored.principals().FindByName("alice");
  NodeId r_child = *restored.name_space().Lookup("/d/locked");
  Subject subject = restored.CreateSubject(r_alice, restored.labels().Bottom());
  EXPECT_FALSE(restored.monitor().Check(subject, r_child, AccessMode::kRead).allowed);
  // Round-trip stability.
  EXPECT_EQ(text, SerializePolicy(restored));
}

TEST(PolicyIoTest, FirstAclDirectiveResetsSubsequentAppend) {
  Kernel kernel;
  PrincipalId alice = *kernel.principals().CreateUser("alice");
  PrincipalId bob = *kernel.principals().CreateUser("bob");
  NodeId node = *kernel.name_space().BindPath("/x", NodeKind::kFile, alice);
  Acl stale;
  stale.AddEntry({AclEntryType::kAllow, bob, AccessModeSet::All()});
  (void)kernel.name_space().SetAclRef(node, kernel.acls().Create(std::move(stale)));

  std::string text =
      "xsec-policy v1\n"
      "acl /x allow alice read\n"
      "acl /x deny bob read\n";
  ASSERT_TRUE(LoadPolicy(text, &kernel).ok());
  const Acl* acl = kernel.acls().Get(kernel.name_space().Get(node)->acl_ref);
  ASSERT_EQ(acl->entries().size(), 2u);  // the stale grant is gone
  Subject bob_s = kernel.CreateSubject(bob, kernel.labels().Bottom());
  EXPECT_FALSE(kernel.monitor().Check(bob_s, node, AccessMode::kRead).allowed);
}

}  // namespace
}  // namespace xsec
