// The scenario library: every protection claim and counterexample in the
// paper, phrased as a concrete world plus expected-outcome probes.
//
// A scenario is *handled* by a protection model iff every probe matches:
// accesses that must be denied are denied (security) AND accesses that must
// succeed succeed (functionality). Over-restrictive models fail functionality
// probes; permissive models fail security probes. Experiment T1 prints the
// resulting matrix; tests pin the expected row for every model.

#ifndef XSEC_SRC_CORE_SCENARIOS_H_
#define XSEC_SRC_CORE_SCENARIOS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baselines/afs_model.h"
#include "src/baselines/inferno_model.h"
#include "src/baselines/java_sandbox_model.h"
#include "src/baselines/model.h"
#include "src/baselines/nt_model.h"
#include "src/baselines/spin_domain_model.h"
#include "src/baselines/unix_model.h"
#include "src/baselines/vino_model.h"
#include "src/baselines/world.h"
#include "src/baselines/xsec_model.h"

namespace xsec {

struct Probe {
  std::string subject;  // BaselineSubject::name
  std::string object;   // BaselineObject::path
  AccessMode mode = AccessMode::kRead;
  bool should_allow = false;
  std::string why;  // one-line rationale shown in failure reports
};

struct Scenario {
  std::string id;         // "S1".."S13"
  std::string title;
  std::string paper_ref;  // which section/claim this reproduces
  BaselineWorld world;
  std::vector<Probe> probes;
};

// All thirteen scenarios (see each builder's comment for the paper mapping).
std::vector<Scenario> BuildScenarios();

struct ScenarioResult {
  bool handled = true;
  int security_failures = 0;     // should-deny but allowed
  int functionality_failures = 0;  // should-allow but denied
  std::vector<std::string> failed_probe_notes;
};

ScenarioResult RunScenario(const Scenario& scenario, const ProtectionModel& model);

// The ten models of experiment T1 (every system the paper surveys plus the
// proposed model in both halves), weakest first.
class ModelSet {
 public:
  ModelSet();
  const std::vector<const ProtectionModel*>& all() const { return all_; }

 private:
  NullModel none_;
  InfernoModel inferno_;
  JavaSandboxModel java_;
  SpinDomainModel spin_;
  VinoModel vino_;
  AfsModel afs_;
  UnixModel unix_;
  NtModel nt_;
  XsecDacModel xsec_dac_;
  XsecFullModel xsec_full_;
  std::vector<const ProtectionModel*> all_;
};

}  // namespace xsec

#endif  // XSEC_SRC_CORE_SCENARIOS_H_
