#include "src/extsys/kernel.h"

#include <gtest/gtest.h>

namespace xsec {
namespace {

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() : kernel_(MonitorOptions{.check_traversal = false}) {
    alice_ = *kernel_.principals().CreateUser("alice");
    bob_ = *kernel_.principals().CreateUser("bob");
    (void)kernel_.labels().DefineLevels({"low", "mid", "high"});
    (void)kernel_.labels().DefineCategory("a");
    (void)kernel_.labels().DefineCategory("b");
  }

  SecurityClass Cls(TrustLevel level, std::initializer_list<size_t> cats = {}) {
    CategorySet set(2);
    for (size_t c : cats) {
      set.Set(c);
    }
    return SecurityClass(level, std::move(set));
  }

  void Grant(std::string_view path, PrincipalId who, AccessModeSet modes) {
    NodeId node = *kernel_.name_space().Lookup(path);
    Acl acl;
    if (kernel_.name_space().Get(node)->acl_ref != kNoRef) {
      acl = *kernel_.acls().Get(kernel_.name_space().Get(node)->acl_ref);
    }
    acl.AddEntry({AclEntryType::kAllow, who, modes});
    (void)kernel_.name_space().SetAclRef(node, kernel_.acls().Create(std::move(acl)));
  }

  void Label(std::string_view path, const SecurityClass& cls) {
    NodeId node = *kernel_.name_space().Lookup(path);
    (void)kernel_.name_space().SetLabelRef(node, kernel_.labels().StoreLabel(cls));
  }

  // A procedure returning the sum of two integer arguments.
  void InstallAdder() {
    (void)*kernel_.RegisterService("/svc/math", kernel_.system_principal());
    (void)*kernel_.RegisterProcedure("/svc/math/add", kernel_.system_principal(),
                                     [](CallContext& ctx) -> StatusOr<Value> {
                                       auto a = ArgInt(ctx.args, 0);
                                       auto b = ArgInt(ctx.args, 1);
                                       if (!a.ok()) {
                                         return a.status();
                                       }
                                       if (!b.ok()) {
                                         return b.status();
                                       }
                                       return Value{*a + *b};
                                     });
  }

  Kernel kernel_;
  PrincipalId alice_, bob_;
};

TEST_F(KernelTest, InvokeHappyPath) {
  InstallAdder();
  Grant("/svc/math/add", alice_, AccessModeSet(AccessMode::kExecute));
  Subject subject = kernel_.CreateSubject(alice_, Cls(0));
  auto result = kernel_.Invoke(subject, "/svc/math/add",
                               {Value{int64_t{2}}, Value{int64_t{3}}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<int64_t>(*result), 5);
}

TEST_F(KernelTest, InvokeWithoutExecuteIsDenied) {
  InstallAdder();
  Subject subject = kernel_.CreateSubject(bob_, Cls(0));
  auto result = kernel_.Invoke(subject, "/svc/math/add", {});
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(KernelTest, InvokeMissingProcedure) {
  Subject subject = kernel_.CreateSubject(alice_, Cls(0));
  EXPECT_EQ(kernel_.Invoke(subject, "/svc/nothing", {}).status().code(),
            StatusCode::kNotFound);
}

TEST_F(KernelTest, InvokePropagatesHandlerErrors) {
  InstallAdder();
  Grant("/svc/math/add", alice_, AccessModeSet(AccessMode::kExecute));
  Subject subject = kernel_.CreateSubject(alice_, Cls(0));
  auto result = kernel_.Invoke(subject, "/svc/math/add", {Value{std::string("x")}});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(KernelTest, ExpiredDeadlineRejectsTheCallBeforeTheHandler) {
  InstallAdder();
  Grant("/svc/math/add", alice_, AccessModeSet(AccessMode::kExecute));
  Subject subject = kernel_.CreateSubject(alice_, Cls(0));
  CallOptions options;
  options.deadline_ns = 1;  // the monotonic clock passed 1ns long ago
  auto result = kernel_.Invoke(subject, "/svc/math/add",
                               {Value{int64_t{2}}, Value{int64_t{3}}}, options);
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(KernelTest, DeadlineReachesTheHandlerThroughCallContext) {
  (void)*kernel_.RegisterService("/svc/t", kernel_.system_principal());
  (void)*kernel_.RegisterProcedure("/svc/t/deadline", kernel_.system_principal(),
                                   [](CallContext& ctx) -> StatusOr<Value> {
                                     return Value{static_cast<int64_t>(ctx.deadline_ns)};
                                   });
  Grant("/svc/t/deadline", alice_, AccessModeSet(AccessMode::kExecute));
  Subject subject = kernel_.CreateSubject(alice_, Cls(0));
  // Unbounded by default.
  auto unbounded = kernel_.Invoke(subject, "/svc/t/deadline", {});
  ASSERT_TRUE(unbounded.ok()) << unbounded.status().ToString();
  EXPECT_EQ(std::get<int64_t>(*unbounded), 0);
  // A future deadline is forwarded verbatim for the handler to honor.
  CallOptions options;
  options.deadline_ns = MonotonicNowNs() + uint64_t{60} * 1'000'000'000;
  auto bounded = kernel_.Invoke(subject, "/svc/t/deadline", {}, options);
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(static_cast<uint64_t>(std::get<int64_t>(*bounded)), options.deadline_ns);
}

TEST_F(KernelTest, SubjectThreadIdsAreUnique) {
  Subject a = kernel_.CreateSubject(alice_, Cls(0));
  Subject b = kernel_.CreateSubject(alice_, Cls(0));
  EXPECT_NE(a.thread_id, b.thread_id);
}

TEST_F(KernelTest, LoadExtensionLinksImportsAndExports) {
  InstallAdder();
  (void)*kernel_.RegisterInterface("/svc/math/twice", kernel_.system_principal());
  Grant("/svc/math/add", alice_, AccessModeSet(AccessMode::kExecute));
  Grant("/svc/math/twice", alice_, AccessMode::kExtend | AccessMode::kExecute);

  ExtensionManifest manifest;
  manifest.name = "doubler";
  manifest.imports = {"/svc/math/add"};
  manifest.exports.push_back(
      {"/svc/math/twice", [](CallContext& ctx) -> StatusOr<Value> {
         auto v = ArgInt(ctx.args, 0);
         if (!v.ok()) {
           return v.status();
         }
         return Value{*v * 2};
       }});

  Subject loader = kernel_.CreateSubject(alice_, Cls(0));
  auto id = kernel_.LoadExtension(manifest, loader);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(kernel_.loaded_extension_count(), 1u);

  const LinkedExtension* ext = kernel_.GetExtension(*id);
  ASSERT_NE(ext, nullptr);
  EXPECT_EQ(ext->name, "doubler");
  ASSERT_EQ(ext->imports.size(), 1u);
  // The extension node appears in the name space.
  EXPECT_TRUE(kernel_.name_space().Lookup("/ext/doubler").ok());

  // The exported specialization is dispatchable.
  auto result = kernel_.RaiseEvent(loader, "/svc/math/twice", {Value{int64_t{21}}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<int64_t>(*result), 42);

  // The import capability works.
  auto sum = kernel_.CallCapability(loader, ext->imports[0],
                                    {Value{int64_t{1}}, Value{int64_t{2}}});
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(std::get<int64_t>(*sum), 3);
}

TEST_F(KernelTest, LinkFailsWithoutExecuteOnImport) {
  InstallAdder();
  ExtensionManifest manifest;
  manifest.name = "thief";
  manifest.imports = {"/svc/math/add"};  // no execute grant for bob
  Subject loader = kernel_.CreateSubject(bob_, Cls(0));
  auto id = kernel_.LoadExtension(manifest, loader);
  EXPECT_EQ(id.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(kernel_.loaded_extension_count(), 0u);
  // The rollback removed the /ext node, so the name is reusable.
  EXPECT_FALSE(kernel_.name_space().Lookup("/ext/thief").ok());
}

TEST_F(KernelTest, LinkFailsWithoutExtendOnExport) {
  (void)*kernel_.RegisterInterface("/svc/hook", kernel_.system_principal());
  ExtensionManifest manifest;
  manifest.name = "hijacker";
  manifest.exports.push_back(
      {"/svc/hook", [](CallContext&) -> StatusOr<Value> { return Value{}; }});
  Subject loader = kernel_.CreateSubject(bob_, Cls(0));
  EXPECT_EQ(kernel_.LoadExtension(manifest, loader).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(KernelTest, ExportTargetMustBeInterface) {
  InstallAdder();
  Grant("/svc/math/add", alice_, AccessMode::kExecute | AccessMode::kExtend);
  ExtensionManifest manifest;
  manifest.name = "confused";
  manifest.exports.push_back(
      {"/svc/math/add", [](CallContext&) -> StatusOr<Value> { return Value{}; }});
  Subject loader = kernel_.CreateSubject(alice_, Cls(0));
  EXPECT_EQ(kernel_.LoadExtension(manifest, loader).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(KernelTest, StaticClassGovernsLinkChecks) {
  InstallAdder();
  Label("/svc/math/add", Cls(2));  // only high subjects may observe/call
  Grant("/svc/math/add", alice_, AccessModeSet(AccessMode::kExecute));

  ExtensionManifest manifest;
  manifest.name = "lowcode";
  manifest.imports = {"/svc/math/add"};
  manifest.static_class = Cls(0);  // statically pinned to the least level

  // Even loaded by a high subject, the static class cannot link read-up.
  Subject loader = kernel_.CreateSubject(alice_, Cls(2));
  EXPECT_EQ(kernel_.LoadExtension(manifest, loader).status().code(),
            StatusCode::kPermissionDenied);

  // Without the pin, the loader's class links fine.
  manifest.static_class.reset();
  manifest.name = "highcode";
  EXPECT_TRUE(kernel_.LoadExtension(manifest, loader).ok());
}

TEST_F(KernelTest, CapabilityCallsRecheck) {
  InstallAdder();
  Grant("/svc/math/add", alice_, AccessModeSet(AccessMode::kExecute));
  ExtensionManifest manifest;
  manifest.name = "caller";
  manifest.imports = {"/svc/math/add"};
  Subject loader = kernel_.CreateSubject(alice_, Cls(0));
  auto id = kernel_.LoadExtension(manifest, loader);
  ASSERT_TRUE(id.ok());
  const LinkedExtension* ext = kernel_.GetExtension(*id);

  ASSERT_TRUE(kernel_
                  .CallCapability(loader, ext->imports[0],
                                  {Value{int64_t{1}}, Value{int64_t{1}}})
                  .ok());
  // Revoke: replace the procedure's ACL with an empty one.
  NodeId add = *kernel_.name_space().Lookup("/svc/math/add");
  (void)kernel_.acls().Replace(kernel_.name_space().Get(add)->acl_ref, Acl());
  EXPECT_EQ(kernel_
                .CallCapability(loader, ext->imports[0],
                                {Value{int64_t{1}}, Value{int64_t{1}}})
                .status()
                .code(),
            StatusCode::kPermissionDenied);
}

TEST_F(KernelTest, ClassSelectedDispatchOnInvoke) {
  (void)*kernel_.RegisterInterface("/svc/render", kernel_.system_principal());
  Grant("/svc/render", alice_, AccessMode::kExecute | AccessMode::kExtend);
  Grant("/svc/render", bob_, AccessModeSet(AccessMode::kExecute));

  // Two specializations at different classes.
  for (auto [level, tag] : {std::pair<TrustLevel, int64_t>{0, 100}, {2, 200}}) {
    ExtensionManifest manifest;
    manifest.name = std::string("render-l") + std::to_string(level);
    manifest.static_class = Cls(level);
    int64_t t = tag;
    manifest.exports.push_back(
        {"/svc/render", [t](CallContext&) -> StatusOr<Value> { return Value{t}; }});
    Subject loader = kernel_.CreateSubject(alice_, Cls(2));
    ASSERT_TRUE(kernel_.LoadExtension(manifest, loader).ok());
  }

  Subject low = kernel_.CreateSubject(bob_, Cls(0));
  Subject high = kernel_.CreateSubject(bob_, Cls(2));
  auto low_result = kernel_.Invoke(low, "/svc/render", {});
  ASSERT_TRUE(low_result.ok());
  EXPECT_EQ(std::get<int64_t>(*low_result), 100);
  auto high_result = kernel_.Invoke(high, "/svc/render", {});
  ASSERT_TRUE(high_result.ok());
  EXPECT_EQ(std::get<int64_t>(*high_result), 200);
}

TEST_F(KernelTest, BroadcastEventRunsAllEligible) {
  (void)*kernel_.RegisterInterface("/svc/notify", kernel_.system_principal());
  Grant("/svc/notify", alice_, AccessMode::kExecute | AccessMode::kExtend);
  int calls = 0;
  for (int i = 0; i < 3; ++i) {
    ExtensionManifest manifest;
    manifest.name = "observer" + std::to_string(i);
    manifest.static_class = Cls(0);
    manifest.exports.push_back({"/svc/notify", [&calls](CallContext&) -> StatusOr<Value> {
                                  ++calls;
                                  return Value{true};
                                }});
    Subject loader = kernel_.CreateSubject(alice_, Cls(0));
    ASSERT_TRUE(kernel_.LoadExtension(manifest, loader).ok());
  }
  Subject subject = kernel_.CreateSubject(alice_, Cls(1));
  ASSERT_TRUE(kernel_.RaiseEvent(subject, "/svc/notify", {}, DispatchMode::kBroadcast).ok());
  EXPECT_EQ(calls, 3);
}

TEST_F(KernelTest, ClassPropagatesThroughNestedCalls) {
  InstallAdder();
  Label("/svc/math/add", Cls(2));  // high-only procedure
  Grant("/svc/math/add", alice_, AccessModeSet(AccessMode::kExecute));
  // A relay procedure that calls add on behalf of its caller.
  (void)*kernel_.RegisterService("/svc/relay", kernel_.system_principal());
  (void)*kernel_.RegisterProcedure(
      "/svc/relay/go", kernel_.system_principal(),
      [](CallContext& ctx) -> StatusOr<Value> {
        return ctx.kernel->Invoke(*ctx.subject, "/svc/math/add",
                                  {Value{int64_t{1}}, Value{int64_t{2}}});
      });
  Grant("/svc/relay/go", alice_, AccessModeSet(AccessMode::kExecute));

  // The relay itself is reachable by everyone, but the caller's class rides
  // along: a low caller is denied at the inner call.
  Subject low = kernel_.CreateSubject(alice_, Cls(0));
  EXPECT_EQ(kernel_.Invoke(low, "/svc/relay/go", {}).status().code(),
            StatusCode::kPermissionDenied);
  Subject high = kernel_.CreateSubject(alice_, Cls(2));
  auto result = kernel_.Invoke(high, "/svc/relay/go", {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<int64_t>(*result), 3);
}

TEST_F(KernelTest, UnloadExtensionRemovesHandlersAndNode) {
  (void)*kernel_.RegisterInterface("/svc/hook", kernel_.system_principal());
  Grant("/svc/hook", alice_, AccessMode::kExecute | AccessMode::kExtend);
  ExtensionManifest manifest;
  manifest.name = "temp";
  manifest.exports.push_back(
      {"/svc/hook", [](CallContext&) -> StatusOr<Value> { return Value{true}; }});
  Subject loader = kernel_.CreateSubject(alice_, Cls(0));
  auto id = kernel_.LoadExtension(manifest, loader);
  ASSERT_TRUE(id.ok());

  // A stranger may not unload it.
  Subject stranger = kernel_.CreateSubject(bob_, Cls(0));
  EXPECT_EQ(kernel_.UnloadExtension(stranger, *id).code(), StatusCode::kPermissionDenied);

  ASSERT_TRUE(kernel_.UnloadExtension(loader, *id).ok());
  EXPECT_EQ(kernel_.loaded_extension_count(), 0u);
  EXPECT_EQ(kernel_.GetExtension(*id), nullptr);
  EXPECT_FALSE(kernel_.name_space().Lookup("/ext/temp").ok());
  EXPECT_EQ(kernel_.RaiseEvent(loader, "/svc/hook", {}).status().code(),
            StatusCode::kNotFound);
  // Double unload reports not-found.
  EXPECT_EQ(kernel_.UnloadExtension(loader, *id).code(), StatusCode::kNotFound);
}

TEST_F(KernelTest, DuplicateExtensionNameRejected) {
  ExtensionManifest manifest;
  manifest.name = "dup";
  Subject loader = kernel_.CreateSubject(alice_, Cls(0));
  ASSERT_TRUE(kernel_.LoadExtension(manifest, loader).ok());
  EXPECT_EQ(kernel_.LoadExtension(manifest, loader).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(KernelTest, SetProcedureHandlerRebinds) {
  InstallAdder();
  Grant("/svc/math/add", alice_, AccessModeSet(AccessMode::kExecute));
  NodeId add = *kernel_.name_space().Lookup("/svc/math/add");
  ASSERT_TRUE(kernel_
                  .SetProcedureHandler(
                      add, [](CallContext&) -> StatusOr<Value> { return Value{int64_t{-1}}; })
                  .ok());
  Subject subject = kernel_.CreateSubject(alice_, Cls(0));
  auto result = kernel_.Invoke(subject, "/svc/math/add", {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<int64_t>(*result), -1);
  EXPECT_EQ(kernel_.SetProcedureHandler(NodeId{9999}, nullptr).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace xsec
