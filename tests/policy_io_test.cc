#include "src/policy/policy_io.h"

#include <gtest/gtest.h>

#include "src/core/secure_system.h"

namespace xsec {
namespace {

TEST(PolicyIoTest, SerializeContainsEveryLayer) {
  Kernel kernel;
  (void)kernel.labels().DefineLevels({"low", "high"});
  (void)kernel.labels().DefineCategory("alpha");
  PrincipalId alice = *kernel.principals().CreateUser("alice");
  PrincipalId staff = *kernel.principals().CreateGroup("staff");
  (void)kernel.principals().AddMember(staff, alice);
  kernel.monitor().set_security_officer(alice);
  NodeId dir = *kernel.name_space().BindPath("/fs/data", NodeKind::kDirectory, alice);
  (void)kernel.name_space().SetLabelRef(
      dir, kernel.labels().StoreLabel(*kernel.labels().MakeClass("high", {"alpha"})));
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, staff, AccessMode::kRead | AccessMode::kList});
  acl.AddEntry({AclEntryType::kDeny, alice, AccessModeSet(AccessMode::kWrite)});
  (void)kernel.name_space().SetAclRef(dir, kernel.acls().Create(std::move(acl)));

  auto serialized = SerializePolicy(kernel);
  ASSERT_TRUE(serialized.ok()) << serialized.status().ToString();
  const std::string& text = *serialized;
  EXPECT_NE(text.find("xsec-policy v1"), std::string::npos);
  EXPECT_NE(text.find("levels low high"), std::string::npos);
  EXPECT_NE(text.find("category alpha"), std::string::npos);
  EXPECT_NE(text.find("user alice"), std::string::npos);
  EXPECT_NE(text.find("group staff"), std::string::npos);
  EXPECT_NE(text.find("member staff alice"), std::string::npos);
  EXPECT_NE(text.find("officer alice"), std::string::npos);
  EXPECT_NE(text.find("node /fs/data directory alice"), std::string::npos);
  EXPECT_NE(text.find("label /fs/data high alpha"), std::string::npos);
  EXPECT_NE(text.find("acl /fs/data allow staff read|list"), std::string::npos);
  EXPECT_NE(text.find("acl /fs/data deny alice write"), std::string::npos);
}

TEST(PolicyIoTest, RoundTripIsStable) {
  Kernel source;
  (void)source.labels().DefineLevels({"others", "organization", "local"});
  (void)source.labels().DefineCategory("dep1");
  (void)source.labels().DefineCategory("dep2");
  PrincipalId alice = *source.principals().CreateUser("alice");
  PrincipalId bob = *source.principals().CreateUser("bob");
  PrincipalId team = *source.principals().CreateGroup("team");
  (void)source.principals().AddMember(team, alice);
  (void)source.principals().AddMember(team, bob);
  NodeId a = *source.name_space().BindPath("/fs/a", NodeKind::kFile, alice);
  NodeId b = *source.name_space().BindPath("/fs/b/c", NodeKind::kObject, bob);
  (void)source.name_space().SetLabelRef(
      a, source.labels().StoreLabel(*source.labels().MakeClass("organization", {"dep1"})));
  Acl acl_a;
  acl_a.AddEntry({AclEntryType::kAllow, team, AccessModeSet(AccessMode::kRead)});
  (void)source.name_space().SetAclRef(a, source.acls().Create(std::move(acl_a)));
  Acl acl_b;
  acl_b.AddEntry({AclEntryType::kDeny, bob, AccessModeSet(AccessMode::kDelete)});
  acl_b.AddEntry({AclEntryType::kAllow, alice, AccessModeSet::All()});
  (void)source.name_space().SetAclRef(b, source.acls().Create(std::move(acl_b)));

  auto first = SerializePolicy(source);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Kernel restored;
  ASSERT_TRUE(LoadPolicy(*first, &restored).ok());
  auto second = SerializePolicy(restored);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(*first, *second);
}

TEST(PolicyIoTest, RestoredKernelMakesIdenticalDecisions) {
  Kernel source;
  (void)source.labels().DefineLevels({"low", "high"});
  (void)source.labels().DefineCategory("a");
  PrincipalId alice = *source.principals().CreateUser("alice");
  PrincipalId bob = *source.principals().CreateUser("bob");
  NodeId secret = *source.name_space().BindPath("/fs/secret", NodeKind::kFile, alice);
  (void)source.name_space().SetLabelRef(
      secret, source.labels().StoreLabel(*source.labels().MakeClass("high", {"a"})));
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, alice, AccessMode::kRead | AccessMode::kWrite});
  acl.AddEntry({AclEntryType::kAllow, bob, AccessModeSet(AccessMode::kRead)});
  (void)source.name_space().SetAclRef(secret, source.acls().Create(std::move(acl)));

  auto serialized = SerializePolicy(source);
  ASSERT_TRUE(serialized.ok()) << serialized.status().ToString();
  Kernel restored;
  ASSERT_TRUE(LoadPolicy(*serialized, &restored).ok());

  PrincipalId r_alice = *restored.principals().FindByName("alice");
  PrincipalId r_bob = *restored.principals().FindByName("bob");
  NodeId r_secret = *restored.name_space().Lookup("/fs/secret");
  SecurityClass high = *restored.labels().MakeClass("high", {"a"});

  Subject alice_high = restored.CreateSubject(r_alice, high);
  Subject bob_low = restored.CreateSubject(r_bob, restored.labels().Bottom());
  Subject bob_high = restored.CreateSubject(r_bob, high);
  EXPECT_TRUE(restored.monitor().Check(alice_high, r_secret, AccessMode::kRead).allowed);
  EXPECT_TRUE(restored.monitor().Check(alice_high, r_secret, AccessMode::kWrite).allowed);
  EXPECT_FALSE(restored.monitor().Check(bob_low, r_secret, AccessMode::kRead).allowed);
  EXPECT_TRUE(restored.monitor().Check(bob_high, r_secret, AccessMode::kRead).allowed);
  EXPECT_FALSE(restored.monitor().Check(bob_high, r_secret, AccessMode::kWrite).allowed);
}

TEST(PolicyIoTest, LoadOntoBootedSystemReattachesPolicyToServices) {
  // Serialize a SecureSystem's policy and re-apply it to a fresh one: the
  // service nodes already exist and are reused.
  SecureSystem source;
  PrincipalId alice = *source.CreateUser("alice");
  (void)*source.CreateUser("carol");
  NodeId read_proc = *source.name_space().Lookup("/svc/fs/read");
  (void)source.monitor().AddAclEntry(
      source.SystemSubject(), read_proc,
      {AclEntryType::kDeny, alice, AccessModeSet(AccessMode::kExecute)});
  auto serialized = SerializePolicy(source.kernel());
  ASSERT_TRUE(serialized.ok()) << serialized.status().ToString();
  const std::string& text = *serialized;

  SecureSystem fresh;
  ASSERT_TRUE(LoadPolicy(text, &fresh.kernel()).ok());
  PrincipalId r_alice = *fresh.principals().FindByName("alice");
  Subject subject = fresh.Login(r_alice, fresh.labels().Bottom());
  // The procedure still has its handler (services installed it) AND the
  // restored deny applies.
  auto denied = fresh.Invoke(subject, "/svc/fs/read", {Value{std::string("/fs/x")}});
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  // Another restored user (in the restored "everyone" group) is unaffected.
  PrincipalId r_carol = *fresh.principals().FindByName("carol");
  Subject carol = fresh.Login(r_carol, fresh.labels().Bottom());
  auto not_found = fresh.Invoke(carol, "/svc/fs/read", {Value{std::string("/fs/x")}});
  EXPECT_EQ(not_found.status().code(), StatusCode::kNotFound);  // no such file, but callable
}

TEST(PolicyIoTest, CommentsAndBlankLinesIgnored) {
  Kernel kernel;
  std::string text =
      "# a policy\n"
      "xsec-policy v1\n"
      "\n"
      "user carol   # trailing comment\n"
      "group crew\n"
      "member crew carol\n";
  ASSERT_TRUE(LoadPolicy(text, &kernel).ok());
  EXPECT_TRUE(kernel.principals().FindByName("carol").ok());
  EXPECT_TRUE(kernel.principals().FindByName("crew").ok());
}

TEST(PolicyIoTest, MalformedPoliciesAreRejectedWithLineNumbers) {
  Kernel kernel;
  auto expect_fail = [&kernel](std::string_view text, std::string_view needle) {
    Kernel fresh;
    Status status = LoadPolicy(text, &fresh);
    ASSERT_FALSE(status.ok()) << text;
    EXPECT_NE(status.message().find(needle), std::string::npos) << status.message();
  };
  expect_fail("bogus header\n", "header");
  expect_fail("", "empty policy");
  expect_fail("xsec-policy v1\nfrobnicate x\n", "unknown directive");
  expect_fail("xsec-policy v1\nuser\n", "exactly one name");
  expect_fail("xsec-policy v1\nmember ghosts nobody\n", "unknown principal");
  expect_fail("xsec-policy v1\nnode /x widget system\n", "unknown node kind");
  expect_fail("xsec-policy v1\nlabel /missing low\n", "unknown node");
  expect_fail("xsec-policy v1\nuser u\nnode /x file u\nacl /x maybe u read\n", "polarity");
  expect_fail("xsec-policy v1\nuser u\nnode /x file u\nacl /x allow u fly\n",
              "unknown access mode");
  expect_fail("xsec-policy v1\nlevels a b\nlevels b a\n", "already defined differently");
  // Line numbers are reported.
  Status status = LoadPolicy("xsec-policy v1\n\nfrobnicate\n", &kernel);
  EXPECT_NE(status.message().find("line 3"), std::string::npos);
}

TEST(PolicyIoTest, ClearancesSurviveRoundTrip) {
  Kernel source;
  (void)source.labels().DefineLevels({"low", "high"});
  (void)source.labels().DefineCategory("a");
  PrincipalId alice = *source.principals().CreateUser("alice");
  CategorySet a(1);
  a.Set(0);
  source.labels().SetClearance(alice.value, SecurityClass(1, a));

  auto serialized = SerializePolicy(source);
  ASSERT_TRUE(serialized.ok()) << serialized.status().ToString();
  const std::string& text = *serialized;
  EXPECT_NE(text.find("clearance alice high a"), std::string::npos);

  Kernel restored;
  ASSERT_TRUE(LoadPolicy(text, &restored).ok());
  PrincipalId r_alice = *restored.principals().FindByName("alice");
  const SecurityClass* clearance = restored.labels().ClearanceOf(r_alice.value);
  ASSERT_NE(clearance, nullptr);
  EXPECT_EQ(clearance->level(), 1);
  EXPECT_TRUE(clearance->categories().Test(0));
  auto again = SerializePolicy(restored);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(text, *again);
}

TEST(PolicyIoTest, EmptyOwnAclSurvivesRoundTrip) {
  // An empty own ACL overrides inheritance (deny-all); it must not vanish.
  Kernel source;
  PrincipalId alice = *source.principals().CreateUser("alice");
  NodeId parent = *source.name_space().BindPath("/d", NodeKind::kDirectory, alice);
  Acl generous;
  generous.AddEntry({AclEntryType::kAllow, alice, AccessModeSet::All()});
  (void)source.name_space().SetAclRef(parent, source.acls().Create(std::move(generous)));
  NodeId child = *source.name_space().BindPath("/d/locked", NodeKind::kFile, alice);
  (void)source.name_space().SetAclRef(child, source.acls().Create(Acl()));  // deny-all

  auto serialized = SerializePolicy(source);
  ASSERT_TRUE(serialized.ok()) << serialized.status().ToString();
  const std::string& text = *serialized;
  EXPECT_NE(text.find("acl /d/locked none"), std::string::npos);

  Kernel restored;
  ASSERT_TRUE(LoadPolicy(text, &restored).ok());
  PrincipalId r_alice = *restored.principals().FindByName("alice");
  NodeId r_child = *restored.name_space().Lookup("/d/locked");
  Subject subject = restored.CreateSubject(r_alice, restored.labels().Bottom());
  EXPECT_FALSE(restored.monitor().Check(subject, r_child, AccessMode::kRead).allowed);
  // Round-trip stability.
  auto again = SerializePolicy(restored);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(text, *again);
}

TEST(PolicyIoTest, SerializeFailsOnUnnamedLevel) {
  // A label can hold a level index with no defined name (levels were never
  // defined, or the class was built numerically). Serializing it used to
  // emit "level-1", which LoadPolicy cannot parse; now it fails loudly.
  Kernel kernel;
  PrincipalId alice = *kernel.principals().CreateUser("alice");
  NodeId node = *kernel.name_space().BindPath("/x", NodeKind::kFile, alice);
  (void)kernel.name_space().SetLabelRef(
      node, kernel.labels().StoreLabel(SecurityClass(1, CategorySet())));

  auto serialized = SerializePolicy(kernel);
  ASSERT_FALSE(serialized.ok());
  EXPECT_EQ(serialized.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(serialized.status().message().find("/x"), std::string::npos)
      << serialized.status().message();
  EXPECT_NE(serialized.status().message().find("level"), std::string::npos);
}

TEST(PolicyIoTest, SerializeFailsOnUnnamedCategory) {
  Kernel kernel;
  (void)kernel.labels().DefineLevels({"low", "high"});
  PrincipalId alice = *kernel.principals().CreateUser("alice");
  CategorySet cats(3);
  cats.Set(2);  // no category names defined at all
  kernel.labels().SetClearance(alice.value, SecurityClass(1, cats));

  auto serialized = SerializePolicy(kernel);
  ASSERT_FALSE(serialized.ok());
  EXPECT_EQ(serialized.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(serialized.status().message().find("alice"), std::string::npos)
      << serialized.status().message();
  EXPECT_NE(serialized.status().message().find("category"), std::string::npos);
}

TEST(PolicyIoTest, SerializeFailsOnUnregisteredPrincipal) {
  // A node owned by a principal id outside the registry used to serialize
  // as "p42"; that token never loads back.
  Kernel kernel;
  PrincipalId alice = *kernel.principals().CreateUser("alice");
  NodeId node = *kernel.name_space().BindPath("/x", NodeKind::kFile, alice);
  (void)kernel.name_space().SetOwner(node, PrincipalId{42});

  auto serialized = SerializePolicy(kernel);
  ASSERT_FALSE(serialized.ok());
  EXPECT_EQ(serialized.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(serialized.status().message().find("42"), std::string::npos)
      << serialized.status().message();
  EXPECT_NE(serialized.status().message().find("/x"), std::string::npos);
}

TEST(PolicyIoTest, NamesThatWouldBreakTokenizationAreRejectedAtCreation) {
  // Spaces split tokens and '#' starts a comment in the policy format, so
  // both are rejected where names enter the system — serialization then
  // never has to escape.
  Kernel kernel;
  EXPECT_FALSE(kernel.principals().CreateUser("al ice").ok());
  EXPECT_FALSE(kernel.principals().CreateUser("ali#ce").ok());
  EXPECT_FALSE(kernel.principals().CreateUser("tab\tbed").ok());
  PrincipalId alice = *kernel.principals().CreateUser("alice");
  EXPECT_FALSE(kernel.name_space().BindPath("/a b", NodeKind::kFile, alice).ok());
  EXPECT_FALSE(kernel.name_space().BindPath("/a#b", NodeKind::kFile, alice).ok());
  EXPECT_TRUE(kernel.name_space().BindPath("/a.b-c_d", NodeKind::kFile, alice).ok());
}

TEST(PolicyIoTest, NodeDirectiveRejectsKindMismatch) {
  // Loading "node /x directory ..." onto an existing file must error, not
  // silently keep the file.
  Kernel kernel;
  PrincipalId alice = *kernel.principals().CreateUser("alice");
  (void)*kernel.name_space().BindPath("/x", NodeKind::kFile, alice);

  Status status = LoadPolicy(
      "xsec-policy v1\n"
      "user alice\n"
      "node /x directory alice\n",
      &kernel);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("line 3"), std::string::npos) << status.message();
  EXPECT_NE(status.message().find("already exists as file"), std::string::npos);
  // Matching kind still reuses the node and just reassigns the owner.
  PrincipalId bob = *kernel.principals().CreateUser("bob");
  (void)bob;
  ASSERT_TRUE(LoadPolicy(
                  "xsec-policy v1\n"
                  "user bob\n"
                  "node /x file bob\n",
                  &kernel)
                  .ok());
  EXPECT_EQ(kernel.name_space().Get(*kernel.name_space().Lookup("/x"))->owner, bob);
}

TEST(PolicyIoTest, FirstAclDirectiveResetsSubsequentAppend) {
  Kernel kernel;
  PrincipalId alice = *kernel.principals().CreateUser("alice");
  PrincipalId bob = *kernel.principals().CreateUser("bob");
  NodeId node = *kernel.name_space().BindPath("/x", NodeKind::kFile, alice);
  Acl stale;
  stale.AddEntry({AclEntryType::kAllow, bob, AccessModeSet::All()});
  (void)kernel.name_space().SetAclRef(node, kernel.acls().Create(std::move(stale)));

  std::string text =
      "xsec-policy v1\n"
      "acl /x allow alice read\n"
      "acl /x deny bob read\n";
  ASSERT_TRUE(LoadPolicy(text, &kernel).ok());
  const Acl* acl = kernel.acls().Get(kernel.name_space().Get(node)->acl_ref);
  ASSERT_EQ(acl->entries().size(), 2u);  // the stale grant is gone
  Subject bob_s = kernel.CreateSubject(bob, kernel.labels().Bottom());
  EXPECT_FALSE(kernel.monitor().Check(bob_s, node, AccessMode::kRead).allowed);
}

}  // namespace
}  // namespace xsec
