// Verifies the umbrella header is self-contained and sufficient for the
// public API surface an application uses.
#include "src/xsec.h"

#include <gtest/gtest.h>

namespace xsec {
namespace {

TEST(UmbrellaHeaderTest, PublicApiReachable) {
  SecureSystem sys;
  auto user = sys.CreateUser("u");
  ASSERT_TRUE(user.ok());
  Subject subject = sys.Login(*user, sys.labels().Bottom());
  EXPECT_TRUE(sys.Invoke(subject, "/svc/mbuf/stats", {}).ok());
  // Policy + codeload symbols are visible too.
  auto policy = SerializePolicy(sys.kernel());
  ASSERT_TRUE(policy.ok());
  EXPECT_NE(policy->find("xsec-policy v1"), std::string::npos);
  CodeImage image = PackageExtension(ExtensionManifest{});
  EXPECT_EQ(image.checksum, ComputeManifestChecksum(image.manifest));
  AppletMatrix matrix;  // core example helpers
  EXPECT_EQ(matrix.mismatches, 0);
}

}  // namespace
}  // namespace xsec
