// Cross-shard invocation grants (docs/MODEL.md §15).
//
// With sharded stamps, a monitor shard is also an isolation boundary for the
// mediation transport: a batch routed onto one shard reads exactly one
// shard-local stamp set. A subject whose home shard (ShardOfPrincipal) is A
// invoking an object in shard B is the cross-shard case; this table makes
// that step explicit, the way capability transfer is explicit in the paper's
// protected extensible systems — the grant is an *admission* ticket for the
// transport, recorded per target shard, optionally one-shot (a transfer:
// consumed by the first admitted invocation).
//
// Admission-only: an admitted request still runs the full DAC/MAC check; a
// grant can never widen what policy allows, only let the request reach the
// target shard's worker. Revocation is immediate (the table is consulted at
// every submit), and a missing grant fails fast at submit, before any batch
// work is spent on the request.
//
// Each shard's slice owns its own lock and interns grantee names into a
// shard-local PrincipalInternPool, so grant churn in one shard never touches
// another shard's lines and a million-subject table stores each name once
// per shard in flat arena storage.

#ifndef XSEC_SRC_MONITOR_SHARD_GRANT_H_
#define XSEC_SRC_MONITOR_SHARD_GRANT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <unordered_map>

#include "src/base/shard.h"
#include "src/naming/namespace.h"
#include "src/principal/intern_pool.h"
#include "src/principal/principal.h"

namespace xsec {

class ShardGrantTable {
 public:
  // Records that `grantee` may submit cross-shard requests against `node`
  // in target shard `shard`. `grantee_name` is interned shard-locally (for
  // telemetry; pass the registry name). A one-shot grant is a transfer:
  // consumed by the first admitted submission. Granting again overwrites
  // (e.g. upgrades one-shot to persistent). Non-concrete shards need no
  // grant and the call is a no-op.
  void Grant(PrincipalId grantee, std::string_view grantee_name, NodeId node, ShardId shard,
             bool one_shot = false);

  // Drops the grant if present. Takes effect at the next Admit.
  void Revoke(PrincipalId grantee, NodeId node, ShardId shard);

  // Consulted by the transport at submit time for cross-shard requests:
  // true admits (consuming a one-shot grant), false rejects. Requests whose
  // target shard is not concrete are always admitted — the aggregate domain
  // has no cross-shard boundary.
  bool Admit(PrincipalId grantee, NodeId node, ShardId shard);

  // -- Telemetry --------------------------------------------------------------

  uint64_t admitted() const { return admitted_.load(std::memory_order_relaxed); }
  uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }
  // One-shot grants consumed (each also counts as admitted).
  uint64_t transfers_consumed() const {
    return transfers_consumed_.load(std::memory_order_relaxed);
  }
  // Live grants across all shards.
  size_t grant_count() const;
  // Distinct grantee names interned / arena bytes across all shards.
  size_t interned_names() const;
  size_t interned_bytes() const;

 private:
  struct Slice {
    mutable std::mutex mu;
    PrincipalInternPool names;                        // shard-local, under mu
    std::unordered_map<uint64_t, uint8_t> grants;     // key → flags, under mu
  };

  static constexpr uint8_t kOneShot = 1;

  static uint64_t Key(PrincipalId grantee, NodeId node) {
    return (uint64_t{grantee.value} << 32) | node.value;
  }

  std::array<Slice, kMonitorShardCount> slices_;
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> transfers_consumed_{0};
};

}  // namespace xsec

#endif  // XSEC_SRC_MONITOR_SHARD_GRANT_H_
