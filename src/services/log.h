// An append-only system log service.
//
// This is the canonical user of the `write-append` access mode (§2.1/§2.2):
// low-trust subjects may be allowed to *add* entries to a higher-trust log
// without being able to read it back or overwrite what is already there —
// exactly the paper's "limit subjects at a lower level of trust to blindly
// overwrite objects at a higher level of trust" case. The log object is a
// single node (/obj/syslog by default); appends check write-append, reads
// check read, truncation checks write.

#ifndef XSEC_SRC_SERVICES_LOG_H_
#define XSEC_SRC_SERVICES_LOG_H_

#include <string>
#include <vector>

#include "src/extsys/kernel.h"

namespace xsec {

class LogService {
 public:
  LogService(Kernel* kernel, std::string service_path = "/svc/log",
             std::string object_path = "/obj/syslog");

  Status Install();

  NodeId log_node() const { return node_; }

  // -- Mediated operations ----------------------------------------------------
  Status AppendEntry(Subject& subject, std::string_view entry);
  StatusOr<std::vector<std::string>> ReadEntries(Subject& subject);
  StatusOr<int64_t> Size(Subject& subject);
  Status Truncate(Subject& subject);  // destructive: requires write

 private:
  Kernel* kernel_;
  std::string service_path_;
  std::string object_path_;
  NodeId node_;
  std::vector<std::string> entries_;
};

}  // namespace xsec

#endif  // XSEC_SRC_SERVICES_LOG_H_
