#include "src/monitor/audit.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace xsec {
namespace {

AuditRecord MakeRecord(bool allowed, DenyReason reason = DenyReason::kNone) {
  AuditRecord r;
  r.principal = PrincipalId{1};
  r.thread_id = 7;
  r.node = NodeId{3};
  r.path = "/svc/fs/read";
  r.modes = AccessMode::kExecute;
  r.allowed = allowed;
  r.reason = reason;
  return r;
}

TEST(AuditLogTest, DefaultPolicyRetainsDenialsOnly) {
  AuditLog log;
  EXPECT_EQ(log.policy(), AuditPolicy::kDenialsOnly);
  log.Record(MakeRecord(true));
  log.Record(MakeRecord(false, DenyReason::kDacNoGrant));
  EXPECT_EQ(log.records().size(), 1u);
  EXPECT_FALSE(log.records().front().allowed);
  EXPECT_EQ(log.total_checks(), 2u);
  EXPECT_EQ(log.total_denials(), 1u);
}

TEST(AuditLogTest, PolicyAllRetainsEverything) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  log.Record(MakeRecord(true));
  log.Record(MakeRecord(false, DenyReason::kMacFlow));
  EXPECT_EQ(log.records().size(), 2u);
}

TEST(AuditLogTest, PolicyOffRetainsNothingButCounts) {
  AuditLog log;
  log.set_policy(AuditPolicy::kOff);
  log.Record(MakeRecord(false, DenyReason::kMacFlow));
  EXPECT_TRUE(log.records().empty());
  EXPECT_EQ(log.total_checks(), 1u);
  EXPECT_EQ(log.total_denials(), 1u);
}

TEST(AuditLogTest, WouldRetainMatchesPolicy) {
  AuditLog log;
  log.set_policy(AuditPolicy::kOff);
  EXPECT_FALSE(log.WouldRetain(true));
  EXPECT_FALSE(log.WouldRetain(false));
  log.set_policy(AuditPolicy::kDenialsOnly);
  EXPECT_FALSE(log.WouldRetain(true));
  EXPECT_TRUE(log.WouldRetain(false));
  log.set_policy(AuditPolicy::kAll);
  EXPECT_TRUE(log.WouldRetain(true));
  EXPECT_TRUE(log.WouldRetain(false));
}

TEST(AuditLogTest, SequenceNumbersAreMonotonic) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  for (int i = 0; i < 5; ++i) {
    log.Record(MakeRecord(true));
  }
  uint64_t prev = 0;
  bool first = true;
  for (const AuditRecord& r : log.records()) {
    if (!first) {
      EXPECT_EQ(r.sequence, prev + 1);
    }
    prev = r.sequence;
    first = false;
  }
}

TEST(AuditLogTest, CapacityEvictsOldest) {
  AuditLog log(3);
  log.set_policy(AuditPolicy::kAll);
  for (int i = 0; i < 5; ++i) {
    log.Record(MakeRecord(true));
  }
  EXPECT_EQ(log.records().size(), 3u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log.records().front().sequence, 2u);
}

TEST(AuditLogTest, SinkSeesRetainedRecords) {
  AuditLog log;
  log.set_policy(AuditPolicy::kDenialsOnly);
  int seen = 0;
  log.set_sink([&seen](const AuditRecord& r) {
    ++seen;
    EXPECT_FALSE(r.allowed);
  });
  log.Record(MakeRecord(true));
  log.Record(MakeRecord(false, DenyReason::kMacFlow));
  EXPECT_EQ(seen, 1);
}

TEST(AuditLogTest, QueryFilters) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  log.Record(MakeRecord(true));
  log.Record(MakeRecord(false, DenyReason::kMacFlow));
  log.Record(MakeRecord(false, DenyReason::kDacNoGrant));
  auto flow = log.Query(
      [](const AuditRecord& r) { return r.reason == DenyReason::kMacFlow; });
  EXPECT_EQ(flow.size(), 1u);
}

TEST(AuditLogTest, ClearResetsEverything) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  log.Record(MakeRecord(false, DenyReason::kMacFlow));
  log.Clear();
  EXPECT_TRUE(log.records().empty());
  EXPECT_EQ(log.total_checks(), 0u);
  EXPECT_EQ(log.total_denials(), 0u);
}

TEST(AuditRecordTest, ToStringContainsKeyFields) {
  AuditRecord r = MakeRecord(false, DenyReason::kMacFlow);
  r.sequence = 12;
  std::string text = r.ToString();
  EXPECT_NE(text.find("/svc/fs/read"), std::string::npos);
  EXPECT_NE(text.find("DENY"), std::string::npos);
  EXPECT_NE(text.find("mac-flow"), std::string::npos);
  EXPECT_NE(text.find("execute"), std::string::npos);
}

TEST(DenyReasonTest, NamesAreStable) {
  EXPECT_EQ(DenyReasonName(DenyReason::kNone), "none");
  EXPECT_EQ(DenyReasonName(DenyReason::kDacExplicitDeny), "dac-explicit-deny");
  EXPECT_EQ(DenyReasonName(DenyReason::kMacFlow), "mac-flow");
  EXPECT_EQ(DenyReasonName(DenyReason::kTraversal), "traversal");
}

TEST(AuditRecordTest, ToJsonEmitsOneWellFormedObject) {
  AuditRecord r = MakeRecord(false, DenyReason::kMacFlow);
  r.sequence = 42;
  r.detail = "write of level-1 violates flow";
  std::string json = r.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find('\n'), std::string::npos);  // NDJSON: one line
  EXPECT_NE(json.find("\"seq\":42"), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"/svc/fs/read\""), std::string::npos);
  EXPECT_NE(json.find("\"allowed\":false"), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"mac-flow\""), std::string::npos);
  EXPECT_NE(json.find("\"modes\":\"execute\""), std::string::npos);
}

TEST(AuditRecordTest, ToJsonEscapesStringFields) {
  AuditRecord r = MakeRecord(false, DenyReason::kDacNoGrant);
  r.path = "/odd/\"quoted\"\\path";
  r.detail = "line\nbreak\tand control \x01";
  std::string json = r.ToJson();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\path"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
}

TEST(AuditLogTest, NdjsonSinkStreamsEveryRetainedRecord) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  std::ostringstream out;
  log.set_sink(MakeNdjsonSink(&out));
  log.Record(MakeRecord(true));
  log.Record(MakeRecord(false, DenyReason::kMacFlow));
  std::string text = out.str();
  // Two records, one JSON object per line.
  size_t lines = static_cast<size_t>(std::count(text.begin(), text.end(), '\n'));
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(text.find("\"allowed\":true"), std::string::npos);
  EXPECT_NE(text.find("\"reason\":\"mac-flow\""), std::string::npos);
}

TEST(AuditLogTest, NdjsonSinkSeesOnlyWhatThePolicyRetains) {
  AuditLog log;  // default: denials only
  std::ostringstream out;
  log.set_sink(MakeNdjsonSink(&out));
  log.Record(MakeRecord(true));
  log.Record(MakeRecord(false, DenyReason::kDacNoGrant));
  std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
  EXPECT_EQ(text.find("\"allowed\":true"), std::string::npos);
}

}  // namespace
}  // namespace xsec
