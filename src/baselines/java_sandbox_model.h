// The Java 1.x sandbox baseline (paper §1.2).
//
// Policy structure, per the paper: "trusted extensions (code stored on the
// local file system) … have access to the full functionality of the Java
// system"; "untrusted extensions (all remote code) are placed into a
// so-called sandbox which limits extensions from using some system services
// (such as accessing the local file system) and ideally would also isolate
// extensions from each other" — with the McGraw/Felten ThreadMurder applet
// as the counterexample: intra-sandbox isolation is absent, so this model
// deliberately ALLOWS an untrusted applet to kill another applet's thread.
//
// The model also reproduces the "three prongs" critique: security rests on
// the bytecode verifier, the class loader and the security manager, and "a
// design or implementation error in any one of the three prongs can break
// the entire security system." Clearing any prong's flag in the world makes
// the sandbox fail open for untrusted code.

#ifndef XSEC_SRC_BASELINES_JAVA_SANDBOX_MODEL_H_
#define XSEC_SRC_BASELINES_JAVA_SANDBOX_MODEL_H_

#include "src/baselines/model.h"

namespace xsec {

class JavaSandboxModel : public ProtectionModel {
 public:
  std::string_view name() const override { return "java-sandbox"; }

  bool Allows(const BaselineWorld& world, const BaselineSubject& subject,
              const BaselineObject& object, AccessMode mode) const override;
};

}  // namespace xsec

#endif  // XSEC_SRC_BASELINES_JAVA_SANDBOX_MODEL_H_
