#include "src/monitor/audit.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <thread>

#include "src/base/failpoint.h"
#include "src/base/strings.h"
#include "src/monitor/monitor_stats.h"

namespace xsec {

std::string_view DenyReasonName(DenyReason reason) {
  switch (reason) {
    case DenyReason::kNone:
      return "none";
    case DenyReason::kNotFound:
      return "not-found";
    case DenyReason::kTraversal:
      return "traversal";
    case DenyReason::kDacExplicitDeny:
      return "dac-explicit-deny";
    case DenyReason::kDacNoGrant:
      return "dac-no-grant";
    case DenyReason::kMacFlow:
      return "mac-flow";
    case DenyReason::kNotAuthorized:
      return "not-authorized";
    case DenyReason::kAuditUnavailable:
      return "audit-unavailable";
    case DenyReason::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

std::string AuditRecord::ToString() const {
  return StrFormat("#%llu p%u/t%llu %s %s -> %s%s%s",
                   static_cast<unsigned long long>(sequence), principal.value,
                   static_cast<unsigned long long>(thread_id), path.c_str(),
                   modes.ToString().c_str(), allowed ? "ALLOW" : "DENY",
                   allowed ? "" : StrFormat(" (%s)", std::string(DenyReasonName(reason)).c_str())
                                      .c_str(),
                   detail.empty() ? "" : StrFormat(" [%s]", detail.c_str()).c_str());
}

std::string AuditRecord::ToJson() const {
  return StrFormat(
      "{\"seq\":%llu,\"principal\":%u,\"thread\":%llu,\"node\":%u,\"path\":\"%s\","
      "\"modes\":\"%s\",\"allowed\":%s,\"reason\":\"%s\",\"detail\":\"%s\"}",
      static_cast<unsigned long long>(sequence), principal.value,
      static_cast<unsigned long long>(thread_id), node.value, JsonEscape(path).c_str(),
      modes.ToString().c_str(), allowed ? "true" : "false",
      std::string(DenyReasonName(reason)).c_str(), JsonEscape(detail).c_str());
}

std::function<void(const AuditRecord&)> MakeNdjsonSink(std::ostream* out) {
  return [out](const AuditRecord& record) { *out << record.ToJson() << '\n'; };
}

NdjsonFileRotator::NdjsonFileRotator(std::string path, NdjsonRotationPolicy policy)
    : path_(std::move(path)), policy_(policy) {}

NdjsonFileRotator::~NdjsonFileRotator() {
  if (out_ != nullptr) {
    std::fclose(out_);
  }
}

Status NdjsonFileRotator::Open() {
  if (out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
  }
  XSEC_FAILPOINT("audit.rotate.open");
  out_ = std::fopen(path_.c_str(), "w");
  if (out_ == nullptr) {
    return InternalError(StrFormat("cannot open '%s' for writing", path_.c_str()));
  }
  bytes_ = 0;
  opened_at_ns_ = MonotonicNowNs();
  return OkStatus();
}

void NdjsonFileRotator::RotateIfNeeded(size_t next_line_bytes) {
  bool over_size = policy_.max_bytes != 0 && bytes_ != 0 &&
                   bytes_ + next_line_bytes > policy_.max_bytes;
  bool over_age = policy_.max_age_ns != 0 && bytes_ != 0 &&
                  MonotonicNowNs() - opened_at_ns_ >= policy_.max_age_ns;
  if (!over_size && !over_age) {
    return;
  }
  std::fclose(out_);
  out_ = nullptr;
  if (policy_.max_keep > 0) {
    if (XSEC_FAILPOINT_FIRED("audit.rotate.rename")) {
      // A failed history rename degrades to truncate-in-place: the window
      // loses one file of history but writing never stops.
      ++rename_failures_;
    } else {
      // Shift the history window: drop the oldest, slide the rest up, then
      // move the just-closed file into the .1 position.
      std::remove(StrFormat("%s.%zu", path_.c_str(), policy_.max_keep).c_str());
      for (size_t k = policy_.max_keep; k > 1; --k) {
        std::rename(StrFormat("%s.%zu", path_.c_str(), k - 1).c_str(),
                    StrFormat("%s.%zu", path_.c_str(), k).c_str());
      }
      std::rename(path_.c_str(), StrFormat("%s.1", path_.c_str()).c_str());
    }
  }
  ++rotations_;
  (void)Open();  // max_keep == 0 lands here too: truncate in place
}

void NdjsonFileRotator::Write(const AuditRecord& record) {
  if (out_ == nullptr) {
    return;  // Open() failed or was never called; drop rather than crash
  }
  std::string line = record.ToJson();
  line += '\n';
  RotateIfNeeded(line.size());
  if (out_ == nullptr) {
    return;  // reopen after rotation failed
  }
  // Disk-full simulation point: an armed `audit.ndjson.write` takes zero
  // bytes, like a device with no space left; a real short fwrite lands in
  // the same recovery path below.
  size_t wrote = XSEC_FAILPOINT_FIRED("audit.ndjson.write")
                     ? 0
                     : std::fwrite(line.data(), 1, line.size(), out_);
  if (wrote != line.size()) {
    // Short write: truncate the torn suffix back off so the file ends on
    // the last complete line (bytes_ is the pre-write size, which is by
    // construction a whole-line boundary), then drop this record from
    // export. The in-memory ring still retains it.
    ++write_failures_;
    std::fflush(out_);
    (void)ftruncate(fileno(out_), static_cast<off_t>(bytes_));
    std::fseek(out_, static_cast<long>(bytes_), SEEK_SET);
    return;
  }
  std::fflush(out_);
  bytes_ += line.size();
}

std::function<void(const AuditRecord&)> MakeRotatingNdjsonSink(
    std::shared_ptr<NdjsonFileRotator> rotator) {
  return [rotator](const AuditRecord& record) { rotator->Write(record); };
}

std::function<Status(const AuditRecord&)> MakeRotatingNdjsonFallibleSink(
    std::shared_ptr<NdjsonFileRotator> rotator) {
  // Sink invocations are externally serialized (AuditLog's contract), so the
  // before/after failure-counter delta unambiguously belongs to this write.
  return [rotator](const AuditRecord& record) -> Status {
    uint64_t failures_before = rotator->write_failures();
    rotator->Write(record);
    if (rotator->write_failures() != failures_before) {
      return ResourceExhaustedError("ndjson write failed (disk full?)");
    }
    return OkStatus();
  };
}

ResilientSink::ResilientSink(FallibleSink inner, ResilientSinkOptions options)
    : inner_(std::move(inner)), options_(options), rng_(options.rng_seed) {
  if (options_.max_attempts < 1) {
    options_.max_attempts = 1;
  }
  if (options_.trip_after < 1) {
    options_.trip_after = 1;
  }
}

std::string_view ResilientSink::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

Status ResilientSink::TryOnce(const AuditRecord& record) {
  XSEC_FAILPOINT("audit.sink.write");
  return inner_(record);
}

void ResilientSink::Write(const AuditRecord& record) {
  State entered = state();
  if (entered == State::kOpen) {
    if (options_.reopen_after_ns == 0 ||
        MonotonicNowNs() - opened_at_ns_ < options_.reopen_after_ns) {
      // Circuit open: drop immediately, never touch the dead sink. The ring
      // still retains the record; only export is lost.
      gave_up_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    entered = State::kHalfOpen;
    state_.store(entered, std::memory_order_relaxed);
  }
  // Half-open gets exactly one probe; closed gets the full retry budget.
  const int attempts = entered == State::kHalfOpen ? 1 : options_.max_attempts;
  uint64_t backoff_ns = options_.backoff_initial_ns;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      uint64_t jitter = backoff_ns * options_.jitter_pct / 100;
      uint64_t sleep_ns =
          backoff_ns - jitter + (jitter != 0 ? rng_.NextBelow(2 * jitter + 1) : 0);
      if (sleep_ns != 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_ns));
      }
      backoff_ns = std::min(backoff_ns * 2, options_.backoff_max_ns);
    }
    if (TryOnce(record).ok()) {
      consecutive_failures_ = 0;
      written_.fetch_add(1, std::memory_order_relaxed);
      if (entered == State::kHalfOpen) {
        state_.store(State::kClosed, std::memory_order_relaxed);
      }
      return;
    }
    ++consecutive_failures_;
  }
  gave_up_.fetch_add(1, std::memory_order_relaxed);
  if (entered == State::kHalfOpen || consecutive_failures_ >= options_.trip_after) {
    opened_at_ns_ = MonotonicNowNs();
    state_.store(State::kOpen, std::memory_order_relaxed);
  }
}

// One fan-out lane: a registered sink, its sharded queues, and the drainer
// that stitches the shards back into global sequence order. `mu` guards the
// queue state; the counters are atomics so gauge reads never touch a lane
// lock; last_emitted_seq/emitted_any are drainer-thread-only. Lock order is
// always AuditLog::mu_ → lane->mu; no path holds a lane lock while taking
// another lane's (lanes are independent by design).
struct AuditLog::SinkLane {
  uint64_t id = 0;
  std::string name;
  Sink sink;

  std::mutex mu;
  std::condition_variable cv;       // wakes the lane drainer
  std::condition_variable idle_cv;  // wakes Flush waiters
  // Records are shared immutable copies: one allocation per record serves
  // every lane, and a pop is a pointer move.
  std::vector<std::deque<std::shared_ptr<const AuditRecord>>> shards;
  size_t shard_capacity = 0;
  size_t queued = 0;  // records across all shards
  bool stop = false;
  bool running = false;
  bool busy = false;  // the drainer is mid-sink-call outside mu
  std::thread drainer;

  std::atomic<uint64_t> delivered{0};
  std::atomic<uint64_t> dropped{0};
  // Emissions whose sequence did not strictly increase. The stitched order
  // is proven, not assumed: this stays 0 in a correct run and tests/CI pin
  // it there.
  std::atomic<uint64_t> stitch_violations{0};
  uint64_t last_emitted_seq = 0;
  bool emitted_any = false;
};

void AuditLog::EnqueueFanOutLocked(const AuditRecord& record) {
  if (!fanout_running_ || lanes_.empty()) {
    return;
  }
  std::shared_ptr<const AuditRecord> shared;  // built lazily, shared by lanes
  for (const std::shared_ptr<SinkLane>& lane : lanes_) {
    std::lock_guard<std::mutex> lock(lane->mu);
    if (!lane->running || lane->stop) {
      continue;
    }
    std::deque<std::shared_ptr<const AuditRecord>>& shard =
        lane->shards[record.sequence % lane->shards.size()];
    // Failpoint first, so an injected enqueue failure is exercised even when
    // the shard has room (mirrors audit.drain.enqueue). A drop leaves a gap
    // in THIS lane's stream, never a reordering.
    if (XSEC_FAILPOINT_FIRED("audit.fanout.enqueue") ||
        shard.size() >= lane->shard_capacity) {
      lane->dropped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (shared == nullptr) {
      shared = std::make_shared<const AuditRecord>(record);
    }
    shard.push_back(shared);
    ++lane->queued;
    lane->cv.notify_one();
  }
}

void AuditLog::LaneLoop(SinkLane* lane) {
  std::unique_lock<std::mutex> lock(lane->mu);
  for (;;) {
    lane->cv.wait(lock, [lane] { return lane->stop || lane->queued > 0; });
    if (lane->queued == 0) {
      return;  // stop requested and every shard drained
    }
    // The stitcher: pop the minimum-sequence shard head. Enqueues happen
    // inside the log's stamping critical section, so pushes arrive in
    // strictly increasing global sequence order across shards — the minimum
    // head IS the globally next queued record, and an empty shard can only
    // ever receive a larger sequence later. Drops create gaps, which the
    // minimum still steps over in order.
    std::deque<std::shared_ptr<const AuditRecord>>* best = nullptr;
    for (auto& shard : lane->shards) {
      if (shard.empty()) {
        continue;
      }
      if (best == nullptr ||
          shard.front()->sequence < best->front()->sequence) {
        best = &shard;
      }
    }
    std::shared_ptr<const AuditRecord> record = std::move(best->front());
    best->pop_front();
    --lane->queued;
    lane->busy = true;
    lock.unlock();
    if (lane->emitted_any && record->sequence <= lane->last_emitted_seq) {
      lane->stitch_violations.fetch_add(1, std::memory_order_relaxed);
    }
    lane->last_emitted_seq = record->sequence;
    lane->emitted_any = true;
    lane->sink(*record);  // outside mu: a slow sink throttles only this lane
    lane->delivered.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
    lane->busy = false;
    if (lane->queued == 0) {
      lane->idle_cv.notify_all();
    }
  }
}

void AuditLog::StartLaneLocked(const std::shared_ptr<SinkLane>& lane) {
  {
    std::lock_guard<std::mutex> lock(lane->mu);
    lane->shards.assign(fanout_options_.shards, {});
    lane->shard_capacity = fanout_options_.shard_queue_capacity;
    lane->queued = 0;
    lane->stop = false;
    lane->running = true;
    lane->emitted_any = false;
  }
  // Raw pointer is safe: the joining side (StopFanOut/RemoveSink) holds a
  // shared_ptr across the join, so the lane outlives its drainer.
  lane->drainer = std::thread([this, raw = lane.get()] { LaneLoop(raw); });
}

uint64_t AuditLog::AddSink(std::string name, Sink sink) {
  auto lane = std::make_shared<SinkLane>();
  lane->name = std::move(name);
  lane->sink = std::move(sink);
  std::lock_guard<std::mutex> lock(mu_);
  lane->id = next_lane_id_++;
  lanes_.push_back(lane);
  if (fanout_running_) {
    StartLaneLocked(lane);
  }
  return lane->id;
}

bool AuditLog::RemoveSink(uint64_t id) {
  std::shared_ptr<SinkLane> lane;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = lanes_.begin(); it != lanes_.end(); ++it) {
      if ((*it)->id == id) {
        lane = *it;
        lanes_.erase(it);
        break;
      }
    }
  }
  if (lane == nullptr) {
    return false;
  }
  // Unregistered (no new enqueues can reach it) — flush and join.
  {
    std::lock_guard<std::mutex> lock(lane->mu);
    lane->stop = true;
  }
  lane->cv.notify_all();
  if (lane->drainer.joinable()) {
    lane->drainer.join();
  }
  return true;
}

void AuditLog::StartFanOut(AuditFanOutOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fanout_running_) {
    return;
  }
  if (options.shards == 0) {
    options.shards = 1;
  }
  if (options.shard_queue_capacity == 0) {
    options.shard_queue_capacity = 1;
  }
  fanout_options_ = options;
  fanout_running_ = true;
  for (const std::shared_ptr<SinkLane>& lane : lanes_) {
    StartLaneLocked(lane);
  }
}

void AuditLog::StopFanOut() {
  std::vector<std::shared_ptr<SinkLane>> lanes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!fanout_running_) {
      return;
    }
    fanout_running_ = false;
    lanes = lanes_;  // lanes stay registered; only the drainers stop
  }
  for (const std::shared_ptr<SinkLane>& lane : lanes) {
    {
      std::lock_guard<std::mutex> lock(lane->mu);
      lane->stop = true;
    }
    lane->cv.notify_all();
    if (lane->drainer.joinable()) {
      lane->drainer.join();  // the drainer flushes its shards before exiting
    }
    std::lock_guard<std::mutex> lock(lane->mu);
    lane->running = false;
  }
}

size_t AuditLog::fanout_sinks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lanes_.size();
}

uint64_t AuditLog::fanout_delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const std::shared_ptr<SinkLane>& lane : lanes_) {
    total += lane->delivered.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t AuditLog::fanout_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const std::shared_ptr<SinkLane>& lane : lanes_) {
    total += lane->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t AuditLog::fanout_stitch_violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const std::shared_ptr<SinkLane>& lane : lanes_) {
    total += lane->stitch_violations.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<AuditSinkLaneStats> AuditLog::FanOutStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditSinkLaneStats> out;
  out.reserve(lanes_.size());
  for (const std::shared_ptr<SinkLane>& lane : lanes_) {
    AuditSinkLaneStats stats;
    stats.id = lane->id;
    stats.name = lane->name;
    stats.delivered = lane->delivered.load(std::memory_order_relaxed);
    stats.dropped = lane->dropped.load(std::memory_order_relaxed);
    stats.stitch_violations =
        lane->stitch_violations.load(std::memory_order_relaxed);
    out.push_back(std::move(stats));
  }
  return out;
}

AuditMemoryRing::AuditMemoryRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void AuditMemoryRing::Write(const AuditRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
  }
  ring_.push_back(record);
  ++total_;
}

std::vector<AuditRecord> AuditMemoryRing::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<AuditRecord>(ring_.begin(), ring_.end());
}

uint64_t AuditMemoryRing::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

size_t AuditMemoryRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::function<void(const AuditRecord&)> MakeMemoryRingSink(
    std::shared_ptr<AuditMemoryRing> ring) {
  return [ring](const AuditRecord& record) { ring->Write(record); };
}

void AuditLog::RingInsertLocked(AuditRecord record) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else if (capacity_ > 0) {
    // Full: overwrite the oldest record (at head_) and advance.
    ring_[head_] = std::move(record);
    head_ = (head_ + 1) % capacity_;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void AuditLog::Record(AuditRecord record) {
  Count(record.allowed);
  if (!WouldRetain(record.allowed)) {
    return;
  }
  // Sequence-order fix: when the sink runs synchronously (no drain), acquire
  // sink_mu_ BEFORE stamping, so the stamp and the sink call form one
  // critical section and two racing recorders cannot stamp in one order and
  // emit in the other. The drained path gets the same guarantee from
  // enqueueing inside the stamping critical section below.
  std::unique_lock<std::mutex> serialize(sink_mu_, std::defer_lock);
  if (sync_sink_active_.load(std::memory_order_acquire)) {
    serialize.lock();
  }
  std::shared_ptr<const Sink> sink;
  AuditRecord for_sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    record.sequence = next_sequence_++;
    // Fan-out enqueue shares the stamping critical section, so every lane's
    // shard queues see pushes in strictly increasing global sequence order —
    // the invariant the lane stitcher relies on.
    EnqueueFanOutLocked(record);
    if (sink_ != nullptr) {
      if (drain_running_) {
        // Only enqueue under mu_; the drainer does the sink I/O. Enqueueing
        // in the same critical section that stamps the sequence is what
        // keeps drained output exactly sequence-ordered. The failpoint is
        // evaluated first so an injected enqueue failure (or latency — it
        // runs under mu_, deliberately stalling recorders like a contended
        // queue would) is exercised even when the queue has room.
        if (XSEC_FAILPOINT_FIRED("audit.drain.enqueue") ||
            drain_queue_.size() >= drain_options_.queue_capacity) {
          sink_dropped_.fetch_add(1, std::memory_order_relaxed);
        } else {
          drain_queue_.push_back(record);
          drain_cv_.notify_one();
        }
      } else {
        sink = sink_;     // invoke outside the lock, on a copy
        for_sink = record;
      }
    }
    RingInsertLocked(std::move(record));
  }
  if (sink != nullptr) {
    // Recorders are never blocked on file I/O while holding the ring mutex;
    // they may still wait on each other (sink_mu_), which is what the async
    // drain removes entirely. A sink installed between the pre-check above
    // and here is serialized late (that one racing record may emit out of
    // order; sinks are setup-time by contract).
    if (!serialize.owns_lock()) {
      serialize.lock();
    }
    (*sink)(for_sink);
  }
}

void AuditLog::RecordBatch(std::vector<AuditRecord> records) {
  if (records.empty()) {
    return;
  }
  uint64_t denials = 0;
  for (const AuditRecord& record : records) {
    if (!record.allowed) {
      ++denials;
    }
  }
  CountBatch(records.size(), denials);
  // One policy read for the whole batch: a racing set_policy applies to the
  // next batch, never to half of this one.
  AuditPolicy p = policy();
  if (p == AuditPolicy::kOff) {
    return;
  }
  if (p == AuditPolicy::kDenialsOnly) {
    records.erase(std::remove_if(records.begin(), records.end(),
                                 [](const AuditRecord& r) { return r.allowed; }),
                  records.end());
    if (records.empty()) {
      return;
    }
  }
  // Same sync-mode ordering discipline as Record: sink_mu_ before the stamp.
  std::unique_lock<std::mutex> serialize(sink_mu_, std::defer_lock);
  if (sync_sink_active_.load(std::memory_order_acquire)) {
    serialize.lock();
  }
  std::shared_ptr<const Sink> sink;
  std::vector<AuditRecord> for_sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (AuditRecord& record : records) {
      record.sequence = next_sequence_++;
      EnqueueFanOutLocked(record);  // same ordering discipline as Record
    }
    if (sink_ != nullptr) {
      if (drain_running_) {
        for (const AuditRecord& record : records) {
          if (XSEC_FAILPOINT_FIRED("audit.drain.enqueue") ||
              drain_queue_.size() >= drain_options_.queue_capacity) {
            sink_dropped_.fetch_add(1, std::memory_order_relaxed);
          } else {
            drain_queue_.push_back(record);
          }
        }
        drain_cv_.notify_one();
      } else {
        sink = sink_;
        for_sink = records;
      }
    }
    for (AuditRecord& record : records) {
      RingInsertLocked(std::move(record));
    }
  }
  if (sink != nullptr) {
    if (!serialize.owns_lock()) {
      serialize.lock();
    }
    for (const AuditRecord& record : for_sink) {
      (*sink)(record);
    }
  }
}

void AuditLog::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = sink ? std::make_shared<const Sink>(std::move(sink)) : nullptr;
  UpdateSyncModeLocked();
}

void AuditLog::InstallResilientSink(std::shared_ptr<ResilientSink> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  resilient_ = sink;
  // Publish the health pointer before the sink can be invoked; release
  // pairs with the acquire in SinkTripped.
  resilient_raw_.store(sink.get(), std::memory_order_release);
  sink_ = sink != nullptr
              ? std::make_shared<const Sink>(
                    [sink](const AuditRecord& record) { sink->Write(record); })
              : nullptr;
  UpdateSyncModeLocked();
}

std::string AuditLog::sink_state() const {
  const ResilientSink* sink = resilient_raw_.load(std::memory_order_acquire);
  if (sink == nullptr) {
    return "none";
  }
  return std::string(ResilientSink::StateName(sink->state()));
}

uint64_t AuditLog::sink_retries() const {
  const ResilientSink* sink = resilient_raw_.load(std::memory_order_acquire);
  return sink == nullptr ? 0 : sink->retries();
}

uint64_t AuditLog::sink_gave_up() const {
  const ResilientSink* sink = resilient_raw_.load(std::memory_order_acquire);
  return sink == nullptr ? 0 : sink->gave_up();
}

void AuditLog::StartDrain(AuditDrainOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (drain_running_) {
    return;
  }
  if (options.queue_capacity == 0) {
    options.queue_capacity = 1;
  }
  drain_options_ = options;
  drain_stop_ = false;
  drain_running_ = true;
  UpdateSyncModeLocked();
  drainer_ = std::thread([this] { DrainLoop(); });
}

void AuditLog::DrainLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    drain_cv_.wait(lock, [this] { return drain_stop_ || !drain_queue_.empty(); });
    if (drain_queue_.empty()) {
      return;  // stop requested and nothing left to flush
    }
    std::deque<AuditRecord> batch;
    batch.swap(drain_queue_);
    std::shared_ptr<const Sink> sink = sink_;
    drain_busy_ = true;
    lock.unlock();
    if (sink != nullptr) {
      std::lock_guard<std::mutex> serialize(sink_mu_);
      for (const AuditRecord& record : batch) {
        (*sink)(record);
      }
    }
    lock.lock();
    drain_busy_ = false;
    if (drain_queue_.empty()) {
      drain_idle_cv_.notify_all();
    }
  }
}

void AuditLog::StopDrain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!drain_running_) {
      return;
    }
    drain_stop_ = true;
  }
  drain_cv_.notify_all();
  drainer_.join();  // the drainer flushes the queue before exiting
  std::lock_guard<std::mutex> lock(mu_);
  drain_running_ = false;
  drain_stop_ = false;
  UpdateSyncModeLocked();
}

void AuditLog::Flush() {
  // Latency-injection point for flush-path tests (arm with sleep=...; an
  // error spec counts a fire but flush still proceeds — flush is not
  // allowed to fail, only to be slow).
  (void)XSEC_FAILPOINT_FIRED("audit.sink.flush");
  std::vector<std::shared_ptr<SinkLane>> lanes;
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_idle_cv_.wait(lock, [this] { return drain_queue_.empty() && !drain_busy_; });
    lanes = lanes_;
  }
  // Wait out every fan-out lane too: a lane drainer empties its shards before
  // exiting, so "queued == 0 and not mid-sink-call" means fully flushed.
  for (const std::shared_ptr<SinkLane>& lane : lanes) {
    std::unique_lock<std::mutex> lock(lane->mu);
    lane->idle_cv.wait(lock,
                       [&lane] { return lane->queued == 0 && !lane->busy; });
  }
  // Wait out any sink call currently in flight (sync recorder or drainer).
  std::lock_guard<std::mutex> serialize(sink_mu_);
}

template <typename Visit>
void AuditLog::ForEachLocked(Visit visit) const {
  for (size_t i = head_; i < ring_.size(); ++i) {
    visit(ring_[i]);
  }
  for (size_t i = 0; i < head_; ++i) {
    visit(ring_[i]);
  }
}

size_t AuditLog::retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::vector<AuditRecord> AuditLog::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditRecord> out;
  out.reserve(ring_.size());
  ForEachLocked([&out](const AuditRecord& r) { out.push_back(r); });
  return out;
}

std::vector<AuditRecord> AuditLog::Query(
    const std::function<bool(const AuditRecord&)>& pred) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditRecord> out;
  ForEachLocked([&out, &pred](const AuditRecord& r) {
    if (pred(r)) {
      out.push_back(r);
    }
  });
  return out;
}

void AuditLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  // next_sequence_ deliberately survives: resetting it would reissue ids
  // already written to rotated NDJSON files, breaking dedup by `seq`.
  total_checks_.store(0, std::memory_order_relaxed);
  total_denials_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  sink_dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace xsec
