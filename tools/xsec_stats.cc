// xsec_stats — exercise the mediation path and dump the monitor's stats tree.
//
// Usage:
//   xsec_stats [--policy <file>] [--checks N] [--seed S] [--ndjson <file|->]
//              [--ndjson-max-bytes B] [--ndjson-max-age-ms M] [--ndjson-keep K]
//              [--audit-drain] [--resilient] [--audit-required] [--snapshot]
//              [--ring <shards>] [--fanout <sinks>] [--health]
//              [--fail <name>=<spec>]...
//
// Boots a SecureSystem, optionally applies a policy file, runs a
// deterministic randomized workload of N access checks (a mix of allowed and
// denied), and prints every /sys/monitor/... stats leaf (or, with
// --snapshot, the consistent versioned snapshot rendering). With --ndjson,
// each audited decision is also streamed as one JSON object per line — '-'
// for stdout. When the target is a real file, --ndjson-max-bytes /
// --ndjson-max-age-ms / --ndjson-keep enable size/age rotation
// (file -> file.1 -> ... -> file.K). --audit-drain moves the sink I/O (and
// any rotation renames) onto the AuditLog's background drainer so the
// checking loop never writes the file itself; the drain is flushed before
// the stats print, so the output is identical either way. The workload is
// seeded, so two runs with the same arguments produce the same counters
// (latency quantiles and rates aside).
//
// --resilient wraps the NDJSON sink in a ResilientSink (retry + circuit
// breaker; health in the audit/* leaves of the printed tree), and
// --audit-required turns on fail-closed mode — together with
// --fail audit.sink.write=error they drive the whole self-healing pipeline
// from the command line.
//
// --ring <shards> routes the workload's leaf checks through a MediationRing
// (the shared-ring batched transport) instead of direct CheckPath calls, and
// mounts its telemetry so the printed tree gains the
// /sys/monitor/ring/{shards,depth,batches,submitted,completed,stalls}
// leaves. Ring mode checks the pre-resolved leaf node (no per-call
// traversal), so the checks/total arithmetic differs from direct mode.
//
// --fanout <sinks> registers that many in-memory ring lanes on the audit
// fan-out plane (AuditLog::AddSink + StartFanOut) and drains them in
// parallel during the workload. After the run the tool prints one
// `fanout lane <name> delivered=D dropped=R stitch_violations=V` line per
// lane — stitch_violations must be 0, the observable proof that each lane's
// sharded queues were stitched back into exact global sequence order.
// Combine with --fail audit.fanout.enqueue=error,nth=... to watch per-lane
// drops leave gaps without reordering.
//
// --health enables the extension supervisor (MODEL.md §16) and loads a tiny
// demo world on it: a healthy extension plus one that fails until its
// circuit breaker trips and quarantines it. The printed tree then carries
// the /sys/monitor/health/... leaves, and the tool appends one
// `health ext <name> <state> ...` summary line per supervised extension plus
// the system health verdict — a command-line window onto the supervision
// plane's live state.
//
// --fail arms a failpoint before the workload (repeatable; spec grammar is
// src/base/failpoint.h, e.g. --fail audit.sink.write=error,nth=100). Arming
// goes through the mediated FaultService as the system subject — an audited
// administrate check on /sys/faults/<name>, not a registry backdoor — and
// the tool prints each failpoint's final state after the workload, so a
// fault sweep can see how many times each site actually fired.
//
// Exit status: 0 on success, 1 on bad arguments or an unloadable policy.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/core/secure_system.h"
#include "src/monitor/mediation_ring.h"
#include "src/policy/policy_io.h"

namespace {

int Fail(const char* message) {
  std::fprintf(stderr, "xsec_stats: %s\n", message);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string policy_file;
  std::string ndjson_file;
  uint64_t checks = 10000;
  uint64_t seed = 1;
  std::vector<std::string> fail_specs;
  xsec::NdjsonRotationPolicy rotation;
  bool snapshot = false;
  uint64_t ring_shards = 0;  // 0 = direct CheckPath calls, no ring
  uint64_t fanout_sinks = 0;  // 0 = fan-out plane off
  bool audit_drain = false;
  bool resilient = false;
  bool audit_required = false;
  bool health = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--policy") {
      const char* v = next();
      if (v == nullptr) return Fail("--policy needs a file");
      policy_file = v;
    } else if (arg == "--ndjson") {
      const char* v = next();
      if (v == nullptr) return Fail("--ndjson needs a file (or '-')");
      ndjson_file = v;
    } else if (arg == "--ndjson-max-bytes") {
      const char* v = next();
      if (v == nullptr) return Fail("--ndjson-max-bytes needs a byte count");
      rotation.max_bytes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--ndjson-max-age-ms") {
      const char* v = next();
      if (v == nullptr) return Fail("--ndjson-max-age-ms needs a duration");
      rotation.max_age_ns = std::strtoull(v, nullptr, 10) * 1'000'000ull;
    } else if (arg == "--ndjson-keep") {
      const char* v = next();
      if (v == nullptr) return Fail("--ndjson-keep needs a count");
      rotation.max_keep = std::strtoull(v, nullptr, 10);
    } else if (arg == "--fail") {
      const char* v = next();
      if (v == nullptr) return Fail("--fail needs <name>=<spec>");
      fail_specs.emplace_back(v);
    } else if (arg == "--audit-drain") {
      audit_drain = true;
    } else if (arg == "--resilient") {
      resilient = true;
    } else if (arg == "--audit-required") {
      audit_required = true;
    } else if (arg == "--snapshot") {
      snapshot = true;
    } else if (arg == "--health") {
      health = true;
    } else if (arg == "--ring") {
      const char* v = next();
      if (v == nullptr) return Fail("--ring needs a shard count");
      ring_shards = std::strtoull(v, nullptr, 10);
      if (ring_shards == 0) return Fail("--ring needs at least one shard");
    } else if (arg == "--fanout") {
      const char* v = next();
      if (v == nullptr) return Fail("--fanout needs a sink count");
      fanout_sinks = std::strtoull(v, nullptr, 10);
      if (fanout_sinks == 0) return Fail("--fanout needs at least one sink");
    } else if (arg == "--checks") {
      const char* v = next();
      if (v == nullptr) return Fail("--checks needs a count");
      checks = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Fail("--seed needs a number");
      seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: xsec_stats [--policy <file>] [--checks N] [--seed S] "
                   "[--ndjson <file|->] [--ndjson-max-bytes B] "
                   "[--ndjson-max-age-ms M] [--ndjson-keep K] [--audit-drain] "
                   "[--resilient] [--audit-required] [--snapshot] "
                   "[--ring <shards>] [--fanout <sinks>] [--health] "
                   "[--fail <name>=<spec>]...\n");
      return arg == "--help" ? 0 : 1;
    }
  }

  xsec::SecureSystem sys;

  xsec::ExtensionSupervisor* supervisor = nullptr;
  if (health) {
    auto enabled = sys.EnableSupervision();
    if (!enabled.ok()) {
      std::fprintf(stderr, "xsec_stats: %s\n", enabled.status().ToString().c_str());
      return 1;
    }
    supervisor = *enabled;
  }

  if (!policy_file.empty()) {
    std::ifstream in(policy_file);
    if (!in) return Fail("cannot open the policy file");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    xsec::Status status = xsec::LoadPolicy(buffer.str(), &sys.kernel());
    if (!status.ok()) {
      std::fprintf(stderr, "xsec_stats: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  std::ofstream ndjson_out;
  std::shared_ptr<xsec::NdjsonFileRotator> rotator;
  bool rotation_requested = rotation.max_bytes != 0 || rotation.max_age_ns != 0;
  std::function<void(const xsec::AuditRecord&)> sink;
  if (!ndjson_file.empty()) {
    if (ndjson_file != "-" && rotation_requested) {
      rotator = std::make_shared<xsec::NdjsonFileRotator>(ndjson_file, rotation);
      xsec::Status status = rotator->Open();
      if (!status.ok()) {
        std::fprintf(stderr, "xsec_stats: %s\n", status.ToString().c_str());
        return 1;
      }
      sink = xsec::MakeRotatingNdjsonSink(rotator);
    } else {
      if (rotation_requested) return Fail("rotation needs a real --ndjson file, not '-'");
      std::ostream* out = &std::cout;
      if (ndjson_file != "-") {
        ndjson_out.open(ndjson_file);
        if (!ndjson_out) return Fail("cannot open the ndjson file");
        out = &ndjson_out;
      }
      sink = xsec::MakeNdjsonSink(out);
    }
  }
  if (sink) {
    if (resilient) {
      // The stream sink itself does not fail; failures come from the
      // audit.sink.write failpoint inside ResilientSink::TryOnce, which is
      // the point of the flag: drive retry/circuit behavior from the CLI.
      auto wrapped = std::make_shared<xsec::ResilientSink>(
          [sink](const xsec::AuditRecord& record) -> xsec::Status {
            sink(record);
            return xsec::OkStatus();
          });
      sys.monitor().audit().InstallResilientSink(std::move(wrapped));
    } else {
      sys.monitor().audit().set_sink(std::move(sink));
    }
  } else if (resilient) {
    return Fail("--resilient needs --ndjson");
  }
  if (audit_required) {
    sys.monitor().audit().set_required(true);
  }
  if (audit_drain) {
    sys.monitor().audit().StartDrain();
  }
  std::vector<std::shared_ptr<xsec::AuditMemoryRing>> fanout_rings;
  if (fanout_sinks > 0) {
    for (uint64_t i = 0; i < fanout_sinks; ++i) {
      auto mem = std::make_shared<xsec::AuditMemoryRing>();
      sys.monitor().audit().AddSink("lane" + std::to_string(i),
                                    xsec::MakeMemoryRingSink(mem));
      fanout_rings.push_back(std::move(mem));
    }
    sys.monitor().audit().StartFanOut();
  }

  // A small world with deliberately mixed permissions: "reader" may read the
  // workload files, "outsider" may not, and nobody may touch /fs/secret.
  auto reader = sys.CreateUser("reader");
  auto outsider = sys.CreateUser("outsider");
  if (!reader.ok() || !outsider.ok()) return Fail("boot world setup failed");
  std::vector<std::string> paths;
  std::vector<xsec::NodeId> nodes;
  for (int i = 0; i < 8; ++i) {
    std::string path = "/fs/w" + std::to_string(i);
    auto node = sys.name_space().BindPath(path, xsec::NodeKind::kFile,
                                          sys.system_principal());
    if (!node.ok()) return Fail("boot world setup failed");
    xsec::Acl acl;
    acl.AddEntry({xsec::AclEntryType::kAllow, *reader,
                  xsec::AccessMode::kRead | xsec::AccessMode::kWrite});
    (void)sys.name_space().SetAclRef(*node, sys.kernel().acls().Create(std::move(acl)));
    paths.push_back(std::move(path));
    nodes.push_back(*node);
  }
  auto secret = sys.name_space().BindPath("/fs/secret", xsec::NodeKind::kFile,
                                          sys.system_principal());
  if (!secret.ok()) return Fail("boot world setup failed");
  (void)sys.name_space().SetAclRef(*secret, sys.kernel().acls().Create(xsec::Acl()));
  paths.push_back("/fs/secret");
  nodes.push_back(*secret);

  xsec::Subject reader_s = sys.Login(*reader, sys.labels().Bottom());
  xsec::Subject outsider_s = sys.Login(*outsider, sys.labels().Bottom());

  // The --health demo world: two supervised extensions, one of which fails
  // until its breaker trips, so the printed health leaves show a live
  // quarantine rather than an all-healthy nothing.
  if (supervisor != nullptr) {
    auto hook = [&](const char* path) -> xsec::StatusOr<xsec::NodeId> {
      auto node = sys.kernel().RegisterInterface(path, sys.system_principal());
      if (!node.ok()) {
        return node;
      }
      xsec::Acl acl;
      acl.AddEntry({xsec::AclEntryType::kAllow, *reader,
                    xsec::AccessMode::kExtend | xsec::AccessMode::kExecute |
                        xsec::AccessMode::kList});
      (void)sys.name_space().SetAclRef(*node, sys.kernel().acls().Create(std::move(acl)));
      return node;
    };
    if (!hook("/svc/demo/steady").ok() || !hook("/svc/demo/flaky").ok()) {
      return Fail("--health demo setup failed");
    }
    xsec::ExtensionManifest steady;
    steady.name = "demo-steady";
    steady.exports.push_back({"/svc/demo/steady",
                              [](xsec::CallContext&) -> xsec::StatusOr<xsec::Value> {
                                return xsec::Value{true};
                              }});
    xsec::ExtensionManifest flaky;
    flaky.name = "demo-flaky";
    flaky.exports.push_back({"/svc/demo/flaky",
                             [](xsec::CallContext&) -> xsec::StatusOr<xsec::Value> {
                               return xsec::InternalError("demo extension fault");
                             }});
    if (!sys.LoadExtension(steady, reader_s).ok() ||
        !sys.LoadExtension(flaky, reader_s).ok()) {
      return Fail("--health demo setup failed");
    }
    (void)sys.Invoke(reader_s, "/svc/demo/steady", {});
    // Default trip_after consecutive failures quarantine the flaky one; the
    // extra attempt then fails fast as kUnavailable without running it.
    for (uint32_t i = 0; i <= supervisor->options().default_budget.trip_after; ++i) {
      (void)sys.Invoke(reader_s, "/svc/demo/flaky", {});
    }
  }

  // Arm requested failpoints through the mediated control plane (an audited
  // administrate check on /sys/faults/<name>), not by poking the registry.
  xsec::Subject system_s = sys.SystemSubject();
  std::vector<std::string> fail_names;
  for (const std::string& pair : fail_specs) {
    size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) return Fail("--fail needs <name>=<spec>");
    std::string name = pair.substr(0, eq);
    std::string spec = pair.substr(eq + 1);
    auto armed = sys.faults().Arm(system_s, name, spec);
    if (!armed.ok()) {
      std::fprintf(stderr, "xsec_stats: --fail %s: %s\n", pair.c_str(),
                   armed.status().ToString().c_str());
      return 1;
    }
    fail_names.push_back(std::move(name));
  }

  // Per-shard stamp-domain telemetry (/sys/monitor/shard/<i>/*) is always
  // live — the shard counters exist whether or not the ring is in play.
  xsec::Status shards_mounted = sys.stats().MountShards(&sys.monitor());
  if (!shards_mounted.ok()) {
    std::fprintf(stderr, "xsec_stats: %s\n", shards_mounted.ToString().c_str());
    return 1;
  }

  sys.stats().Tick();  // publish the boot-time baseline before the workload

  // In ring mode the same seeded workload submits through the shared-ring
  // transport (waiting each completion — the point here is to light up the
  // transport and its telemetry, not to saturate it) against pre-resolved
  // leaf nodes; direct mode path-checks as before.
  std::unique_ptr<xsec::MediationRing> ring;
  std::unique_ptr<xsec::MediationRing::Client> ring_client;
  xsec::ShardGrantTable grants;
  if (ring_shards > 0) {
    // Ring mode drives the full sharded transport: submissions route onto
    // the target's monitor shard and cross-shard subjects need admission
    // grants, so pre-grant both workload users for every leaf (MODEL.md
    // §15) — rejections would otherwise show up as submit failures here.
    for (xsec::NodeId node : nodes) {
      xsec::ShardId shard = sys.name_space().ShardOf(node);
      grants.Grant(*reader, "reader", node, shard);
      grants.Grant(*outsider, "outsider", node, shard);
    }
    xsec::MediationRingOptions ring_options;
    ring_options.shards = ring_shards;
    ring_options.route_by_monitor_shard = true;
    ring_options.grants = &grants;
    ring = std::make_unique<xsec::MediationRing>(&sys.monitor(), ring_options);
    xsec::Status mounted = sys.stats().MountRing(ring.get());
    if (mounted.ok()) {
      mounted = sys.stats().MountGrants(&grants);
    }
    if (!mounted.ok()) {
      std::fprintf(stderr, "xsec_stats: %s\n", mounted.ToString().c_str());
      return 1;
    }
    ring_client = ring->NewClient();
  }

  xsec::Rng rng(seed);
  for (uint64_t i = 0; i < checks; ++i) {
    xsec::Subject& subject = rng.NextBool(1, 2) ? reader_s : outsider_s;
    size_t target = rng.NextBelow(paths.size());
    xsec::AccessMode mode = rng.NextBool(1, 4) ? xsec::AccessMode::kWrite
                                               : xsec::AccessMode::kRead;
    if (ring != nullptr) {
      auto ticket = ring->SubmitCheck(*ring_client, subject, nodes[target], mode);
      if (ticket.ok()) {
        (void)ring->Wait(*ring_client, *ticket);
      }
    } else {
      (void)sys.monitor().CheckPath(subject, paths[target], mode);
    }
  }

  if (audit_drain) {
    // Land every queued record (and any rotation it triggers) before the
    // gauges below are read, so drained and undrained runs print the same.
    sys.monitor().audit().StopDrain();
  }
  if (fanout_sinks > 0) {
    sys.monitor().audit().StopFanOut();  // flushes every lane
  }

  sys.stats().Tick();  // fold the workload into the published snapshot

  if (snapshot) {
    std::fputs(sys.stats().RenderSnapshot().c_str(), stdout);
  } else {
    std::fputs(sys.stats().RenderAll().c_str(), stdout);
  }
  if (rotator != nullptr) {
    std::fprintf(stdout, "ndjson_rotations %llu\n",
                 static_cast<unsigned long long>(rotator->rotations()));
  }
  if (fanout_sinks > 0) {
    for (const xsec::AuditSinkLaneStats& lane :
         sys.monitor().audit().FanOutStats()) {
      std::fprintf(stdout,
                   "fanout lane %s delivered=%llu dropped=%llu "
                   "stitch_violations=%llu\n",
                   lane.name.c_str(),
                   static_cast<unsigned long long>(lane.delivered),
                   static_cast<unsigned long long>(lane.dropped),
                   static_cast<unsigned long long>(lane.stitch_violations));
    }
  }
  for (const std::string& name : fail_names) {
    auto state = sys.faults().ReadFault(system_s, name);
    if (state.ok()) {
      std::fprintf(stdout, "fault %s %s\n", name.c_str(), state->c_str());
    }
  }
  if (supervisor != nullptr) {
    std::fprintf(stdout, "health system %s quarantined=%llu stuck_shards=%llu\n",
                 std::string(xsec::SystemHealthName(supervisor->system_health())).c_str(),
                 static_cast<unsigned long long>(supervisor->quarantined_count()),
                 static_cast<unsigned long long>(supervisor->stuck_shards()));
    for (const xsec::ExtensionSupervisor::ExtSnapshot& snap : supervisor->SnapshotAll()) {
      std::fprintf(stdout,
                   "health ext %s %s invokes=%llu failures=%llu timeouts=%llu "
                   "trips=%llu releases=%llu rejected=%llu\n",
                   snap.name.c_str(),
                   std::string(xsec::ExtHealthName(snap.state)).c_str(),
                   static_cast<unsigned long long>(snap.invokes),
                   static_cast<unsigned long long>(snap.failures),
                   static_cast<unsigned long long>(snap.timeouts),
                   static_cast<unsigned long long>(snap.trips),
                   static_cast<unsigned long long>(snap.releases),
                   static_cast<unsigned long long>(snap.rejected));
    }
  }
  return 0;
}
