# CMake generated Testfile for 
# Source directory: /root/repo/src/codeload
# Build directory: /root/repo/build/src/codeload
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
