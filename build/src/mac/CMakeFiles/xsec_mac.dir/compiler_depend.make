# Empty compiler generated dependencies file for xsec_mac.
# This may be replaced when dependencies are built.
