#include "src/monitor/decision_cache.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace xsec {

DecisionCache::DecisionCache(size_t slot_count_pow2) {
  assert(slot_count_pow2 > 0 && std::has_single_bit(slot_count_pow2));
  shard_count_ = std::min(kMaxShards, slot_count_pow2);
  shard_mask_ = shard_count_ - 1;
  shard_bits_ = static_cast<unsigned>(std::countr_zero(shard_count_));
  slots_per_shard_ = slot_count_pow2 / shard_count_;
  slot_mask_ = slots_per_shard_ - 1;
  shards_ = std::make_unique<Shard[]>(shard_count_);
  for (size_t i = 0; i < shard_count_; ++i) {
    shards_[i].slots.resize(slots_per_shard_);
  }
}

uint64_t DecisionCache::KeyHash(const Subject& subject, NodeId node, AccessModeSet modes) {
  uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(subject.principal.value);
  mix(node.value);
  mix(modes.bits());
  mix(subject.security_class.Hash());
  return h;
}

bool DecisionCache::Lookup(const Subject& subject, NodeId node, AccessModeSet modes,
                           const CacheStamps& current, CachedDecision* out) {
  uint64_t hash = KeyHash(subject, node, modes);
  Shard& shard = shards_[hash & shard_mask_];
  std::lock_guard<std::mutex> lock(shard.mu);
  Slot& slot = shard.slots[(hash >> shard_bits_) & slot_mask_];
  if (!slot.occupied || slot.key_hash != hash || slot.principal != subject.principal.value ||
      slot.node != node.value || slot.modes != modes.bits() ||
      !(slot.subject_class == subject.security_class)) {
    ++shard.misses;
    return false;
  }
  if (!(slot.stamps == current)) {
    // A stale probe is both a miss (the caller must re-evaluate) and a
    // stale_hit (the sub-counter F8 plots); see the header invariant.
    ++shard.stale_hits;
    ++shard.misses;
    slot.occupied = false;
    return false;
  }
  ++shard.hits;
  *out = slot.decision;
  return true;
}

uint64_t DecisionCache::hits() const {
  uint64_t total = 0;
  for (size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].hits;
  }
  return total;
}

uint64_t DecisionCache::misses() const {
  uint64_t total = 0;
  for (size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].misses;
  }
  return total;
}

uint64_t DecisionCache::stale_hits() const {
  uint64_t total = 0;
  for (size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].stale_hits;
  }
  return total;
}

void DecisionCache::Insert(const Subject& subject, NodeId node, AccessModeSet modes,
                           const CacheStamps& current, CachedDecision decision) {
  Insert(subject, node, modes, current, decision, clear_epoch());
}

void DecisionCache::Insert(const Subject& subject, NodeId node, AccessModeSet modes,
                           const CacheStamps& current, CachedDecision decision,
                           uint64_t observed_clear_epoch) {
  uint64_t hash = KeyHash(subject, node, modes);
  Shard& shard = shards_[hash & shard_mask_];
  std::lock_guard<std::mutex> lock(shard.mu);
  // Clear() bumps the epoch before it wipes any shard, and the wipe takes
  // this same shard mutex. Holding the mutex, either the wipe has not
  // happened yet (our entry will be wiped with the rest) or it has, in which
  // case the pre-wipe epoch bump is visible here and we refuse — so a
  // decision evaluated against pre-clear stamps can never outlive the clear.
  // Relaxed suffices: the mutex orders us against the wipe, and the bump is
  // sequenced before the wipe in Clear().
  if (observed_clear_epoch != clear_epoch_.load(std::memory_order_relaxed)) {
    return;
  }
  Slot& slot = shard.slots[(hash >> shard_bits_) & slot_mask_];
  slot.occupied = true;
  slot.key_hash = hash;
  slot.principal = subject.principal.value;
  slot.node = node.value;
  slot.modes = modes.bits();
  slot.subject_class = subject.security_class;
  slot.stamps = current;
  slot.decision = decision;
}

void DecisionCache::Clear() {
  // Epoch first, wipe second — the order the epoch-carrying Insert relies on.
  clear_epoch_.fetch_add(1, std::memory_order_release);
  for (size_t i = 0; i < shard_count_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    for (Slot& slot : shards_[i].slots) {
      slot.occupied = false;
    }
  }
}

}  // namespace xsec
