// Origin-pinned code loading: the paper's static-class rule in action.
//
// §2.2: "applets that originate outside the local organization … might
// always run at the least level of trust to ensure that they can not access
// local files." The CodeLoader enforces exactly that: every extension image
// is integrity-checked and pinned to the *meet* of (its origin's ceiling,
// whatever class it asked for, the loader's clearance) before linking. Here
// three copies of the same applet arrive from three origins; each ends up at
// a different class, and only the local one can link against the
// local-labeled file-system procedure. A tampered image never links at all.
//
// Build & run:  cmake --build build && ./build/examples/applet_loader

#include <cstdio>

#include "src/codeload/code_loader.h"
#include "src/core/secure_system.h"

using xsec::AccessMode;
using xsec::Acl;
using xsec::AclEntry;
using xsec::AclEntryType;
using xsec::CodeImage;
using xsec::CodeLoader;
using xsec::ExtensionManifest;
using xsec::Origin;
using xsec::OriginPolicy;
using xsec::PackageExtension;

int main() {
  xsec::SecureSystem sys;
  (void)sys.labels().DefineLevels({"others", "organization", "local"});
  xsec::PrincipalId admin = *sys.CreateUser("admin");
  xsec::SecurityClass local = *sys.labels().MakeClass("local", {});
  xsec::SecurityClass org = *sys.labels().MakeClass("organization", {});
  xsec::SecurityClass others = *sys.labels().MakeClass("others", {});
  xsec::Subject loader_subject = sys.Login(admin, local);

  // The sensitive import target: reading local files. Label the fs read
  // procedure at `local`, grant everyone execute discretionarily — only the
  // mandatory class pinning decides who links.
  xsec::NodeId read_proc = *sys.name_space().Lookup("/svc/fs/read");
  (void)sys.name_space().SetLabelRef(read_proc, sys.labels().StoreLabel(local));

  CodeLoader loader(&sys.kernel(), OriginPolicy::Standard(local, org, others));

  auto applet = [&](std::string name, Origin origin) {
    ExtensionManifest manifest;
    manifest.name = std::move(name);
    manifest.origin = origin;
    manifest.imports = {"/svc/fs/read"};
    return PackageExtension(std::move(manifest));
  };

  struct Case {
    const char* label;
    Origin origin;
  };
  for (Case c : {Case{"local disk", Origin::kLocal}, Case{"intranet", Origin::kOrganization},
                 Case{"internet", Origin::kRemote}}) {
    CodeImage image = applet(std::string("applet-") + xsec::OriginName(c.origin).data(),
                             c.origin);
    auto id = loader.Load(image, loader_subject);
    if (id.ok()) {
      const xsec::LinkedExtension* ext = sys.kernel().GetExtension(*id);
      std::printf("%-11s -> linked at class %s\n", c.label,
                  sys.labels().ClassToString(ext->handler_class).c_str());
    } else {
      std::printf("%-11s -> %s\n", c.label, id.status().ToString().c_str());
    }
  }

  // Tampering: the image is modified after packaging (a man-in-the-middle
  // adding an import); the checksum check rejects it before any linking.
  CodeImage tampered = applet("applet-mitm", Origin::kLocal);
  tampered.manifest.imports.push_back("/svc/mbuf/alloc");
  auto rejected = loader.Load(tampered, loader_subject);
  std::printf("%-11s -> %s\n", "tampered", rejected.status().ToString().c_str());

  std::printf("\nloader stats: %llu linked, %llu tampered, %llu forbidden-origin\n",
              static_cast<unsigned long long>(loader.loads()),
              static_cast<unsigned long long>(loader.rejected_tampered()),
              static_cast<unsigned long long>(loader.rejected_forbidden_origin()));

  // Expected: exactly one successful load (local origin).
  return loader.loads() == 1 && loader.rejected_tampered() == 1 ? 0 : 1;
}
