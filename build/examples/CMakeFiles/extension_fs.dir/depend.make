# Empty dependencies file for extension_fs.
# This may be replaced when dependencies are built.
