#include "src/monitor/monitor_stats.h"

#include <chrono>
#include <thread>

namespace xsec {
namespace {

// Process-wide monotone instance ids make the per-thread slot cache safe
// against allocator recycling: a new MonitorStats at an old address still
// gets a fresh id, so stale cache entries can never alias it.
std::atomic<uint64_t> g_next_instance_id{0};

}  // namespace

MonitorStats::MonitorStats()
    : instance_id_(g_next_instance_id.fetch_add(1, std::memory_order_relaxed)) {
  slots_[kSlots].shared = true;
}

MonitorStats::SlotCache::Entry& MonitorStats::ClaimSlot(SlotCache& cache) {
  uint32_t index = next_slot_.fetch_add(1, std::memory_order_relaxed);
  Slot* slot = index < kSlots ? &slots_[index] : &slots_[kSlots];
  SlotCache::Entry& entry = cache.entries[cache.next_victim];
  cache.next_victim = (cache.next_victim + 1) % SlotCache::kWays;
  entry = SlotCache::Entry{instance_id_, slot, 0};
  return entry;
}

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void MonitorStats::RecordLatencyNs(uint64_t ns) {
  Slot& slot = *LocalEntry().slot;
  Bump(slot, slot.latency_buckets[LatencyBucketIndex(ns)]);
  // The sample count completes the record (release): a reader that sees it
  // (acquire) also sees the bucket bump, so sum(buckets) >= samples.
  BumpRelease(slot, slot.latency_samples);
}

template <typename Fn>
uint64_t MonitorStats::ReadStable(Fn&& read, uint64_t* generation_out) const {
  for (;;) {
    uint64_t before = reset_generation_.load(std::memory_order_acquire);
    if ((before & 1) != 0) {
      std::this_thread::yield();  // a Reset is zeroing the slots
      continue;
    }
    uint64_t value = read();
    std::atomic_thread_fence(std::memory_order_acquire);
    if (reset_generation_.load(std::memory_order_relaxed) == before) {
      if (generation_out != nullptr) {
        *generation_out = before;
      }
      return value;
    }
  }
}

uint64_t MonitorStats::checks_total() const {
  // Every decision lands in exactly one reason bucket (kNone = allowed), so
  // the total is the sum over reasons — no separate hot-path counter needed.
  return ReadStable([this] {
    return Sum([](const Slot& s) {
      uint64_t total = 0;
      for (const auto& c : s.by_reason) {
        total += c.load(std::memory_order_relaxed);
      }
      return total;
    });
  });
}

uint64_t MonitorStats::denied_total() const {
  return ReadStable([this] {
    uint64_t total = 0;
    for (size_t i = 1; i < kDenyReasonCount; ++i) {  // skip kNone (allowed)
      total += Sum([i](const Slot& s) { return s.by_reason[i].load(std::memory_order_relaxed); });
    }
    return total;
  });
}

uint64_t MonitorStats::by_reason(DenyReason reason) const {
  size_t i = static_cast<size_t>(reason);
  return ReadStable([this, i] {
    return Sum([i](const Slot& s) { return s.by_reason[i].load(std::memory_order_relaxed); });
  });
}

uint64_t MonitorStats::by_mode(AccessMode mode) const {
  unsigned b = static_cast<unsigned>(__builtin_ctz(static_cast<uint32_t>(mode)));
  return ReadStable([this, b] {
    return Sum([b](const Slot& s) { return s.by_mode[b].load(std::memory_order_relaxed); });
  });
}

uint64_t MonitorStats::latency_samples() const {
  return ReadStable([this] {
    return Sum([](const Slot& s) { return s.latency_samples.load(std::memory_order_relaxed); });
  });
}

uint64_t MonitorStats::latency_bucket(size_t i) const {
  return ReadStable([this, i] {
    return Sum([i](const Slot& s) {
      return s.latency_buckets[i].load(std::memory_order_relaxed);
    });
  });
}

uint64_t MonitorStats::LatencyQuantileNs(double q) const {
  return TakeSnapshot().LatencyQuantileNs(q);
}

uint64_t MonitorStats::Snapshot::ModeTotal() const {
  uint64_t total = 0;
  for (uint64_t m : by_mode) {
    total += m;
  }
  return total;
}

uint64_t MonitorStats::Snapshot::LatencyBucketTotal() const {
  uint64_t total = 0;
  for (uint64_t b : latency_buckets) {
    total += b;
  }
  return total;
}

uint64_t MonitorStats::Snapshot::LatencyQuantileNs(double q) const {
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  uint64_t total = LatencyBucketTotal();
  if (total == 0) {
    return 0;
  }
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    seen += latency_buckets[i];
    if (seen > rank) {
      return LatencyBucketUpperBoundNs(i);
    }
  }
  return LatencyBucketUpperBoundNs(kLatencyBuckets - 1);
}

bool MonitorStats::Snapshot::SameCounters(const Snapshot& other) const {
  if (reset_epoch != other.reset_epoch || checks_total != other.checks_total ||
      allowed != other.allowed || denied != other.denied ||
      latency_samples != other.latency_samples) {
    return false;
  }
  for (size_t i = 0; i < kDenyReasonCount; ++i) {
    if (by_reason[i] != other.by_reason[i]) {
      return false;
    }
  }
  for (size_t i = 0; i < static_cast<size_t>(kAccessModeCount); ++i) {
    if (by_mode[i] != other.by_mode[i]) {
      return false;
    }
  }
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    if (latency_buckets[i] != other.latency_buckets[i]) {
      return false;
    }
  }
  return true;
}

MonitorStats::Snapshot MonitorStats::TakeSnapshot() const {
  Snapshot snap;
  uint64_t generation = 0;
  ReadStable(
      [this, &snap] {
        // Pass 1 — the record-completing counters, with acquire loads: a
        // decision whose reason (or a latency record whose sample count) is
        // visible here release-published its earlier mode/bucket bumps, so
        // pass 2 is guaranteed to see them.
        for (size_t r = 0; r < kDenyReasonCount; ++r) {
          snap.by_reason[r] = Sum(
              [r](const Slot& s) { return s.by_reason[r].load(std::memory_order_acquire); });
        }
        snap.latency_samples = Sum(
            [](const Slot& s) { return s.latency_samples.load(std::memory_order_acquire); });
        // Pass 2 — the counters those completions published.
        for (size_t m = 0; m < static_cast<size_t>(kAccessModeCount); ++m) {
          snap.by_mode[m] = Sum(
              [m](const Slot& s) { return s.by_mode[m].load(std::memory_order_relaxed); });
        }
        for (size_t b = 0; b < kLatencyBuckets; ++b) {
          snap.latency_buckets[b] = Sum([b](const Slot& s) {
            return s.latency_buckets[b].load(std::memory_order_relaxed);
          });
        }
        return uint64_t{0};
      },
      &generation);
  snap.reset_epoch = generation >> 1;
  snap.allowed = snap.by_reason[static_cast<size_t>(DenyReason::kNone)];
  for (size_t r = 1; r < kDenyReasonCount; ++r) {
    snap.denied += snap.by_reason[r];
  }
  // Derived from the same single pass, so this identity holds by
  // construction on every snapshot.
  snap.checks_total = snap.allowed + snap.denied;
  return snap;
}

void MonitorStats::Reset() {
  // Serialized against other Resets so the generation protocol below is the
  // only writer interleaving readers can observe (two overlapped Resets
  // could otherwise present an even generation mid-zeroing).
  std::lock_guard<std::mutex> lock(reset_mu_);
  reset_generation_.fetch_add(1, std::memory_order_acq_rel);  // -> odd
  for (Slot& slot : slots_) {
    for (auto& c : slot.by_reason) {
      c.store(0, std::memory_order_relaxed);
    }
    for (auto& c : slot.by_mode) {
      c.store(0, std::memory_order_relaxed);
    }
    slot.latency_samples.store(0, std::memory_order_relaxed);
    for (auto& c : slot.latency_buckets) {
      c.store(0, std::memory_order_relaxed);
    }
  }
  reset_generation_.fetch_add(1, std::memory_order_release);  // -> even
}

}  // namespace xsec
