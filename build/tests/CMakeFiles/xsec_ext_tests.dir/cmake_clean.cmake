file(REMOVE_RECURSE
  "CMakeFiles/xsec_ext_tests.dir/code_loader_test.cc.o"
  "CMakeFiles/xsec_ext_tests.dir/code_loader_test.cc.o.d"
  "CMakeFiles/xsec_ext_tests.dir/kernel_fuzz_test.cc.o"
  "CMakeFiles/xsec_ext_tests.dir/kernel_fuzz_test.cc.o.d"
  "CMakeFiles/xsec_ext_tests.dir/netstack_test.cc.o"
  "CMakeFiles/xsec_ext_tests.dir/netstack_test.cc.o.d"
  "CMakeFiles/xsec_ext_tests.dir/policy_io_test.cc.o"
  "CMakeFiles/xsec_ext_tests.dir/policy_io_test.cc.o.d"
  "CMakeFiles/xsec_ext_tests.dir/property_extended_test.cc.o"
  "CMakeFiles/xsec_ext_tests.dir/property_extended_test.cc.o.d"
  "CMakeFiles/xsec_ext_tests.dir/property_monitor_test.cc.o"
  "CMakeFiles/xsec_ext_tests.dir/property_monitor_test.cc.o.d"
  "CMakeFiles/xsec_ext_tests.dir/umbrella_test.cc.o"
  "CMakeFiles/xsec_ext_tests.dir/umbrella_test.cc.o.d"
  "xsec_ext_tests"
  "xsec_ext_tests.pdb"
  "xsec_ext_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_ext_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
