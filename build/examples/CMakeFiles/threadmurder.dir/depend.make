# Empty dependencies file for threadmurder.
# This may be replaced when dependencies are built.
