#include "src/monitor/decision_cache.h"

#include <gtest/gtest.h>

namespace xsec {
namespace {

Subject MakeSubject(uint32_t principal, TrustLevel level = 0) {
  return Subject{PrincipalId{principal}, SecurityClass(level, CategorySet(4)), 1};
}

TEST(DecisionCacheTest, MissThenHit) {
  DecisionCache cache(64);
  Subject s = MakeSubject(1);
  CacheStamps stamps{1, 1, 1, 1};
  DecisionCache::CachedDecision out;
  EXPECT_FALSE(cache.Lookup(s, NodeId{5}, AccessMode::kRead, stamps, &out));
  cache.Insert(s, NodeId{5}, AccessMode::kRead, stamps, {true, DenyReason::kNone});
  ASSERT_TRUE(cache.Lookup(s, NodeId{5}, AccessMode::kRead, stamps, &out));
  EXPECT_TRUE(out.allowed);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(DecisionCacheTest, StaleStampsInvalidate) {
  DecisionCache cache(64);
  Subject s = MakeSubject(1);
  CacheStamps old_stamps{1, 1, 1, 1};
  cache.Insert(s, NodeId{5}, AccessMode::kRead, old_stamps, {true, DenyReason::kNone});
  CacheStamps new_stamps{2, 1, 1, 1};  // namespace changed
  DecisionCache::CachedDecision out;
  EXPECT_FALSE(cache.Lookup(s, NodeId{5}, AccessMode::kRead, new_stamps, &out));
  EXPECT_EQ(cache.stale_hits(), 1u);
  // And the slot is vacated: a second lookup with the old stamps also misses.
  EXPECT_FALSE(cache.Lookup(s, NodeId{5}, AccessMode::kRead, old_stamps, &out));
}

TEST(DecisionCacheTest, EachStampComponentMatters) {
  Subject s = MakeSubject(1);
  CacheStamps base{5, 6, 7, 8};
  for (int which = 0; which < 4; ++which) {
    DecisionCache cache(64);
    cache.Insert(s, NodeId{9}, AccessMode::kList, base, {true, DenyReason::kNone});
    CacheStamps changed = base;
    switch (which) {
      case 0:
        changed.namespace_generation++;
        break;
      case 1:
        changed.acl_generation++;
        break;
      case 2:
        changed.membership_epoch++;
        break;
      case 3:
        changed.label_epoch++;
        break;
    }
    DecisionCache::CachedDecision out;
    EXPECT_FALSE(cache.Lookup(s, NodeId{9}, AccessMode::kList, changed, &out)) << which;
  }
}

TEST(DecisionCacheTest, KeyIncludesPrincipalNodeModesAndClass) {
  DecisionCache cache(1u << 12);
  CacheStamps stamps{1, 1, 1, 1};
  Subject s1 = MakeSubject(1);
  cache.Insert(s1, NodeId{5}, AccessMode::kRead, stamps, {true, DenyReason::kNone});

  DecisionCache::CachedDecision out;
  // Different principal.
  EXPECT_FALSE(cache.Lookup(MakeSubject(2), NodeId{5}, AccessMode::kRead, stamps, &out));
  // Different node.
  EXPECT_FALSE(cache.Lookup(s1, NodeId{6}, AccessMode::kRead, stamps, &out));
  // Different modes.
  EXPECT_FALSE(cache.Lookup(s1, NodeId{5}, AccessMode::kWrite, stamps, &out));
  // Different security class (same principal).
  EXPECT_FALSE(cache.Lookup(MakeSubject(1, 2), NodeId{5}, AccessMode::kRead, stamps, &out));
  // Original still present.
  EXPECT_TRUE(cache.Lookup(s1, NodeId{5}, AccessMode::kRead, stamps, &out));
}

TEST(DecisionCacheTest, CachesDenialsToo) {
  DecisionCache cache(64);
  Subject s = MakeSubject(1);
  CacheStamps stamps{1, 1, 1, 1};
  cache.Insert(s, NodeId{5}, AccessMode::kWrite, stamps,
               {false, DenyReason::kDacExplicitDeny});
  DecisionCache::CachedDecision out;
  ASSERT_TRUE(cache.Lookup(s, NodeId{5}, AccessMode::kWrite, stamps, &out));
  EXPECT_FALSE(out.allowed);
  EXPECT_EQ(out.reason, DenyReason::kDacExplicitDeny);
}

TEST(DecisionCacheTest, ClearEmptiesEverySlot) {
  DecisionCache cache(64);
  Subject s = MakeSubject(1);
  CacheStamps stamps{1, 1, 1, 1};
  for (uint32_t n = 0; n < 32; ++n) {
    cache.Insert(s, NodeId{n}, AccessMode::kRead, stamps, {true, DenyReason::kNone});
  }
  cache.Clear();
  DecisionCache::CachedDecision out;
  for (uint32_t n = 0; n < 32; ++n) {
    EXPECT_FALSE(cache.Lookup(s, NodeId{n}, AccessMode::kRead, stamps, &out));
  }
}

TEST(DecisionCacheTest, CollisionOverwrites) {
  // A 1-slot cache: every distinct key collides.
  DecisionCache cache(1);
  Subject s = MakeSubject(1);
  CacheStamps stamps{1, 1, 1, 1};
  cache.Insert(s, NodeId{1}, AccessMode::kRead, stamps, {true, DenyReason::kNone});
  cache.Insert(s, NodeId{2}, AccessMode::kRead, stamps, {false, DenyReason::kMacFlow});
  DecisionCache::CachedDecision out;
  EXPECT_FALSE(cache.Lookup(s, NodeId{1}, AccessMode::kRead, stamps, &out));
  ASSERT_TRUE(cache.Lookup(s, NodeId{2}, AccessMode::kRead, stamps, &out));
  EXPECT_FALSE(out.allowed);
}

}  // namespace
}  // namespace xsec
