#include "src/monitor/audit.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

namespace xsec {
namespace {

AuditRecord MakeRecord(bool allowed, DenyReason reason = DenyReason::kNone) {
  AuditRecord r;
  r.principal = PrincipalId{1};
  r.thread_id = 7;
  r.node = NodeId{3};
  r.path = "/svc/fs/read";
  r.modes = AccessMode::kExecute;
  r.allowed = allowed;
  r.reason = reason;
  return r;
}

TEST(AuditLogTest, DefaultPolicyRetainsDenialsOnly) {
  AuditLog log;
  EXPECT_EQ(log.policy(), AuditPolicy::kDenialsOnly);
  log.Record(MakeRecord(true));
  log.Record(MakeRecord(false, DenyReason::kDacNoGrant));
  EXPECT_EQ(log.records().size(), 1u);
  EXPECT_FALSE(log.records().front().allowed);
  EXPECT_EQ(log.total_checks(), 2u);
  EXPECT_EQ(log.total_denials(), 1u);
}

TEST(AuditLogTest, PolicyAllRetainsEverything) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  log.Record(MakeRecord(true));
  log.Record(MakeRecord(false, DenyReason::kMacFlow));
  EXPECT_EQ(log.records().size(), 2u);
}

TEST(AuditLogTest, PolicyOffRetainsNothingButCounts) {
  AuditLog log;
  log.set_policy(AuditPolicy::kOff);
  log.Record(MakeRecord(false, DenyReason::kMacFlow));
  EXPECT_TRUE(log.records().empty());
  EXPECT_EQ(log.total_checks(), 1u);
  EXPECT_EQ(log.total_denials(), 1u);
}

TEST(AuditLogTest, WouldRetainMatchesPolicy) {
  AuditLog log;
  log.set_policy(AuditPolicy::kOff);
  EXPECT_FALSE(log.WouldRetain(true));
  EXPECT_FALSE(log.WouldRetain(false));
  log.set_policy(AuditPolicy::kDenialsOnly);
  EXPECT_FALSE(log.WouldRetain(true));
  EXPECT_TRUE(log.WouldRetain(false));
  log.set_policy(AuditPolicy::kAll);
  EXPECT_TRUE(log.WouldRetain(true));
  EXPECT_TRUE(log.WouldRetain(false));
}

TEST(AuditLogTest, SequenceNumbersAreMonotonic) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  for (int i = 0; i < 5; ++i) {
    log.Record(MakeRecord(true));
  }
  uint64_t prev = 0;
  bool first = true;
  for (const AuditRecord& r : log.records()) {
    if (!first) {
      EXPECT_EQ(r.sequence, prev + 1);
    }
    prev = r.sequence;
    first = false;
  }
}

TEST(AuditLogTest, CapacityEvictsOldest) {
  AuditLog log(3);
  log.set_policy(AuditPolicy::kAll);
  for (int i = 0; i < 5; ++i) {
    log.Record(MakeRecord(true));
  }
  EXPECT_EQ(log.records().size(), 3u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log.records().front().sequence, 2u);
}

TEST(AuditLogTest, SinkSeesRetainedRecords) {
  AuditLog log;
  log.set_policy(AuditPolicy::kDenialsOnly);
  int seen = 0;
  log.set_sink([&seen](const AuditRecord& r) {
    ++seen;
    EXPECT_FALSE(r.allowed);
  });
  log.Record(MakeRecord(true));
  log.Record(MakeRecord(false, DenyReason::kMacFlow));
  EXPECT_EQ(seen, 1);
}

TEST(AuditLogTest, QueryFilters) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  log.Record(MakeRecord(true));
  log.Record(MakeRecord(false, DenyReason::kMacFlow));
  log.Record(MakeRecord(false, DenyReason::kDacNoGrant));
  auto flow = log.Query(
      [](const AuditRecord& r) { return r.reason == DenyReason::kMacFlow; });
  EXPECT_EQ(flow.size(), 1u);
}

TEST(AuditLogTest, ClearResetsEverything) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  log.Record(MakeRecord(false, DenyReason::kMacFlow));
  log.Clear();
  EXPECT_TRUE(log.records().empty());
  EXPECT_EQ(log.total_checks(), 0u);
  EXPECT_EQ(log.total_denials(), 0u);
}

TEST(AuditLogTest, ClearKeepsSequenceNumbersMonotone) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  log.Record(MakeRecord(true));
  log.Record(MakeRecord(true));
  uint64_t last_before = log.records().back().sequence;
  log.Clear();
  log.Record(MakeRecord(true));
  // Sequences already exported (e.g. into a rotated NDJSON file) must never
  // be reused: records after a Clear continue the numbering, so `seq` keeps
  // identifying each decision uniquely across rotations.
  EXPECT_GT(log.records().front().sequence, last_before);
}

TEST(AuditLogTest, SinkRunsOutsideTheRingLock) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  size_t retained_during_sink = 0;
  // A sink that calls back into the log would self-deadlock if Record still
  // invoked it under the ring mutex.
  log.set_sink([&](const AuditRecord&) { retained_during_sink = log.retained(); });
  log.Record(MakeRecord(true));
  EXPECT_EQ(retained_during_sink, 1u);
}

TEST(AuditLogTest, DrainDeliversEveryRecordInSequenceOrder) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  std::vector<uint64_t> seen;
  log.set_sink([&](const AuditRecord& r) { seen.push_back(r.sequence); });
  log.StartDrain();
  for (int i = 0; i < 100; ++i) {
    log.Record(MakeRecord(i % 2 == 0));
  }
  log.StopDrain();  // flushes the queue before joining
  ASSERT_EQ(seen.size(), 100u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.front(), 0u);
  EXPECT_EQ(seen.back(), 99u);
  EXPECT_EQ(log.sink_dropped(), 0u);
}

TEST(AuditLogTest, FlushWaitsForTheQueueToDrain) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  std::atomic<int> delivered{0};
  log.set_sink([&](const AuditRecord&) { delivered.fetch_add(1); });
  log.StartDrain();
  for (int i = 0; i < 50; ++i) {
    log.Record(MakeRecord(true));
  }
  log.Flush();
  EXPECT_EQ(delivered.load(), 50);
  log.StopDrain();
}

TEST(AuditLogTest, FullDrainQueueDropsFromTheSinkNotTheRing) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  std::atomic<bool> release{false};
  std::atomic<int> delivered{0};
  log.set_sink([&](const AuditRecord&) {
    while (!release.load()) {
      std::this_thread::yield();  // wedge the drainer mid-record
    }
    delivered.fetch_add(1);
  });
  AuditDrainOptions options;
  options.queue_capacity = 4;
  log.StartDrain(options);
  log.Record(MakeRecord(true));
  // Whether the drainer is already stuck in the sink or has not woken yet,
  // at most queue_capacity of these can be queued; the rest must shed.
  for (int i = 0; i < 32; ++i) {
    log.Record(MakeRecord(true));
  }
  release.store(true);
  log.StopDrain();
  // Every record is still in the ring; only sink delivery was shed.
  EXPECT_EQ(log.retained(), 33u);
  EXPECT_GT(log.sink_dropped(), 0u);
  EXPECT_EQ(static_cast<uint64_t>(delivered.load()) + log.sink_dropped(), 33u);
}

TEST(AuditLogTest, ConcurrentRecordersUnderTheDrainKeepEveryCounter) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  std::atomic<int> delivered{0};
  log.set_sink([&](const AuditRecord&) { delivered.fetch_add(1); });
  log.StartDrain();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Record(MakeRecord(true));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  log.StopDrain();
  EXPECT_EQ(log.total_checks(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(static_cast<uint64_t>(delivered.load()) + log.sink_dropped(),
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(AuditRecordTest, ToStringContainsKeyFields) {
  AuditRecord r = MakeRecord(false, DenyReason::kMacFlow);
  r.sequence = 12;
  std::string text = r.ToString();
  EXPECT_NE(text.find("/svc/fs/read"), std::string::npos);
  EXPECT_NE(text.find("DENY"), std::string::npos);
  EXPECT_NE(text.find("mac-flow"), std::string::npos);
  EXPECT_NE(text.find("execute"), std::string::npos);
}

TEST(DenyReasonTest, NamesAreStable) {
  EXPECT_EQ(DenyReasonName(DenyReason::kNone), "none");
  EXPECT_EQ(DenyReasonName(DenyReason::kDacExplicitDeny), "dac-explicit-deny");
  EXPECT_EQ(DenyReasonName(DenyReason::kMacFlow), "mac-flow");
  EXPECT_EQ(DenyReasonName(DenyReason::kTraversal), "traversal");
}

TEST(AuditRecordTest, ToJsonEmitsOneWellFormedObject) {
  AuditRecord r = MakeRecord(false, DenyReason::kMacFlow);
  r.sequence = 42;
  r.detail = "write of level-1 violates flow";
  std::string json = r.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find('\n'), std::string::npos);  // NDJSON: one line
  EXPECT_NE(json.find("\"seq\":42"), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"/svc/fs/read\""), std::string::npos);
  EXPECT_NE(json.find("\"allowed\":false"), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"mac-flow\""), std::string::npos);
  EXPECT_NE(json.find("\"modes\":\"execute\""), std::string::npos);
}

TEST(AuditRecordTest, ToJsonEscapesStringFields) {
  AuditRecord r = MakeRecord(false, DenyReason::kDacNoGrant);
  r.path = "/odd/\"quoted\"\\path";
  r.detail = "line\nbreak\tand control \x01";
  std::string json = r.ToJson();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\path"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
}

TEST(AuditLogTest, NdjsonSinkStreamsEveryRetainedRecord) {
  AuditLog log;
  log.set_policy(AuditPolicy::kAll);
  std::ostringstream out;
  log.set_sink(MakeNdjsonSink(&out));
  log.Record(MakeRecord(true));
  log.Record(MakeRecord(false, DenyReason::kMacFlow));
  std::string text = out.str();
  // Two records, one JSON object per line.
  size_t lines = static_cast<size_t>(std::count(text.begin(), text.end(), '\n'));
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(text.find("\"allowed\":true"), std::string::npos);
  EXPECT_NE(text.find("\"reason\":\"mac-flow\""), std::string::npos);
}

TEST(AuditLogTest, NdjsonSinkSeesOnlyWhatThePolicyRetains) {
  AuditLog log;  // default: denials only
  std::ostringstream out;
  log.set_sink(MakeNdjsonSink(&out));
  log.Record(MakeRecord(true));
  log.Record(MakeRecord(false, DenyReason::kDacNoGrant));
  std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
  EXPECT_EQ(text.find("\"allowed\":true"), std::string::npos);
}

TEST(AuditLogTest, RetainedGaugeCountsWithoutCopying) {
  AuditLog log(4);
  log.set_policy(AuditPolicy::kAll);
  EXPECT_EQ(log.retained(), 0u);
  for (int i = 0; i < 3; ++i) {
    log.Record(MakeRecord(true));
  }
  EXPECT_EQ(log.retained(), 3u);
  for (int i = 0; i < 10; ++i) {  // ring caps at capacity
    log.Record(MakeRecord(false, DenyReason::kMacFlow));
  }
  EXPECT_EQ(log.retained(), 4u);
  log.Clear();
  EXPECT_EQ(log.retained(), 0u);
}

TEST(AuditLogTest, RecordBatchStampsContiguouslyAndAppliesThePolicy) {
  AuditLog log;  // default: denials only
  std::vector<uint64_t> emitted;
  log.set_sink([&emitted](const AuditRecord& r) { emitted.push_back(r.sequence); });

  // One batch: [allow, deny, allow, deny]. Under denials-only the allows
  // are dropped before stamping, so the denials get CONTIGUOUS sequence
  // numbers — a batch costs exactly what it retains.
  std::vector<AuditRecord> batch;
  batch.push_back(MakeRecord(true));
  batch.push_back(MakeRecord(false, DenyReason::kDacNoGrant));
  batch.push_back(MakeRecord(true));
  batch.push_back(MakeRecord(false, DenyReason::kMacFlow));
  log.RecordBatch(std::move(batch));

  ASSERT_EQ(emitted.size(), 2u);
  EXPECT_EQ(emitted[1], emitted[0] + 1);
  EXPECT_EQ(log.retained(), 2u);
  // The batch counted every decision it was handed, retained or not; a
  // caller that filtered records out beforehand tops the counters up with
  // CountBatch.
  EXPECT_EQ(log.total_checks(), 4u);
  EXPECT_EQ(log.total_denials(), 2u);
  log.CountBatch(/*checks=*/2, /*denials=*/0);
  EXPECT_EQ(log.total_checks(), 6u);
  EXPECT_EQ(log.total_denials(), 2u);

  // A later batch continues the sequence right after a per-record Record.
  log.Record(MakeRecord(false, DenyReason::kDacNoGrant));
  std::vector<AuditRecord> second;
  second.push_back(MakeRecord(false, DenyReason::kDacNoGrant));
  log.RecordBatch(std::move(second));
  ASSERT_EQ(emitted.size(), 4u);
  EXPECT_EQ(emitted[3], emitted[2] + 1);
}

class NdjsonRotationTest : public ::testing::Test {
 protected:
  NdjsonRotationTest() {
    base_ = ::testing::TempDir() + "/xsec_rotate_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".ndjson";
    CleanUp();
  }
  ~NdjsonRotationTest() override { CleanUp(); }

  void CleanUp() {
    std::remove(base_.c_str());
    for (int k = 1; k <= 8; ++k) {
      std::remove((base_ + "." + std::to_string(k)).c_str());
    }
  }

  static bool Exists(const std::string& path) {
    std::ifstream in(path);
    return in.good();
  }

  static size_t FileBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    return in.good() ? static_cast<size_t>(in.tellg()) : 0;
  }

  std::string base_;
};

TEST_F(NdjsonRotationTest, RotatesBySizeAndShiftsHistory) {
  size_t line_bytes = MakeRecord(false, DenyReason::kMacFlow).ToJson().size() + 1;
  NdjsonRotationPolicy policy;
  policy.max_bytes = 2 * line_bytes;  // two records per file
  policy.max_keep = 2;
  NdjsonFileRotator rotator(base_, policy);
  ASSERT_TRUE(rotator.Open().ok());
  for (int i = 0; i < 7; ++i) {
    rotator.Write(MakeRecord(false, DenyReason::kMacFlow));
  }
  // 7 records at 2 per file: two full files rotated out, one live record.
  EXPECT_EQ(rotator.rotations(), 3u);
  EXPECT_TRUE(Exists(base_));
  EXPECT_TRUE(Exists(base_ + ".1"));
  EXPECT_TRUE(Exists(base_ + ".2"));
  EXPECT_FALSE(Exists(base_ + ".3"));  // history is bounded at max_keep
  EXPECT_EQ(FileBytes(base_), line_bytes);
  EXPECT_EQ(FileBytes(base_ + ".1"), 2 * line_bytes);
  // Every file holds whole NDJSON lines (no mid-record splits).
  EXPECT_EQ(FileBytes(base_ + ".2"), 2 * line_bytes);
}

TEST_F(NdjsonRotationTest, ZeroKeepTruncatesInPlace) {
  size_t line_bytes = MakeRecord(false).ToJson().size() + 1;
  NdjsonRotationPolicy policy;
  policy.max_bytes = line_bytes;  // one record per file
  policy.max_keep = 0;
  NdjsonFileRotator rotator(base_, policy);
  ASSERT_TRUE(rotator.Open().ok());
  for (int i = 0; i < 4; ++i) {
    rotator.Write(MakeRecord(false));
  }
  EXPECT_EQ(rotator.rotations(), 3u);
  EXPECT_EQ(FileBytes(base_), line_bytes);
  EXPECT_FALSE(Exists(base_ + ".1"));
}

TEST_F(NdjsonRotationTest, RotatesByAge) {
  NdjsonRotationPolicy policy;
  policy.max_age_ns = 1;  // any nonzero delay between writes exceeds this
  policy.max_keep = 1;
  NdjsonFileRotator rotator(base_, policy);
  ASSERT_TRUE(rotator.Open().ok());
  rotator.Write(MakeRecord(false));
  rotator.Write(MakeRecord(false));  // the file is already over-age
  EXPECT_GE(rotator.rotations(), 1u);
  EXPECT_TRUE(Exists(base_ + ".1"));
}

TEST_F(NdjsonRotationTest, WorksAsAnAuditLogSink) {
  AuditLog log;
  size_t line_bytes = MakeRecord(false, DenyReason::kDacNoGrant).ToJson().size() + 1;
  NdjsonRotationPolicy policy;
  policy.max_bytes = 2 * line_bytes;
  policy.max_keep = 3;
  auto rotator = std::make_shared<NdjsonFileRotator>(base_, policy);
  ASSERT_TRUE(rotator->Open().ok());
  log.set_sink(MakeRotatingNdjsonSink(rotator));
  for (int i = 0; i < 5; ++i) {
    log.Record(MakeRecord(false, DenyReason::kDacNoGrant));
  }
  EXPECT_EQ(rotator->rotations(), 2u);
  EXPECT_TRUE(Exists(base_));
  EXPECT_TRUE(Exists(base_ + ".1"));
  // The sequence numbers the log stamped survive in the rotated files.
  std::ifstream rotated(base_ + ".1");
  std::string line;
  ASSERT_TRUE(std::getline(rotated, line));
  EXPECT_NE(line.find("\"seq\":"), std::string::npos);
}

}  // namespace
}  // namespace xsec
