#!/usr/bin/env python3
"""Gate for the F17 supervised-degradation figures.

Reads a fresh BENCH_f17.json and enforces the supervisor's containment
claim end to end:

1. Containment: a quarantined peer must not tax its neighbors —

       median cpu_time(BM_SupervisedInvokeQuarantinedPeer)
     / median cpu_time(BM_SupervisedInvokeBaseline)        must be <= --max-ratio

   (default 1.10: within 10% of baseline). Both sides come from the same
   run on the same fixture, so machine speed cancels.

2. The trip was real and observable: the quarantined-peer entry must carry
   counters proving the episode happened through the production path —
   peer_trips > 0 (the breaker tripped on genuine budget timeouts),
   audited > 0 (the trip landed in the audit log as a kQuarantined denial),
   health_visible == 1 (an operator can read the quarantine at
   /sys/monitor/health/ext/<name>/state).

3. Recovery: BM_QuarantineReleaseRoundTrip must report round_trip_ok == 1 —
   every quarantine -> fail-fast -> mediated /svc/health/release -> restored
   cycle succeeded.

No committed baseline: like F15, this is an absolute claim about the
mechanism, not a regression bound.

Usage: check_bench_f17.py <fresh.json> [--max-ratio 1.10]
"""

import argparse
import json
import statistics
import sys

BASELINE = "BM_SupervisedInvokeBaseline"
QUARANTINED = "BM_SupervisedInvokeQuarantinedPeer"
ROUND_TRIP = "BM_QuarantineReleaseRoundTrip"


def iteration_entries(data, name_pred):
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        if (name_pred(name)
                and bench.get("run_type", "iteration") == "iteration"
                and "error_occurred" not in bench):
            yield name, bench


def median_cpu_time(data, path, name):
    values = [
        float(bench["cpu_time"])
        for _, bench in iteration_entries(data, lambda n: n == name)
        if "cpu_time" in bench
    ]
    if not values:
        raise KeyError(f"{path}: no successful benchmark named {name}")
    return statistics.median(values)


def counters(data, path, name, keys):
    for _, bench in iteration_entries(data, lambda n: n.startswith(name)):
        if all(key in bench for key in keys):
            return {key: float(bench[key]) for key in keys}
    raise KeyError(f"{path}: no {name} entry carrying {'/'.join(keys)}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh")
    parser.add_argument("--max-ratio", type=float, default=1.10,
                        help="quarantined-peer / baseline invoke-cost ceiling "
                             "(default 1.10: within 10%% of baseline)")
    args = parser.parse_args()

    try:
        with open(args.fresh) as f:
            data = json.load(f)
        if not data.get("benchmarks"):
            raise ValueError(f"{args.fresh}: no benchmark entries — "
                             "did bench_f17_supervisor run?")
        baseline = median_cpu_time(data, args.fresh, BASELINE)
        if baseline <= 0:
            raise ValueError(f"{args.fresh}: non-positive cpu_time for {BASELINE}")
        quarantined = median_cpu_time(data, args.fresh, QUARANTINED)
        episode = counters(data, args.fresh, QUARANTINED,
                           ["peer_trips", "audited", "health_visible"])
        recovery = counters(data, args.fresh, ROUND_TRIP, ["round_trip_ok"])
    except (OSError, KeyError, ValueError, json.JSONDecodeError) as err:
        print(f"check_bench_f17: {err}", file=sys.stderr)
        return 1

    failed = False
    ratio = quarantined / baseline
    print(f"invoke with quarantined peer: {quarantined:.1f}ns vs baseline "
          f"{baseline:.1f}ns (ratio {ratio:.4f})")
    if ratio > args.max_ratio:
        print(f"check_bench_f17: FAIL — a quarantined peer taxed unrelated "
              f"invokes (ratio {ratio:.4f} > {args.max_ratio})", file=sys.stderr)
        failed = True

    print(f"episode: peer_trips={episode['peer_trips']:.0f} "
          f"audited={episode['audited']:.0f} "
          f"health_visible={episode['health_visible']:.0f}")
    if episode["peer_trips"] <= 0:
        print("check_bench_f17: FAIL — the peer's breaker never tripped "
              "(did the budget-timeout setup run?)", file=sys.stderr)
        failed = True
    if episode["audited"] <= 0:
        print("check_bench_f17: FAIL — the trip left no kQuarantined denial "
              "in the audit log", file=sys.stderr)
        failed = True
    if episode["health_visible"] != 1:
        print("check_bench_f17: FAIL — the quarantine is not readable at "
              "/sys/monitor/health/ext/<name>/state", file=sys.stderr)
        failed = True

    print(f"recovery: round_trip_ok={recovery['round_trip_ok']:.0f}")
    if recovery["round_trip_ok"] != 1:
        print("check_bench_f17: FAIL — a quarantine -> mediated release -> "
              "restored cycle failed", file=sys.stderr)
        failed = True

    if failed:
        return 1
    print("check_bench_f17: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
