#include "src/policy/policy_io.h"

#include <unistd.h>

#include <cstdio>
#include <set>

#include "src/base/failpoint.h"
#include "src/base/strings.h"

namespace xsec {
namespace {

StatusOr<NodeKind> KindByName(std::string_view name) {
  for (NodeKind kind : {NodeKind::kDirectory, NodeKind::kService, NodeKind::kInterface,
                        NodeKind::kObject, NodeKind::kProcedure, NodeKind::kFile}) {
    if (name == NodeKindName(kind)) {
      return kind;
    }
  }
  return InvalidArgumentError(StrFormat("unknown node kind '%s'", std::string(name).c_str()));
}

// The serialized form must load back: every token we emit has to be a name
// LoadPolicy can resolve. A kernel can legally hold state with no such name
// — a label whose level index exceeds the defined levels, a category bit
// beyond the defined categories, a node owned by a principal id that is not
// in the registry. Emitting a synthetic fallback token ("level-5", "cat-9",
// "p42") would produce a policy file that errors on reload, so serialization
// fails loudly instead, naming the offending object.
StatusOr<std::string> PrincipalName(Kernel& kernel, PrincipalId id, const char* context) {
  const Principal* p = kernel.principals().Get(id);
  if (p == nullptr) {
    return FailedPreconditionError(
        StrFormat("%s references principal id %u, which is not in the registry; "
                  "the policy would not load back",
                  context, id.value));
  }
  return p->name;
}

// Appends " <level> [<cat>...]" for `cls` to *line.
Status AppendClassTokens(Kernel& kernel, const SecurityClass& cls, const char* context,
                         std::string* line) {
  const auto& level_names = kernel.labels().level_names();
  if (cls.level() >= level_names.size()) {
    return FailedPreconditionError(
        StrFormat("%s uses level %u but only %zu level(s) are defined; "
                  "the policy would not load back",
                  context, static_cast<unsigned>(cls.level()), level_names.size()));
  }
  *line += " " + level_names[cls.level()];
  const auto& category_names = kernel.labels().category_names();
  for (size_t cat : cls.categories().ToIndices()) {
    if (cat >= category_names.size()) {
      return FailedPreconditionError(
          StrFormat("%s uses category %zu but only %zu categories are defined; "
                    "the policy would not load back",
                    context, cat, category_names.size()));
    }
    *line += " " + category_names[cat];
  }
  return OkStatus();
}

Status SerializeNodePolicy(Kernel& kernel, NodeId id, std::string* out) {
  const Node* node = kernel.name_space().Get(id);
  std::string path = kernel.name_space().PathOf(id);
  if (id != kernel.name_space().root()) {
    auto owner = PrincipalName(kernel, node->owner,
                               StrFormat("node '%s'", path.c_str()).c_str());
    if (!owner.ok()) {
      return owner.status();
    }
    *out += StrFormat("node %s %s %s\n", path.c_str(),
                      std::string(NodeKindName(node->kind)).c_str(), owner->c_str());
  }
  if (node->label_ref != kNoRef) {
    const SecurityClass* cls = kernel.labels().GetLabel(node->label_ref);
    std::string line = StrFormat("label %s", path.c_str());
    XSEC_RETURN_IF_ERROR(AppendClassTokens(
        kernel, *cls, StrFormat("label on '%s'", path.c_str()).c_str(), &line));
    *out += line + "\n";
  }
  if (node->acl_ref != kNoRef) {
    const Acl* acl = kernel.acls().Get(node->acl_ref);
    if (acl->empty()) {
      // An empty own ACL is meaningful: it overrides any inherited ACL and
      // denies everything, so it must survive serialization explicitly.
      *out += StrFormat("acl %s none\n", path.c_str());
    }
    for (const AclEntry& entry : acl->entries()) {
      auto who = PrincipalName(kernel, entry.who,
                               StrFormat("acl on '%s'", path.c_str()).c_str());
      if (!who.ok()) {
        return who.status();
      }
      *out += StrFormat("acl %s %s %s %s\n", path.c_str(),
                        entry.type == AclEntryType::kAllow ? "allow" : "deny", who->c_str(),
                        entry.modes.ToString().c_str());
    }
  }
  auto children = kernel.name_space().List(id);
  if (children.ok()) {
    for (NodeId child : *children) {
      XSEC_RETURN_IF_ERROR(SerializeNodePolicy(kernel, child, out));
    }
  }
  return OkStatus();
}

}  // namespace

StatusOr<std::string> SerializePolicy(Kernel& kernel) {
  std::string out = "xsec-policy v1\n";

  if (kernel.labels().levels_defined()) {
    out += "levels";
    for (const std::string& level : kernel.labels().level_names()) {
      out += " " + level;
    }
    out += "\n";
  }
  for (const std::string& category : kernel.labels().category_names()) {
    out += "category " + category + "\n";
  }

  PrincipalRegistry& registry = kernel.principals();
  for (uint32_t i = 0; i < registry.principal_count(); ++i) {
    const Principal* p = registry.Get(PrincipalId{i});
    out += std::string(p->kind == PrincipalKind::kUser ? "user " : "group ") + p->name + "\n";
  }
  for (uint32_t i = 0; i < registry.principal_count(); ++i) {
    const Principal* p = registry.Get(PrincipalId{i});
    if (p->kind != PrincipalKind::kGroup) {
      continue;
    }
    auto members = registry.MembersOf(PrincipalId{i});
    for (PrincipalId member : *members) {
      auto name = PrincipalName(kernel, member,
                                StrFormat("group '%s'", p->name.c_str()).c_str());
      if (!name.ok()) {
        return name.status();
      }
      out += StrFormat("member %s %s\n", p->name.c_str(), name->c_str());
    }
  }
  // Clearances, in principal-id order for determinism.
  for (uint32_t i = 0; i < registry.principal_count(); ++i) {
    const SecurityClass* clearance = kernel.labels().ClearanceOf(i);
    if (clearance == nullptr) {
      continue;
    }
    auto name = PrincipalName(kernel, PrincipalId{i}, "clearance");
    if (!name.ok()) {
      return name.status();
    }
    std::string line = "clearance " + *name;
    XSEC_RETURN_IF_ERROR(AppendClassTokens(
        kernel, *clearance,
        StrFormat("clearance of '%s'", name->c_str()).c_str(), &line));
    out += line + "\n";
  }
  if (kernel.monitor().security_officer().valid()) {
    auto name = PrincipalName(kernel, kernel.monitor().security_officer(), "officer");
    if (!name.ok()) {
      return name.status();
    }
    out += "officer " + *name + "\n";
  }

  XSEC_RETURN_IF_ERROR(SerializeNodePolicy(kernel, kernel.name_space().root(), &out));
  return out;
}

namespace {

Status LoadPolicyImpl(std::string_view text, Kernel* kernel) {
  auto fail = [](size_t line_number, std::string message) {
    return InvalidArgumentError(
        StrFormat("policy line %zu: %s", line_number, message.c_str()));
  };

  auto principal_by_name = [kernel](const std::string& name) -> StatusOr<PrincipalId> {
    return kernel->principals().FindByName(name);
  };

  std::vector<std::string> lines = StrSplit(text, '\n');
  bool saw_header = false;
  // Paths whose first `acl` directive has been seen (that directive resets
  // the node's ACL; later ones append).
  std::set<std::string> acl_reset;

  for (size_t i = 0; i < lines.size(); ++i) {
    size_t line_number = i + 1;
    std::string line = lines[i];
    if (size_t hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::vector<std::string> tokens = StrSplit(line, ' ', /*skip_empty=*/true);
    if (tokens.empty()) {
      continue;
    }
    if (!saw_header) {
      if (tokens.size() != 2 || tokens[0] != "xsec-policy" || tokens[1] != "v1") {
        return fail(line_number, "expected header 'xsec-policy v1'");
      }
      saw_header = true;
      continue;
    }
    const std::string& directive = tokens[0];

    if (directive == "levels") {
      std::vector<std::string> names(tokens.begin() + 1, tokens.end());
      if (names.empty()) {
        return fail(line_number, "levels needs at least one name");
      }
      if (kernel->labels().levels_defined()) {
        if (kernel->labels().level_names() != names) {
          return fail(line_number, "levels are already defined differently");
        }
        continue;
      }
      Status status = kernel->labels().DefineLevels(names);
      if (!status.ok()) {
        return fail(line_number, status.ToString());
      }
    } else if (directive == "category") {
      if (tokens.size() != 2) {
        return fail(line_number, "category needs exactly one name");
      }
      auto id = kernel->labels().DefineCategory(tokens[1]);
      if (!id.ok() && id.status().code() != StatusCode::kAlreadyExists) {
        return fail(line_number, id.status().ToString());
      }
    } else if (directive == "user" || directive == "group") {
      if (tokens.size() != 2) {
        return fail(line_number, directive + " needs exactly one name");
      }
      auto id = directive == "user" ? kernel->principals().CreateUser(tokens[1])
                                    : kernel->principals().CreateGroup(tokens[1]);
      if (!id.ok() && id.status().code() != StatusCode::kAlreadyExists) {
        return fail(line_number, id.status().ToString());
      }
    } else if (directive == "member") {
      if (tokens.size() != 3) {
        return fail(line_number, "member needs <group> <member>");
      }
      auto group = principal_by_name(tokens[1]);
      auto member = principal_by_name(tokens[2]);
      if (!group.ok() || !member.ok()) {
        return fail(line_number, "unknown principal in member directive");
      }
      Status status = kernel->principals().AddMember(*group, *member);
      if (!status.ok() && status.code() != StatusCode::kAlreadyExists) {
        return fail(line_number, status.ToString());
      }
    } else if (directive == "clearance") {
      if (tokens.size() < 3) {
        return fail(line_number, "clearance needs <user> <level> [<cat>...]");
      }
      auto user = principal_by_name(tokens[1]);
      if (!user.ok()) {
        return fail(line_number, "unknown principal in clearance directive");
      }
      std::vector<std::string> cats(tokens.begin() + 3, tokens.end());
      auto cls = kernel->labels().MakeClass(tokens[2], cats);
      if (!cls.ok()) {
        return fail(line_number, cls.status().ToString());
      }
      kernel->labels().SetClearance(user->value, *cls);
    } else if (directive == "officer") {
      if (tokens.size() != 2) {
        return fail(line_number, "officer needs exactly one name");
      }
      auto id = principal_by_name(tokens[1]);
      if (!id.ok()) {
        return fail(line_number, "unknown principal in officer directive");
      }
      kernel->monitor().set_security_officer(*id);
    } else if (directive == "node") {
      if (tokens.size() != 4) {
        return fail(line_number, "node needs <path> <kind> <owner>");
      }
      auto kind = KindByName(tokens[2]);
      if (!kind.ok()) {
        return fail(line_number, kind.status().ToString());
      }
      auto owner = principal_by_name(tokens[3]);
      if (!owner.ok()) {
        return fail(line_number, "unknown owner in node directive");
      }
      auto existing = kernel->name_space().Lookup(tokens[1]);
      if (existing.ok()) {
        // Re-using a pre-existing node (a service registered at boot, say) is
        // fine, but only if it is the kind the policy says it is. Silently
        // keeping a mismatched kind would give the loaded policy a different
        // shape than the one that was serialized.
        const Node* n = kernel->name_space().Get(*existing);
        if (n->kind != *kind) {
          return fail(line_number,
                      StrFormat("node '%s' already exists as %s, policy says %s",
                                tokens[1].c_str(), std::string(NodeKindName(n->kind)).c_str(),
                                std::string(NodeKindName(*kind)).c_str()));
        }
        (void)kernel->name_space().SetOwner(*existing, *owner);
      } else {
        auto node = kernel->name_space().BindPath(tokens[1], *kind, *owner);
        if (!node.ok()) {
          return fail(line_number, node.status().ToString());
        }
      }
    } else if (directive == "label") {
      if (tokens.size() < 3) {
        return fail(line_number, "label needs <path> <level> [<cat>...]");
      }
      auto node = kernel->name_space().Lookup(tokens[1]);
      if (!node.ok()) {
        return fail(line_number, "label names an unknown node");
      }
      std::vector<std::string> cats(tokens.begin() + 3, tokens.end());
      auto cls = kernel->labels().MakeClass(tokens[2], cats);
      if (!cls.ok()) {
        return fail(line_number, cls.status().ToString());
      }
      const Node* n = kernel->name_space().Get(*node);
      if (n->label_ref != kNoRef) {
        (void)kernel->labels().ReplaceLabel(n->label_ref, *cls);
      } else {
        (void)kernel->name_space().SetLabelRef(*node, kernel->labels().StoreLabel(*cls));
      }
    } else if (directive == "acl") {
      if (tokens.size() != 5 && !(tokens.size() == 3 && tokens[2] == "none")) {
        return fail(line_number, "acl needs <path> allow|deny <principal> <modes>, or none");
      }
      auto node = kernel->name_space().Lookup(tokens[1]);
      if (!node.ok()) {
        return fail(line_number, "acl names an unknown node");
      }
      if (tokens.size() == 3) {
        // "acl <path> none": install an explicit empty own ACL.
        const Node* n = kernel->name_space().Get(*node);
        acl_reset.insert(tokens[1]);
        if (n->acl_ref != kNoRef) {
          (void)kernel->acls().Replace(n->acl_ref, Acl());
        } else {
          (void)kernel->name_space().SetAclRef(*node, kernel->acls().Create(Acl()));
        }
        continue;
      }
      AclEntryType type;
      if (tokens[2] == "allow") {
        type = AclEntryType::kAllow;
      } else if (tokens[2] == "deny") {
        type = AclEntryType::kDeny;
      } else {
        return fail(line_number, "acl polarity must be allow or deny");
      }
      auto who = principal_by_name(tokens[3]);
      if (!who.ok()) {
        return fail(line_number, "unknown principal in acl directive");
      }
      auto modes = AccessModeSet::Parse(tokens[4]);
      if (!modes.ok()) {
        return fail(line_number, modes.status().ToString());
      }
      const Node* n = kernel->name_space().Get(*node);
      AclEntry entry{type, *who, *modes};
      if (acl_reset.insert(tokens[1]).second) {
        // First acl directive for this path: replace the node's own ACL.
        Acl fresh;
        fresh.AddEntry(entry);
        if (n->acl_ref != kNoRef) {
          (void)kernel->acls().Replace(n->acl_ref, std::move(fresh));
        } else {
          (void)kernel->name_space().SetAclRef(*node, kernel->acls().Create(std::move(fresh)));
        }
      } else {
        (void)kernel->acls().AddEntry(n->acl_ref, entry);
      }
    } else {
      return fail(line_number, StrFormat("unknown directive '%s'", directive.c_str()));
    }
  }
  if (!saw_header) {
    return InvalidArgumentError("empty policy: missing 'xsec-policy v1' header");
  }
  return OkStatus();
}

}  // namespace

Status LoadPolicy(std::string_view text, Kernel* kernel) {
  Status status = LoadPolicyImpl(text, kernel);
  // Unconditionally mark the reload, success or failure: directives are
  // applied as they parse, so even a failed load may have mutated policy —
  // and some directives (officer) bump no store stamp at all. The epoch
  // bump invalidates every cached decision and any compiled tables, closing
  // the hole where an allow cached against the pre-reload policy survived
  // the swap.
  kernel->monitor().NotePolicyReload();
  return status;
}

namespace {

constexpr std::string_view kChecksumPrefix = "# xsec-checksum ";

uint64_t Fnv1a64(std::string_view text) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string ChecksumTrailer(std::string_view body) {
  return StrFormat("%s%016llx\n", std::string(kChecksumPrefix).c_str(),
                   static_cast<unsigned long long>(Fnv1a64(body)));
}

// True iff `text` ends with a checksum trailer that matches the bytes before
// it. A torn write loses the trailer (it is written last), so this is the
// integrity test LoadPolicyFile uses to tell an intact file from wreckage.
bool ChecksumValid(std::string_view text) {
  size_t line_start = text.rfind('\n', text.size() >= 2 ? text.size() - 2 : 0);
  line_start = line_start == std::string_view::npos ? 0 : line_start + 1;
  std::string_view last_line = text.substr(line_start);
  if (!StartsWith(last_line, kChecksumPrefix)) {
    return false;
  }
  return std::string(last_line) == ChecksumTrailer(text.substr(0, line_start));
}

StatusOr<std::string> SlurpFile(const std::string& path) {
  XSEC_FAILPOINT("policy.io.read");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFoundError(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return text;
}

}  // namespace

Status SavePolicyFile(Kernel& kernel, const std::string& path) {
  auto text = SerializePolicy(kernel);
  if (!text.ok()) {
    return text.status();
  }
  std::string body = *text + ChecksumTrailer(*text);
  const std::string tmp = path + ".tmp";
  const std::string bak = path + ".bak";

  XSEC_FAILPOINT("policy.io.open");
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return InternalError(StrFormat("cannot open '%s' for writing", tmp.c_str()));
  }
  // The failpoint splits the write in two so an injected failure leaves a
  // genuinely torn temp file (first half flushed, trailer missing) — the
  // shape a real mid-write crash produces.
  size_t half = body.size() / 2;
  bool ok = std::fwrite(body.data(), 1, half, f) == half;
  std::fflush(f);
  if (XSEC_FAILPOINT_FIRED("policy.io.write")) {
    std::fclose(f);
    return InternalError(StrFormat("write of '%s' failed mid-stream", tmp.c_str()));
  }
  ok = ok && std::fwrite(body.data() + half, 1, body.size() - half, f) == body.size() - half;
  std::fflush(f);
  // fsync before the rename: the atomic-rename guarantee is only as good as
  // the temp file's bytes being on disk first.
  ok = ok && fsync(fileno(f)) == 0;
  std::fclose(f);
  if (!ok) {
    return InternalError(StrFormat("write of '%s' failed", tmp.c_str()));
  }
  // Keep the previous version as the fallback the loader recovers from if
  // we die between the two renames. Failure is fine on the first save.
  (void)std::rename(path.c_str(), bak.c_str());
  if (XSEC_FAILPOINT_FIRED("policy.io.commit")) {
    return InternalError(
        StrFormat("crashed before committing '%s' (previous policy at '%s')", path.c_str(),
                  bak.c_str()));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return InternalError(StrFormat("cannot rename '%s' into place", tmp.c_str()));
  }
  return OkStatus();
}

Status LoadPolicyFile(const std::string& path, Kernel* kernel, std::string* loaded_from) {
  for (const std::string& candidate : {path, path + ".bak"}) {
    auto text = SlurpFile(candidate);
    if (!text.ok()) {
      continue;  // missing/unreadable: try the fallback
    }
    if (!ChecksumValid(*text)) {
      continue;  // torn or tampered: try the fallback
    }
    // The trailer is a '#' comment, so LoadPolicy parses the file as-is. A
    // checksum-valid file that fails to load is a real error, not a reason
    // to silently fall back to older policy.
    XSEC_RETURN_IF_ERROR(LoadPolicy(*text, kernel));
    if (loaded_from != nullptr) {
      *loaded_from = candidate;
    }
    return OkStatus();
  }
  return NotFoundError(
      StrFormat("no intact policy at '%s' or '%s.bak'", path.c_str(), path.c_str()));
}

}  // namespace xsec
