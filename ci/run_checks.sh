#!/usr/bin/env bash
# Full verification sweep: a Release build plus two sanitized builds, the
# test suite under each, and the F1/F11 mediation figures as JSON.
#
#   ci/run_checks.sh [--quick]
#
# --quick restricts the sanitizer ctest runs to the monitor + concurrency
# tests (the multithreaded surface, including the striped MonitorStats
# counters and the mediated StatsService tree) plus the policy round-trip
# tests; the default runs everything everywhere.
#
# Outputs:
#   build-release/   optimized build, full ctest
#   build-tsan/      -fsanitize=thread, ctest (races fail the run)
#   build-asan/      -fsanitize=address,undefined, ctest
#   BENCH_f1.json    bench_f1_mediation results (per-call overhead; the
#                    Cached vs Cached_NoStats delta is the stats budget,
#                    gated against ci/bench_f1_baseline.json by
#                    ci/check_bench_f1.py — >10% ratio regression fails)
#   BENCH_f11.json   bench_f11_parallel results from the release build

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc)"
QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

run_ctest() {
  local dir="$1"
  if [[ "$QUICK" == 1 ]]; then
    (cd "$dir" && ctest --output-on-failure -j "$JOBS" \
        -R 'MonitorConcurrency|DecisionCache|ReferenceMonitor|AuditLog|NdjsonRotation|MonitorStats|StatsService|StatsSnapshot|StatsWatch|PolicyIo|PolicyRoundTrip')
  else
    (cd "$dir" && ctest --output-on-failure -j "$JOBS")
  fi
}

echo "== Release build =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "$JOBS"
(cd build-release && ctest --output-on-failure -j "$JOBS")

echo "== ThreadSanitizer build =="
cmake -B build-tsan -S . -DXSEC_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$JOBS"
run_ctest build-tsan

echo "== AddressSanitizer + UBSan build =="
cmake -B build-asan -S . -DXSEC_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "$JOBS"
run_ctest build-asan

echo "== F1: per-call mediation overhead =="
./build-release/bench/bench_f1_mediation \
    --benchmark_out=BENCH_f1.json --benchmark_out_format=json \
    --benchmark_min_time=0.25 --benchmark_repetitions=3

echo "== F1 regression gate (stats overhead ratio vs committed baseline) =="
python3 ci/check_bench_f1.py BENCH_f1.json ci/bench_f1_baseline.json

echo "== F11: parallel mediation throughput =="
./build-release/bench/bench_f11_parallel \
    --benchmark_out=BENCH_f11.json --benchmark_out_format=json \
    --benchmark_min_time=0.1s

echo "All checks passed. Figure data in BENCH_f1.json and BENCH_f11.json."
