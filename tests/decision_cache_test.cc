#include "src/monitor/decision_cache.h"

#include <gtest/gtest.h>

namespace xsec {
namespace {

Subject MakeSubject(uint32_t principal, TrustLevel level = 0) {
  return Subject{PrincipalId{principal}, SecurityClass(level, CategorySet(4)), 1};
}

TEST(DecisionCacheTest, MissThenHit) {
  DecisionCache cache(64);
  Subject s = MakeSubject(1);
  CacheStamps stamps{1, 1, 1, 1};
  DecisionCache::CachedDecision out;
  EXPECT_FALSE(cache.Lookup(s, NodeId{5}, AccessMode::kRead, stamps, &out));
  cache.Insert(s, NodeId{5}, AccessMode::kRead, stamps, {true, DenyReason::kNone});
  ASSERT_TRUE(cache.Lookup(s, NodeId{5}, AccessMode::kRead, stamps, &out));
  EXPECT_TRUE(out.allowed);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(DecisionCacheTest, StaleStampsInvalidate) {
  DecisionCache cache(64);
  Subject s = MakeSubject(1);
  CacheStamps old_stamps{1, 1, 1, 1};
  cache.Insert(s, NodeId{5}, AccessMode::kRead, old_stamps, {true, DenyReason::kNone});
  CacheStamps new_stamps{2, 1, 1, 1};  // namespace changed
  DecisionCache::CachedDecision out;
  EXPECT_FALSE(cache.Lookup(s, NodeId{5}, AccessMode::kRead, new_stamps, &out));
  EXPECT_EQ(cache.stale_hits(), 1u);
  // And the slot is vacated: a second lookup with the old stamps also misses.
  EXPECT_FALSE(cache.Lookup(s, NodeId{5}, AccessMode::kRead, old_stamps, &out));
}

TEST(DecisionCacheTest, EachStampComponentMatters) {
  Subject s = MakeSubject(1);
  CacheStamps base{5, 6, 7, 8};
  for (int which = 0; which < 4; ++which) {
    DecisionCache cache(64);
    cache.Insert(s, NodeId{9}, AccessMode::kList, base, {true, DenyReason::kNone});
    CacheStamps changed = base;
    switch (which) {
      case 0:
        changed.namespace_generation++;
        break;
      case 1:
        changed.acl_generation++;
        break;
      case 2:
        changed.membership_epoch++;
        break;
      case 3:
        changed.label_epoch++;
        break;
    }
    DecisionCache::CachedDecision out;
    EXPECT_FALSE(cache.Lookup(s, NodeId{9}, AccessMode::kList, changed, &out)) << which;
  }
}

TEST(DecisionCacheTest, KeyIncludesPrincipalNodeModesAndClass) {
  DecisionCache cache(1u << 12);
  CacheStamps stamps{1, 1, 1, 1};
  Subject s1 = MakeSubject(1);
  cache.Insert(s1, NodeId{5}, AccessMode::kRead, stamps, {true, DenyReason::kNone});

  DecisionCache::CachedDecision out;
  // Different principal.
  EXPECT_FALSE(cache.Lookup(MakeSubject(2), NodeId{5}, AccessMode::kRead, stamps, &out));
  // Different node.
  EXPECT_FALSE(cache.Lookup(s1, NodeId{6}, AccessMode::kRead, stamps, &out));
  // Different modes.
  EXPECT_FALSE(cache.Lookup(s1, NodeId{5}, AccessMode::kWrite, stamps, &out));
  // Different security class (same principal).
  EXPECT_FALSE(cache.Lookup(MakeSubject(1, 2), NodeId{5}, AccessMode::kRead, stamps, &out));
  // Original still present.
  EXPECT_TRUE(cache.Lookup(s1, NodeId{5}, AccessMode::kRead, stamps, &out));
}

TEST(DecisionCacheTest, CachesDenialsToo) {
  DecisionCache cache(64);
  Subject s = MakeSubject(1);
  CacheStamps stamps{1, 1, 1, 1};
  cache.Insert(s, NodeId{5}, AccessMode::kWrite, stamps,
               {false, DenyReason::kDacExplicitDeny});
  DecisionCache::CachedDecision out;
  ASSERT_TRUE(cache.Lookup(s, NodeId{5}, AccessMode::kWrite, stamps, &out));
  EXPECT_FALSE(out.allowed);
  EXPECT_EQ(out.reason, DenyReason::kDacExplicitDeny);
}

TEST(DecisionCacheTest, ClearEmptiesEverySlot) {
  DecisionCache cache(64);
  Subject s = MakeSubject(1);
  CacheStamps stamps{1, 1, 1, 1};
  for (uint32_t n = 0; n < 32; ++n) {
    cache.Insert(s, NodeId{n}, AccessMode::kRead, stamps, {true, DenyReason::kNone});
  }
  cache.Clear();
  DecisionCache::CachedDecision out;
  for (uint32_t n = 0; n < 32; ++n) {
    EXPECT_FALSE(cache.Lookup(s, NodeId{n}, AccessMode::kRead, stamps, &out));
  }
}

// Multiplicative inverse of an odd m modulo 2^64 (Newton iteration).
uint64_t Inv64(uint64_t m) {
  uint64_t x = m;
  for (int i = 0; i < 6; ++i) {
    x *= 2 - m * x;
  }
  return x;
}

// Regression for the hash-aliasing soundness bug: two subjects whose
// security classes are different but whose 64-bit class hashes collide must
// not share a cache entry. The seed implementation matched slots by class
// *hash* alone, so the second subject read the first subject's cached
// decision. The colliding class is constructed analytically from the FNV
// constants; no luck required.
TEST(DecisionCacheTest, HashCollidingClassesDoNotAlias) {
  constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
  constexpr uint64_t kFnvPrime = 1099511628211ULL;

  // Class A: level 1, no categories. Hash = kFnvOffset * 31 + 1.
  SecurityClass a(1, CategorySet(64));

  // Class B: level 0, one significant category word w chosen so that
  // (kFnvOffset ^ w) * kFnvPrime * 31 == kFnvOffset * 31 + 1 (mod 2^64).
  uint64_t target = kFnvOffset * 31 + 1;
  uint64_t w = kFnvOffset ^ (target * Inv64(kFnvPrime * 31));
  ASSERT_NE(w, 0u);  // w must be a significant word
  CategorySet cats(64);
  for (size_t bit = 0; bit < 64; ++bit) {
    if ((w >> bit) & 1) {
      cats.Set(bit);
    }
  }
  SecurityClass b(0, std::move(cats));

  ASSERT_EQ(a.Hash(), b.Hash());
  ASSERT_FALSE(a == b);

  DecisionCache cache(64);
  CacheStamps stamps{1, 1, 1, 1};
  Subject cleared{PrincipalId{1}, a, 1};
  Subject uncleared{PrincipalId{1}, b, 1};
  cache.Insert(cleared, NodeId{5}, AccessMode::kRead, stamps, {true, DenyReason::kNone});

  DecisionCache::CachedDecision out;
  EXPECT_FALSE(cache.Lookup(uncleared, NodeId{5}, AccessMode::kRead, stamps, &out))
      << "a colliding class hash must not alias to another subject's decision";
  // The entry itself is intact for the real key.
  EXPECT_TRUE(cache.Lookup(cleared, NodeId{5}, AccessMode::kRead, stamps, &out));
}

// Counter invariant: every Lookup counts exactly one of {hit, miss}; a stale
// probe counts as a miss AND bumps the stale_hits sub-counter. Hence
// hits + misses == total probes and stale_hits <= misses, always.
TEST(DecisionCacheTest, ProbeAccountingInvariant) {
  DecisionCache cache(64);
  Subject s = MakeSubject(1);
  CacheStamps stamps{1, 1, 1, 1};
  DecisionCache::CachedDecision out;
  uint64_t probes = 0;

  // Cold miss.
  EXPECT_FALSE(cache.Lookup(s, NodeId{5}, AccessMode::kRead, stamps, &out));
  ++probes;
  // Fresh hit.
  cache.Insert(s, NodeId{5}, AccessMode::kRead, stamps, {true, DenyReason::kNone});
  EXPECT_TRUE(cache.Lookup(s, NodeId{5}, AccessMode::kRead, stamps, &out));
  ++probes;
  // Stale probe: counted as a miss AND a stale_hit, never double-counted.
  CacheStamps bumped{2, 1, 1, 1};
  EXPECT_FALSE(cache.Lookup(s, NodeId{5}, AccessMode::kRead, bumped, &out));
  ++probes;
  // Key mismatch miss.
  EXPECT_FALSE(cache.Lookup(MakeSubject(2), NodeId{5}, AccessMode::kRead, bumped, &out));
  ++probes;

  EXPECT_EQ(cache.hits() + cache.misses(), probes);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.stale_hits(), 1u);
  EXPECT_LE(cache.stale_hits(), cache.misses());
}

TEST(DecisionCacheTest, CollisionOverwrites) {
  // A 1-slot cache: every distinct key collides.
  DecisionCache cache(1);
  Subject s = MakeSubject(1);
  CacheStamps stamps{1, 1, 1, 1};
  cache.Insert(s, NodeId{1}, AccessMode::kRead, stamps, {true, DenyReason::kNone});
  cache.Insert(s, NodeId{2}, AccessMode::kRead, stamps, {false, DenyReason::kMacFlow});
  DecisionCache::CachedDecision out;
  EXPECT_FALSE(cache.Lookup(s, NodeId{1}, AccessMode::kRead, stamps, &out));
  ASSERT_TRUE(cache.Lookup(s, NodeId{2}, AccessMode::kRead, stamps, &out));
  EXPECT_FALSE(out.allowed);
}

}  // namespace
}  // namespace xsec
