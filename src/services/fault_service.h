// Mediated control plane for fault-injection failpoints (MODEL.md §12).
//
// Failpoints (src/base/failpoint.h) are process-wide named injection sites;
// this service makes them named, mediated objects like everything else in
// the system: each failpoint appears as a file node `/sys/faults/<name>`,
// and arming one is an `administrate` access on that node decided by the
// central reference monitor — which means it is ACL-governed, label-checked,
// counted, and audited exactly like any other administrative action. The
// fault surface of the system is itself inside the protection model: an
// attacker who cannot pass the monitor cannot turn on a fault, and every
// arm/disarm that does happen is in the audit trail.
//
// Default policy is fail-closed: the /sys/faults mount carries an own ACL
// granting read|list|administrate to the system principal only. Widening it
// (say, to a "chaos" group in a staging deployment) is an ordinary
// AddAclEntry call.
//
// Layout and procedures:
//
//   /sys/faults/<name>      one file node per failpoint, bound lazily on
//                           first arm/read of that name (failpoints are
//                           created on first use, so the tree reflects the
//                           sites the control plane has actually touched,
//                           plus any compiled-in site once listed)
//   /svc/faults/arm         args = [name, spec]; spec grammar is
//                           FailpointSpec::Parse ("error=internal,nth=3",
//                           "sleep=5ms", "off", ...); returns the
//                           failpoint's state string after arming
//   /svc/faults/read        args = [name]; the state string ("off" or the
//                           spec plus hit/fire counters)
//   /svc/faults/list        one "name state" line per registered failpoint
//
// tools/xsec_stats --fail <name>=<spec> drives /svc/faults/arm as the
// system subject.

#ifndef XSEC_SRC_SERVICES_FAULT_SERVICE_H_
#define XSEC_SRC_SERVICES_FAULT_SERVICE_H_

#include <string>
#include <string_view>

#include "src/extsys/kernel.h"

namespace xsec {

struct FaultServiceOptions {
  std::string mount_path = "/sys/faults";
  std::string service_path = "/svc/faults";
};

class FaultService {
 public:
  // The kernel must outlive this service.
  explicit FaultService(Kernel* kernel, FaultServiceOptions options = {});

  // Binds the /sys/faults mount (fail-closed, system-only ACL) and
  // registers the /svc/faults procedures.
  Status Install();

  const std::string& mount_path() const { return options_.mount_path; }
  const std::string& service_path() const { return options_.service_path; }

  // -- Mediated operations ----------------------------------------------------

  // Arms (or, for spec "off", disarms) the named failpoint after an
  // `administrate` check on /sys/faults/<name> — the check is the real
  // monitor path, so the decision is counted and audited. The node is bound
  // lazily on first use. Returns the failpoint's state string.
  StatusOr<std::string> Arm(Subject& subject, std::string_view name,
                            std::string_view spec);

  // Reads the named failpoint's state ("off" or spec + counters) after a
  // `read` check on its node.
  StatusOr<std::string> ReadFault(Subject& subject, std::string_view name);

  // Lists every registered failpoint, "name state" per line, after a `list`
  // check on the mount directory.
  StatusOr<std::string> List(Subject& subject);

 private:
  // Resolves /sys/faults/<name>, binding the file node on first use.
  StatusOr<NodeId> EnsureLeaf(std::string_view name);

  Kernel* kernel_;
  FaultServiceOptions options_;
};

}  // namespace xsec

#endif  // XSEC_SRC_SERVICES_FAULT_SERVICE_H_
