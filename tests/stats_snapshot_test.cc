// Tests for the snapshot + subscription layer of StatsService: the
// versioned /sys/monitor/snapshot rendering, the version leaf, the windowed
// rate leaves, and the /svc/stats watch long-poll.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/base/strings.h"
#include "src/core/secure_system.h"
#include "src/monitor/monitor_stats.h"
#include "src/services/stats_service.h"

namespace xsec {
namespace {

// "key value" per line -> map. Values stay strings (hit_rate and the rates
// are fixed-point decimals).
std::map<std::string, std::string> ParseSnapshot(const std::string& text) {
  std::map<std::string, std::string> out;
  for (const std::string& line : StrSplit(text, '\n', /*skip_empty=*/true)) {
    size_t sp = line.rfind(' ');
    if (sp == std::string::npos) {
      continue;
    }
    out[line.substr(0, sp)] = line.substr(sp + 1);
  }
  return out;
}

uint64_t Num(const std::map<std::string, std::string>& kv, const std::string& key) {
  auto it = kv.find(key);
  EXPECT_NE(it, kv.end()) << "missing snapshot key " << key;
  return it == kv.end() ? 0 : std::stoull(it->second);
}

uint64_t SumPrefix(const std::map<std::string, std::string>& kv, const std::string& prefix) {
  uint64_t total = 0;
  for (const auto& [key, value] : kv) {
    if (StartsWith(key, prefix)) {
      total += std::stoull(value);
    }
  }
  return total;
}

TEST(StatsSnapshotTest, SnapshotLeafRendersOneConsistentView) {
  SecureSystem sys;
  Subject system = sys.SystemSubject();
  for (int i = 0; i < 7; ++i) {
    (void)sys.monitor().Check(system, sys.name_space().root(), AccessMode::kList);
  }
  sys.stats().Tick();
  auto text = sys.stats().ReadStat(system, "/sys/monitor/snapshot");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto kv = ParseSnapshot(*text);
  EXPECT_GE(Num(kv, "version"), 1u);
  EXPECT_EQ(Num(kv, "reset_epoch"), 0u);
  uint64_t total = Num(kv, "/sys/monitor/checks/total");
  EXPECT_GE(total, 7u);
  EXPECT_EQ(Num(kv, "/sys/monitor/checks/allowed") + Num(kv, "/sys/monitor/checks/denied"),
            total);
  EXPECT_EQ(SumPrefix(kv, "/sys/monitor/denials/by-reason/"),
            Num(kv, "/sys/monitor/checks/denied"));
  EXPECT_GE(SumPrefix(kv, "/sys/monitor/checks/by-mode/"), total);
  // The fixed-point leaves render with a '.' radix and fixed precision.
  EXPECT_EQ(kv.at("/sys/monitor/cache/hit_rate").find('.'), 1u);
  EXPECT_EQ(kv.at("/sys/monitor/rate/checks_per_sec").rfind('.'),
            kv.at("/sys/monitor/rate/checks_per_sec").size() - 3);
}

TEST(StatsSnapshotTest, SnapshotIsExcludedFromDumpsButReadable) {
  SecureSystem sys;
  Subject system = sys.SystemSubject();
  auto dump = sys.stats().DumpTree(system);
  ASSERT_TRUE(dump.ok());
  // The multi-line snapshot leaf would corrupt the "path value" line format.
  EXPECT_EQ(dump->find("/sys/monitor/snapshot"), std::string::npos);
  EXPECT_NE(dump->find("/sys/monitor/version "), std::string::npos);
  EXPECT_NE(dump->find("/sys/monitor/rate/checks_per_sec "), std::string::npos);
  // Unprivileged subjects are denied the snapshot like any other leaf.
  auto bob = sys.CreateUser("bob");
  ASSERT_TRUE(bob.ok());
  Subject bob_s = sys.Login(*bob, sys.labels().Bottom());
  auto denied = sys.stats().ReadStat(bob_s, "/sys/monitor/snapshot");
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
}

TEST(StatsSnapshotTest, InvariantsHoldOnEverySnapshotUnderConcurrentChecking) {
  SecureSystem sys;
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    // Login mutates kernel state; take the subject before spawning.
    Subject subject = sys.Login(sys.system_principal(), sys.labels().Top());
    writers.emplace_back([&sys, &stop, subject]() mutable {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)sys.monitor().Check(subject, sys.name_space().root(), AccessMode::kList);
        (void)sys.monitor().Check(subject, NodeId{99'999}, AccessMode::kRead);
      }
    });
  }
  uint64_t last_version = 0;
  for (int i = 0; i < 300; ++i) {
    sys.stats().Tick();
    auto kv = ParseSnapshot(sys.stats().RenderSnapshot());
    uint64_t total = Num(kv, "/sys/monitor/checks/total");
    ASSERT_EQ(Num(kv, "/sys/monitor/checks/allowed") + Num(kv, "/sys/monitor/checks/denied"),
              total);
    ASSERT_EQ(SumPrefix(kv, "/sys/monitor/denials/by-reason/"),
              Num(kv, "/sys/monitor/checks/denied"));
    ASSERT_GE(SumPrefix(kv, "/sys/monitor/checks/by-mode/"), total);
    uint64_t version = Num(kv, "version");
    ASSERT_GE(version, last_version);  // versions are monotone
    last_version = version;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : writers) {
    th.join();
  }
}

TEST(StatsSnapshotTest, VersionAdvancesOnlyWhenCountersChange) {
  Kernel kernel;
  StatsServiceOptions options;
  options.epoch_interval_ns = uint64_t{3600} * 1'000'000'000;  // no auto refresh
  StatsService stats(&kernel, options);
  ASSERT_TRUE(stats.Install().ok());
  uint64_t v0 = stats.version();
  EXPECT_GE(v0, 1u);  // Install publishes the boot-time state
  // Quiescent ticks publish nothing new.
  EXPECT_EQ(stats.Tick(), v0);
  EXPECT_EQ(stats.Tick(), v0);
  // Any counter movement (even a denial) is a new version.
  Subject subject = kernel.SystemSubject();
  (void)kernel.monitor().Check(subject, kernel.name_space().root(), AccessMode::kList);
  EXPECT_EQ(stats.Tick(), v0 + 1);
  EXPECT_EQ(stats.Tick(), v0 + 1);
}

TEST(StatsSnapshotTest, VersionLeafDoesNotSelfRefresh) {
  Kernel kernel;
  StatsServiceOptions options;
  options.epoch_interval_ns = uint64_t{3600} * 1'000'000'000;
  StatsService stats(&kernel, options);
  ASSERT_TRUE(stats.Install().ok());
  Subject subject = kernel.SystemSubject();
  auto v_before = stats.ReadStat(subject, "/sys/monitor/version");
  ASSERT_TRUE(v_before.ok()) << v_before.status().ToString();
  // The reads above moved counters, but nothing re-published: the version
  // leaf answers "what was last published", so staleness is observable.
  auto v_after = stats.ReadStat(subject, "/sys/monitor/version");
  ASSERT_TRUE(v_after.ok());
  EXPECT_EQ(*v_before, *v_after);
  stats.Tick();
  auto v_ticked = stats.ReadStat(subject, "/sys/monitor/version");
  ASSERT_TRUE(v_ticked.ok());
  EXPECT_EQ(std::stoull(*v_ticked), std::stoull(*v_after) + 1);
}

TEST(StatsSnapshotTest, ResetClearsTheRateWindow) {
  SecureSystem sys;
  Subject system = sys.SystemSubject();
  for (int i = 0; i < 50; ++i) {
    (void)sys.monitor().Check(system, sys.name_space().root(), AccessMode::kList);
  }
  sys.stats().Tick();
  sys.monitor().stats().Reset();
  sys.stats().Tick();  // cumulative counters went backwards: window restarts
  auto kv = ParseSnapshot(sys.stats().RenderSnapshot());
  EXPECT_GE(Num(kv, "reset_epoch"), 1u);
  // A one-entry (restarted) window reports 0.00 rather than a bogus delta.
  EXPECT_EQ(kv.at("/sys/monitor/rate/checks_per_sec"), "0.00");
}

// Regression for the RCU publication rule: the version leaf and the snapshot
// leaf read the SAME atomically swapped epoch pointer, so a reader that just
// rendered a snapshot can never then read a version OLDER than the one inside
// that snapshot — even while a publisher races new epochs in.
TEST(StatsSnapshotTest, VersionLeafNeverLagsARenderedSnapshot) {
  SecureSystem sys;
  Subject system = sys.SystemSubject();
  std::atomic<bool> stop{false};
  std::thread publisher([&sys, &stop] {
    Subject s = sys.SystemSubject();
    while (!stop.load(std::memory_order_relaxed)) {
      (void)sys.monitor().Check(s, sys.name_space().root(), AccessMode::kList);
      sys.stats().Tick();
    }
  });
  for (int i = 0; i < 300; ++i) {
    auto snapshot = sys.stats().ReadStat(system, "/sys/monitor/snapshot");
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    uint64_t rendered = Num(ParseSnapshot(*snapshot), "version");
    auto version = sys.stats().ReadStat(system, "/sys/monitor/version");
    ASSERT_TRUE(version.ok()) << version.status().ToString();
    EXPECT_GE(std::stoull(*version), rendered)
        << "version leaf went backwards relative to a rendered snapshot";
  }
  stop.store(true, std::memory_order_relaxed);
  publisher.join();
}

// The reset-era bugfix's nasty half: after a Reset the cumulative counters
// can GROW PAST their pre-reset values, so "newer >= older" no longer proves
// same-era — the ring must drop other-era epochs by reset_epoch stamp, not by
// value comparison, or the rate becomes a cross-era garbage delta.
TEST(StatsSnapshotTest, RateWindowDropsPreResetEpochsEvenWhenCountersGrowPast) {
  SecureSystem sys;
  Subject system = sys.SystemSubject();
  for (int i = 0; i < 50; ++i) {
    (void)sys.monitor().Check(system, sys.name_space().root(), AccessMode::kList);
  }
  sys.stats().Tick();  // ring holds an era-0 epoch with checks ~= 50
  sys.monitor().stats().Reset();
  // Era 1: more checks than era 0 ever saw, so the new cumulative value is
  // larger than the ringed era-0 one and a naive delta would be "valid".
  for (int i = 0; i < 80; ++i) {
    (void)sys.monitor().Check(system, sys.name_space().root(), AccessMode::kList);
  }
  sys.stats().Tick();
  auto kv = ParseSnapshot(sys.stats().RenderSnapshot());
  EXPECT_GE(Num(kv, "reset_epoch"), 1u);
  // The era-0 epoch was dropped, leaving a one-entry window: 0.00, not the
  // ~(80-50)/dt cross-era delta.
  EXPECT_EQ(kv.at("/sys/monitor/rate/checks_per_sec"), "0.00");
  EXPECT_EQ(kv.at("/sys/monitor/rate/denials_per_sec"), "0.00");
}

// A user who may call /svc/stats/* (the /svc default covers everyone) and
// holds read|list on the stats mount, so the watch admission check passes.
Subject LoginAuditor(SecureSystem& sys) {
  auto auditor = sys.CreateUser("auditor");
  EXPECT_TRUE(auditor.ok());
  NodeId mount = *sys.name_space().Lookup("/sys/monitor");
  EXPECT_TRUE(sys.monitor()
                  .AddAclEntry(sys.SystemSubject(), mount,
                               {AclEntryType::kAllow, *auditor,
                                AccessMode::kRead | AccessMode::kList})
                  .ok());
  return sys.Login(*auditor, sys.labels().Bottom());
}

TEST(StatsWatchTest, WatchUnblocksWithinOneEpochOfAChange) {
  SecureSystem sys;  // default 20ms epoch, no background publisher
  Subject watcher = LoginAuditor(sys);
  StatusOr<Value> result = InvalidArgumentError("not run");
  std::thread blocked([&sys, &watcher, &result] {
    // since = -1: baseline past this watch's own admission check, then block
    // until the next external change.
    result = sys.Invoke(watcher, "/svc/stats/watch",
                        {Value{int64_t{-1}}, Value{int64_t{10'000}}});
  });
  // Give the watcher time to enter its wait, then move a counter.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  Subject system = sys.SystemSubject();
  (void)sys.monitor().Check(system, sys.name_space().root(), AccessMode::kList);
  blocked.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(std::holds_alternative<std::string>(*result));
  auto kv = ParseSnapshot(std::get<std::string>(*result));
  EXPECT_GE(Num(kv, "version"), 2u);
  EXPECT_GE(Num(kv, "/sys/monitor/checks/total"), 1u);
}

TEST(StatsWatchTest, WatchTimesOutWhenNothingChanges) {
  SecureSystem sys;
  Subject watcher = LoginAuditor(sys);
  // since = -1 baselines a fresh publication that folds in the watch's own
  // admission check; with the system otherwise quiescent no further version
  // can be published, so the watch rides out its full timeout.
  auto start = std::chrono::steady_clock::now();
  auto result = sys.Invoke(watcher, "/svc/stats/watch",
                           {Value{int64_t{-1}}, Value{int64_t{50}}});
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 45);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 5000);
}

TEST(StatsWatchTest, CallDeadlineCapsTheWatchTimeout) {
  SecureSystem sys;
  Subject watcher = LoginAuditor(sys);
  CallOptions options;
  options.deadline_ns = MonotonicNowNs() + 50'000'000;  // 50ms, well under 10s
  auto start = std::chrono::steady_clock::now();
  auto result = sys.Invoke(watcher, "/svc/stats/watch",
                           {Value{int64_t{-1}}, Value{int64_t{10'000}}}, options);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 5000);
}

TEST(StatsWatchTest, StaleSinceReturnsTheCurrentSnapshotImmediately) {
  SecureSystem sys;
  Subject watcher = LoginAuditor(sys);
  // A version far past anything published is a handle from a previous era
  // (e.g. from before a service restart): the watch answers with the current
  // snapshot at once instead of parking until the timeout.
  uint64_t stale = uint64_t{1} << 40;
  auto start = std::chrono::steady_clock::now();
  auto result = sys.Invoke(watcher, "/svc/stats/watch",
                           {Value{static_cast<int64_t>(stale)}, Value{int64_t{10'000}}});
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_NE(std::get<std::string>(*result).find("version "), std::string::npos);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 5000);
}

TEST(StatsWatchTest, NonPositiveTimeoutIsRejected) {
  SecureSystem sys;
  Subject watcher = LoginAuditor(sys);
  auto zero = sys.Invoke(watcher, "/svc/stats/watch", {Value{int64_t{-1}}, Value{int64_t{0}}});
  EXPECT_EQ(zero.status().code(), StatusCode::kInvalidArgument);
  auto negative =
      sys.Invoke(watcher, "/svc/stats/watch", {Value{int64_t{-1}}, Value{int64_t{-5}}});
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatsWatchTest, SinceBelowMinusOneIsRejected) {
  SecureSystem sys;
  Subject watcher = LoginAuditor(sys);
  auto result = sys.Invoke(watcher, "/svc/stats/watch", {Value{int64_t{-2}}});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatsWatchTest, WatchIsDeniedForUnprivilegedSubjects) {
  SecureSystem sys;
  auto bob = sys.CreateUser("bob");
  ASSERT_TRUE(bob.ok());
  Subject bob_s = sys.Login(*bob, sys.labels().Bottom());
  // The admission check runs before blocking: a subject that may not read
  // the snapshot is rejected immediately, not parked until the timeout.
  auto start = std::chrono::steady_clock::now();
  auto result = sys.Invoke(bob_s, "/svc/stats/watch",
                           {Value{int64_t{-1}}, Value{int64_t{10'000}}});
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 5000);
}

TEST(StatsSnapshotTest, ResetLateIncrementSlackIsBoundedAndEqualityExact) {
  // docs/MODEL.md §11 caveat: Reset() is a seqlock against *readers*, not
  // writers — a writer mid-RecordDecision when a reset lands may split its
  // mode bump and reason bump across the zeroing. That slackens only the
  // `>=` inequalities, by at most one in-flight decision per writer per
  // reset; the derived equality allowed + denied == checks_total can never
  // break (checks_total IS the reason-bucket sum). This pins both halves:
  // the equality under a reset storm, and the quiescent slack bound.
  constexpr int kWriters = 4;
  constexpr int kDecisionsPerWriter = 50'000;
  constexpr int kResets = 64;

  MonitorStats stats;
  std::atomic<bool> start{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kDecisionsPerWriter; ++i) {
        stats.RecordDecision(AccessModeSet(AccessMode::kRead),
                             (i + w) % 3 == 0 ? DenyReason::kDacNoGrant : DenyReason::kNone);
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (int r = 0; r < kResets; ++r) {
    stats.Reset();
    // Mid-storm snapshots: the equality must hold on every one.
    MonitorStats::Snapshot snap = stats.TakeSnapshot();
    ASSERT_EQ(snap.allowed + snap.denied, snap.checks_total);
    uint64_t reason_sum = 0;
    for (size_t i = 0; i < kDenyReasonCount; ++i) {
      reason_sum += snap.by_reason[i];
    }
    ASSERT_EQ(reason_sum, snap.checks_total);
    std::this_thread::yield();
  }
  for (std::thread& t : writers) {
    t.join();
  }

  // Quiescent: totals are exact up to the documented slack. Each reset can
  // strand at most one straddling decision per writer (single-mode here),
  // in either direction depending on which half of the bump the zeroing
  // caught, so the mode/check divergence is bounded by resets * writers.
  MonitorStats::Snapshot snap = stats.TakeSnapshot();
  EXPECT_EQ(snap.reset_epoch, static_cast<uint64_t>(kResets));
  EXPECT_EQ(snap.allowed + snap.denied, snap.checks_total);
  int64_t slack = static_cast<int64_t>(snap.ModeTotal()) - static_cast<int64_t>(snap.checks_total);
  EXPECT_LE(slack < 0 ? -slack : slack, int64_t{kResets} * kWriters)
      << "ModeTotal=" << snap.ModeTotal() << " checks_total=" << snap.checks_total;
  // Writers recorded kWriters * kDecisionsPerWriter decisions total; the
  // final epoch holds whatever survived the last reset, never more.
  EXPECT_LE(snap.checks_total, uint64_t{kWriters} * kDecisionsPerWriter);
}

TEST(StatsWatchTest, BackgroundPublisherAdvancesVersionsUnaided) {
  Kernel kernel;
  StatsServiceOptions options;
  options.epoch_interval_ns = 5'000'000;  // 5ms
  options.background_publisher = true;
  {
    StatsService stats(&kernel, options);
    ASSERT_TRUE(stats.Install().ok());
    uint64_t v0 = stats.version();
    Subject subject = kernel.SystemSubject();
    (void)kernel.monitor().Check(subject, kernel.name_space().root(), AccessMode::kList);
    // No explicit Tick: the publisher thread must fold the change in.
    uint64_t deadline = MonotonicNowNs() + uint64_t{5} * 1'000'000'000;
    while (stats.version() == v0 && MonotonicNowNs() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GT(stats.version(), v0);
  }  // the destructor must stop and join the publisher cleanly
}

}  // namespace
}  // namespace xsec
