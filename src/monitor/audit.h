// The audit log. The paper lists "auditing of security relevant system
// events" among the concerns a complete security model must address (§1);
// here every access decision can be recorded, under a configurable policy.
// Experiment F7 measures the cost of each policy.

#ifndef XSEC_SRC_MONITOR_AUDIT_H_
#define XSEC_SRC_MONITOR_AUDIT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/dac/access_mode.h"
#include "src/naming/namespace.h"
#include "src/principal/principal.h"

namespace xsec {

enum class AuditPolicy : uint8_t {
  kOff = 0,
  kDenialsOnly,
  kAll,
};

enum class DenyReason : uint8_t {
  kNone = 0,          // allowed
  kNotFound,          // target (or an ancestor) does not exist
  kTraversal,         // denied while resolving an ancestor
  kDacExplicitDeny,   // a negative ACL entry matched
  kDacNoGrant,        // no positive ACL entry covered the request
  kMacFlow,           // the lattice flow rules forbid the access
  kNotAuthorized,     // administrative operation without administrate rights
};

std::string_view DenyReasonName(DenyReason reason);

struct AuditRecord {
  uint64_t sequence = 0;
  PrincipalId principal;
  uint64_t thread_id = 0;
  NodeId node;
  std::string path;          // resolved path, or the requested one on kNotFound
  AccessModeSet modes;
  bool allowed = false;
  DenyReason reason = DenyReason::kNone;
  std::string detail;        // human-readable explanation

  std::string ToString() const;
};

class AuditLog {
 public:
  explicit AuditLog(size_t capacity = 4096) : capacity_(capacity) {}

  void set_policy(AuditPolicy policy) { policy_ = policy; }
  AuditPolicy policy() const { return policy_; }

  // Records a decision if the policy asks for it. Counters are maintained
  // regardless of policy.
  void Record(AuditRecord record);

  // True iff the current policy would retain a record with this outcome.
  // Callers use this to skip building record text (path strings) that would
  // be thrown away; if it returns false they call Count() instead.
  bool WouldRetain(bool allowed) const {
    return policy_ == AuditPolicy::kAll || (policy_ == AuditPolicy::kDenialsOnly && !allowed);
  }

  // Maintains counters without retaining a record.
  void Count(bool allowed) {
    ++total_checks_;
    if (!allowed) {
      ++total_denials_;
    }
  }

  // Optional sink invoked for every retained record (e.g. a test collector).
  void set_sink(std::function<void(const AuditRecord&)> sink) { sink_ = std::move(sink); }

  // Retained records, oldest first.
  const std::deque<AuditRecord>& records() const { return records_; }

  // Records matching a predicate.
  std::vector<AuditRecord> Query(const std::function<bool(const AuditRecord&)>& pred) const;

  uint64_t total_checks() const { return total_checks_; }
  uint64_t total_denials() const { return total_denials_; }
  uint64_t dropped() const { return dropped_; }

  void Clear();

 private:
  size_t capacity_;
  AuditPolicy policy_ = AuditPolicy::kDenialsOnly;
  std::deque<AuditRecord> records_;
  std::function<void(const AuditRecord&)> sink_;
  uint64_t next_sequence_ = 0;
  uint64_t total_checks_ = 0;
  uint64_t total_denials_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace xsec

#endif  // XSEC_SRC_MONITOR_AUDIT_H_
