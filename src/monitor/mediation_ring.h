// Shared-ring batched mediation transport (MODEL.md §14, DESIGN.md
// "Mediation transport").
//
// Every boundary crossing in the paper's model is a mediated check, so the
// per-call cost of ReferenceMonitor::Check is the system's tax rate. This
// module amortizes it the way exception-less syscall designs (XSC/FlexSC)
// amortize the kernel boundary: instead of calling the monitor, callers
// enqueue requests into a per-shard bounded submission ring, dedicated
// worker threads drain the rings in batches and decide each batch with ONE
// ReferenceMonitor::CheckBatch pass (one stamp read, one stats flush, one
// audit stamping section per batch), and results post to a per-caller
// completion queue supporting blocking wait with CallOptions deadlines and
// cooperative cancellation.
//
// Flow control is credit-based at both ends, and both ends FAIL FAST:
//   - submission: each shard's CreditRing bounds in-flight work; a stalled
//     worker exhausts the shard's credits and further submissions return
//     kResourceExhausted immediately (never block) — other shards are
//     unaffected;
//   - completion: each Client reserves a completion credit at submit time,
//     so the worker can always post without blocking; a caller that stops
//     draining its completions exhausts only its own credits and gets
//     kResourceExhausted on its next submit.
// Back-pressure is therefore always an error the caller sees at submit, and
// the worker can never be wedged by a full queue anywhere.
//
// Async invoke rides on the same transport: SubmitInvoke carries a
// type-erased continuation the worker runs only when the batched execute
// decision allows — the monitor layer stays below the extension system, so
// the kernel's Value/Args never appear here.
//
// Ordering semantics (MODEL.md §14 is normative): requests on one shard are
// decided in submission order; requests on different shards, or admitted to
// one shard by racing threads, have no order. Audit sequence numbers are
// assigned in decision order and sink emission is exactly seq-ordered
// (AuditLog's guarantee); the fail-closed audit_required transition is
// applied per request, never per batch.
//
// Thread safety: MediationRing and Client methods may be called from any
// thread; a Client's completions may be awaited by multiple threads. A
// Client must not be destroyed while submissions race its destructor (the
// destructor drains in-flight completions, then detaches).

#ifndef XSEC_SRC_MONITOR_MEDIATION_RING_H_
#define XSEC_SRC_MONITOR_MEDIATION_RING_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/base/call_options.h"
#include "src/base/credit_ring.h"
#include "src/base/status.h"
#include "src/monitor/reference_monitor.h"
#include "src/monitor/shard_grant.h"

namespace xsec {

class Failpoint;

struct MediationRingOptions {
  // Independent submission rings, each with its own worker thread. Clients
  // are assigned round-robin at NewClient; a stalled shard never blocks
  // another's submissions or completions.
  size_t shards = 1;
  // Per-shard submission-ring capacity == in-flight credit pool.
  size_t ring_capacity = 256;
  // Most requests a worker decides per CheckBatch pass.
  size_t batch_max = 32;
  // Per-client completion credits: submissions a client may have
  // outstanding (queued, deciding, or completed-but-unawaited).
  size_t completion_capacity = 64;
  // A completion waiter carrying a cancel flag re-examines it at least this
  // often (the CallContext cancellation-granularity contract).
  uint64_t cancel_poll_interval_ns = 5'000'000;  // 5 ms
  // Route each submission onto the ring shard of the target node's monitor
  // shard (node shard mod `shards`) instead of the client's home shard, so a
  // worker's CheckBatch sees requests from one validity domain and reads one
  // shard-local stamp set per batch (docs/MODEL.md §15). Off by default:
  // routing by node trades MODEL.md §14's per-client submission-order
  // guarantee for the stamp-locality win, so callers opt in.
  bool route_by_monitor_shard = false;
  // When set, cross-shard submissions — subject homed (ShardOfPrincipal) in
  // a different monitor shard than the target node — must hold a grant in
  // the node's shard or they fail at submit with kPermissionDenied, before
  // any batch work. Admission-only: admitted requests still run the full
  // DAC/MAC check. Must outlive the ring.
  ShardGrantTable* grants = nullptr;
  // When set, every submission consults this gate FIRST — before the grant
  // check and before any credit is reserved — and a non-OK status is
  // returned to the submitter verbatim. The extension supervisor installs a
  // gate answering kUnavailable for quarantined targets, which is what makes
  // quarantine fail-fast: a tripped extension's requests never consume ring
  // or completion credits, so it cannot starve healthy tenants of the
  // transport. Type-erased (the monitor layer sits below the extension
  // system). Must be thread-safe and must outlive the ring.
  std::function<Status(const Subject& subject, NodeId node)> admission_gate;
};

class MediationRing {
 public:
  // Continuation for SubmitInvoke: runs on the worker, only when the
  // execute-mode decision allowed. Type-erased so invocable payloads from
  // any layer (kernel procedures included) ride the ring without this
  // module depending on them.
  using InvokeFn = std::function<Status()>;

  struct Completion {
    uint64_t ticket = 0;
    Decision decision;
    // OK for pure checks and allowed invokes whose continuation succeeded;
    // the decision's ToStatus for denied invokes; the continuation's error
    // otherwise.
    Status invoke_status;
  };

  // A caller's endpoint: a ticket source, a completion-credit pool, and the
  // completion queue. Obtained from NewClient; pinned to one shard.
  class Client {
   public:
    ~Client();
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    size_t shard() const { return shard_; }
    // Submissions rejected at this client's completion-credit gate.
    uint64_t credit_rejections() const {
      return credit_rejections_.load(std::memory_order_relaxed);
    }

   private:
    friend class MediationRing;
    Client(MediationRing* ring, size_t shard, size_t credits)
        : ring_(ring), shard_(shard), credits_(static_cast<int64_t>(credits)) {}

    MediationRing* ring_;
    const size_t shard_;
    std::atomic<int64_t> credits_;
    std::atomic<uint64_t> next_ticket_{1};
    std::atomic<uint64_t> credit_rejections_{0};
    // submitted_ counts admissions to the shard ring; posted_ counts
    // completions posted. The destructor waits for posted_ == submitted_
    // under mu_ — the worker's post (under mu_) is its last touch of this
    // client, so after the wait the client is safe to tear down.
    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> posted_{0};
    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Completion> ready_;  // guarded by mu_
  };

  // The monitor must outlive the ring. Workers start immediately.
  MediationRing(ReferenceMonitor* monitor, MediationRingOptions options = {});

  // Stops admissions, drains everything already queued (stop is
  // drain-then-exit), posts the remaining completions, and joins the
  // workers. Outstanding Clients must be destroyed first.
  ~MediationRing();

  MediationRing(const MediationRing&) = delete;
  MediationRing& operator=(const MediationRing&) = delete;

  // A new endpoint, assigned to the next shard round-robin.
  std::unique_ptr<Client> NewClient();

  // Enqueues one Check. Returns the completion ticket to Wait on,
  // kResourceExhausted when the client is out of completion credits (it
  // stopped draining) or the shard ring is out of submission credits (the
  // worker is backlogged/stalled), or kPermissionDenied when a configured
  // grant table rejects a cross-shard submission. Never blocks. The
  // `ring.submit` failpoint can inject an admission error for fault sweeps.
  StatusOr<uint64_t> SubmitCheck(Client& client, const Subject& subject, NodeId node,
                                 AccessModeSet modes);

  // Enqueues an execute-mode check that, when allowed, runs `fn` on the
  // worker before posting the completion. Denied submissions never run fn.
  StatusOr<uint64_t> SubmitInvoke(Client& client, const Subject& subject, NodeId node,
                                  InvokeFn fn);

  // Blocks until `ticket`'s completion arrives, the deadline passes, or the
  // cancel flag is set (CallContext contract: cancellation wins when both
  // trip). A completion consumed here returns its credit to the client.
  // Waiting on a ticket that was never admitted blocks until
  // deadline/cancel; pass a deadline.
  StatusOr<Completion> Wait(Client& client, uint64_t ticket,
                            const CallOptions& options = {});

  // -- Telemetry (/sys/monitor/ring/*) ----------------------------------------

  size_t shard_count() const { return shards_.size(); }
  // Requests queued across all shards right now.
  size_t depth() const;
  // Batches drained across all shards.
  uint64_t batches() const;
  uint64_t submitted() const { return submitted_.load(std::memory_order_relaxed); }
  uint64_t completed() const { return completed_.load(std::memory_order_relaxed); }
  // Cross-shard submissions rejected by the grant table at the submit gate.
  uint64_t grant_rejections() const {
    return grant_rejections_.load(std::memory_order_relaxed);
  }
  // Submissions refused by the supervision admission gate (pre-credit).
  uint64_t gate_rejections() const {
    return gate_rejections_.load(std::memory_order_relaxed);
  }

  // One shard's worker-liveness view, for the supervisor's watchdog. The
  // heartbeat is stamped at BATCH boundaries (just after a batch is drained
  // and again when its completions are posted), and `busy` is true only
  // between those stamps — so "busy for longer than the watchdog's
  // stuck_after bound" means one batch has been in flight that long, not
  // that the shard is merely loaded. A legitimately slow batch keeps its
  // heartbeat fresh at every boundary; only a wedge inside ONE batch (a
  // stalled CheckBatch, a stuck invoked continuation, an armed
  // ring.worker.<shard>.batch sleep) lets the age grow unboundedly. The
  // watchdog's stuck_after must therefore exceed the worst legitimate
  // single-batch time — that is the pinned contract
  // (WatchdogTest.SlowButProgressingBatchIsNotStuck).
  struct ShardHealth {
    bool busy = false;           // a drained batch is currently in flight
    uint64_t heartbeat_ns = 0;   // MonotonicNowNs at the last batch boundary
    uint64_t batches = 0;        // batches fully processed so far
  };
  ShardHealth shard_health(size_t shard) const;
  // Admissions rejected for want of a credit, both gates combined: the
  // transport's visible back-pressure events.
  uint64_t stalls() const;

 private:
  struct Request {
    Client* client = nullptr;
    uint64_t ticket = 0;
    Subject subject;
    NodeId node;
    AccessModeSet modes;
    InvokeFn invoke;  // null for plain checks
  };

  struct Shard {
    explicit Shard(size_t capacity) : ring(capacity) {}
    CreditRing<Request> ring;
    std::thread worker;
    std::atomic<uint64_t> batches{0};
    // Watchdog view: stamped by the worker at batch boundaries (see
    // ShardHealth). busy is set after a batch is drained and cleared when
    // its completions have posted.
    std::atomic<uint64_t> heartbeat_ns{0};
    std::atomic<bool> busy{false};
    // Per-shard stall-injection site ("ring.worker.<shard>.batch"),
    // resolved once at construction — the XSEC_FAILPOINT macros cache by
    // call site and cannot carry a per-shard name.
    Failpoint* stall_point = nullptr;
  };

  StatusOr<uint64_t> Submit(Client& client, const Subject& subject, NodeId node,
                            AccessModeSet modes, InvokeFn fn);
  void WorkerLoop(Shard* shard);
  static void Post(Client* client, Completion completion);

  ReferenceMonitor* monitor_;
  MediationRingOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> next_shard_{0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> completion_stalls_{0};
  std::atomic<uint64_t> grant_rejections_{0};
  std::atomic<uint64_t> gate_rejections_{0};
};

}  // namespace xsec

#endif  // XSEC_SRC_MONITOR_MEDIATION_RING_H_
