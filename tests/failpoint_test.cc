#include "src/base/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/core/secure_system.h"
#include "src/monitor/monitor_stats.h"

namespace xsec {
namespace {

// Failpoints are process-global; every test disarms on the way out so a
// failing assertion cannot leak an armed fault into an unrelated suite.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

Status Hit(const char* name) {
  // One site per distinct name: the macro's function-local static caches the
  // registry lookup, so tests route through GetOrCreate + Evaluate directly
  // where they need per-name sites, and use the macro where the site under
  // test is the macro itself.
  Failpoint* point = FailpointRegistry::Instance().GetOrCreate(name);
  if (point->armed()) {
    return point->Evaluate();
  }
  return OkStatus();
}

TEST_F(FailpointTest, ParseGrammar) {
  auto error = FailpointSpec::Parse("error");
  ASSERT_TRUE(error.ok());
  EXPECT_TRUE(error->inject_error);
  EXPECT_EQ(error->code, StatusCode::kInternal);
  EXPECT_EQ(error->sleep_ns, 0u);
  EXPECT_EQ(error->skip, 0u);
  EXPECT_EQ(error->times, -1);

  auto coded = FailpointSpec::Parse("error=resource-exhausted");
  ASSERT_TRUE(coded.ok());
  EXPECT_EQ(coded->code, StatusCode::kResourceExhausted);

  auto sleep_ms = FailpointSpec::Parse("sleep=5ms");
  ASSERT_TRUE(sleep_ms.ok());
  EXPECT_EQ(sleep_ms->sleep_ns, 5'000'000u);
  EXPECT_FALSE(sleep_ms->inject_error);

  auto sleep_bare = FailpointSpec::Parse("sleep=3");  // bare numbers are ms
  ASSERT_TRUE(sleep_bare.ok());
  EXPECT_EQ(sleep_bare->sleep_ns, 3'000'000u);

  auto sleep_us = FailpointSpec::Parse("sleep=250us");
  ASSERT_TRUE(sleep_us.ok());
  EXPECT_EQ(sleep_us->sleep_ns, 250'000u);

  auto full = FailpointSpec::Parse("error=not-found,sleep=1us,nth=3,times=2");
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->inject_error);
  EXPECT_EQ(full->code, StatusCode::kNotFound);
  EXPECT_EQ(full->sleep_ns, 1'000u);
  EXPECT_EQ(full->skip, 2u);  // nth=3 → pass the first two hits
  EXPECT_EQ(full->times, 2);

  auto off = FailpointSpec::Parse("off");
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off->active());

  // Rejected: unknown clauses, bad codes, no-effect specs, nth=0.
  EXPECT_FALSE(FailpointSpec::Parse("").ok());
  EXPECT_FALSE(FailpointSpec::Parse("bogus").ok());
  EXPECT_FALSE(FailpointSpec::Parse("error=no-such-code").ok());
  EXPECT_FALSE(FailpointSpec::Parse("nth=3").ok());  // gates nothing
  EXPECT_FALSE(FailpointSpec::Parse("error,nth=0").ok());
  EXPECT_FALSE(FailpointSpec::Parse("error,times=x").ok());
}

TEST_F(FailpointTest, SpecRoundTripsThroughToString) {
  for (const char* text :
       {"error=not-found,nth=3,times=2", "sleep=5ms", "error=internal"}) {
    auto spec = FailpointSpec::Parse(text);
    ASSERT_TRUE(spec.ok()) << text;
    auto again = FailpointSpec::Parse(spec->ToString());
    ASSERT_TRUE(again.ok()) << spec->ToString();
    EXPECT_EQ(again->inject_error, spec->inject_error);
    EXPECT_EQ(again->code, spec->code);
    EXPECT_EQ(again->sleep_ns, spec->sleep_ns);
    EXPECT_EQ(again->skip, spec->skip);
    EXPECT_EQ(again->times, spec->times);
  }
}

TEST_F(FailpointTest, DisarmedSiteIsTransparent) {
  Failpoint* point = FailpointRegistry::Instance().GetOrCreate("test.fp.disarmed");
  EXPECT_FALSE(point->armed());
  uint64_t hits_before = point->hits();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(Hit("test.fp.disarmed").ok());
  }
  // The disarmed fast path never reaches Evaluate, so hits do not move.
  EXPECT_EQ(point->hits(), hits_before);
}

TEST_F(FailpointTest, NthGatingIsDeterministic) {
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("test.fp.nth", "error,nth=3").ok());
  EXPECT_TRUE(Hit("test.fp.nth").ok());   // hit 1
  EXPECT_TRUE(Hit("test.fp.nth").ok());   // hit 2
  for (int i = 0; i < 5; ++i) {           // hits 3.. all fire
    Status status = Hit("test.fp.nth");
    EXPECT_EQ(status.code(), StatusCode::kInternal) << i;
  }
  // Re-arming resets the gate: the skip window applies afresh.
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("test.fp.nth", "error,nth=2").ok());
  EXPECT_TRUE(Hit("test.fp.nth").ok());
  EXPECT_FALSE(Hit("test.fp.nth").ok());
}

TEST_F(FailpointTest, TimesBoundsFiresThenAutoDisarms) {
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("test.fp.times", "error,times=2").ok());
  Failpoint* point = FailpointRegistry::Instance().Find("test.fp.times");
  ASSERT_NE(point, nullptr);
  EXPECT_FALSE(Hit("test.fp.times").ok());
  EXPECT_FALSE(Hit("test.fp.times").ok());
  // Budget exhausted: passes through and disarms so later hits take the
  // one-atomic fast path again.
  EXPECT_TRUE(Hit("test.fp.times").ok());
  EXPECT_FALSE(point->armed());
  EXPECT_EQ(point->fires(), 2u);
}

TEST_F(FailpointTest, InjectedErrorCarriesTheRequestedCode) {
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("test.fp.code", "error=permission-denied")
                  .ok());
  Status status = Hit("test.fp.code");
  EXPECT_EQ(status.code(), StatusCode::kPermissionDenied);
  EXPECT_NE(status.message().find("test.fp.code"), std::string::npos)
      << "the injected error names its failpoint: " << status.message();
}

TEST_F(FailpointTest, SleepInjectsLatency) {
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("test.fp.sleep", "sleep=2ms").ok());
  uint64_t start = MonotonicNowNs();
  EXPECT_TRUE(Hit("test.fp.sleep").ok());  // sleep-only specs still return OK
  EXPECT_GE(MonotonicNowNs() - start, 2'000'000u);
}

TEST_F(FailpointTest, MacroReturnsInjectedStatusFromEnclosingFunction) {
  auto site = []() -> Status {
    XSEC_FAILPOINT("test.fp.macro");
    return OkStatus();
  };
  EXPECT_TRUE(site().ok());
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("test.fp.macro", "error=cancelled").ok());
  EXPECT_EQ(site().code(), StatusCode::kCancelled);
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("test.fp.macro", "off").ok());
  EXPECT_TRUE(site().ok());
  EXPECT_FALSE(XSEC_FAILPOINT_FIRED("test.fp.macro"));
}

TEST_F(FailpointTest, RegistryFindAndNames) {
  EXPECT_EQ(FailpointRegistry::Instance().Find("test.fp.never-created"), nullptr);
  FailpointRegistry::Instance().GetOrCreate("test.fp.named");
  EXPECT_NE(FailpointRegistry::Instance().Find("test.fp.named"), nullptr);
  std::vector<std::string> names = FailpointRegistry::Instance().Names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.fp.named"), names.end());
  EXPECT_FALSE(FailpointRegistry::Instance().Arm("test.fp.named", "garbage").ok());
}

// Arm/disarm racing free-running evaluation: every observed outcome must be
// either OK or the injected error, never a crash or a torn spec. Run under
// TSan via ci/run_checks.sh --quick / --faults.
TEST_F(FailpointTest, ArmDisarmRaceUnderEvaluation) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> oks{0};
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> hitters;
  for (int t = 0; t < 4; ++t) {
    hitters.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Status status = Hit("test.fp.race");
        if (status.ok()) {
          oks.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_EQ(status.code(), StatusCode::kInternal);
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(FailpointRegistry::Instance().Arm("test.fp.race", "error").ok());
    std::this_thread::yield();
    ASSERT_TRUE(FailpointRegistry::Instance().Arm("test.fp.race", "off").ok());
  }
  stop.store(true);
  for (auto& thread : hitters) {
    thread.join();
  }
  EXPECT_GT(oks.load() + errors.load(), 0u);
}

// Randomized sweep: a seeded scenario arms random specs on a pool of sites
// while worker threads hammer them, asserting only invariants (injected
// codes come from the armed set; counters are monotone). XSEC_FAULT_SEED
// in the environment varies the schedule — ci/run_checks.sh --faults runs
// this under ASan+TSan with a random seed and prints it for replay.
TEST_F(FailpointTest, RandomizedSweepHoldsInvariants) {
  uint64_t seed = 0xfau;
  if (const char* env = std::getenv("XSEC_FAULT_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  SCOPED_TRACE("XSEC_FAULT_SEED=" + std::to_string(seed));
  const char* sites[] = {"test.fp.sweep.a", "test.fp.sweep.b", "test.fp.sweep.c"};
  const char* specs[] = {"error",
                         "error=not-found,nth=2",
                         "error=resource-exhausted,times=3",
                         "sleep=1us",
                         "error,sleep=1us,times=5",
                         "off"};
  std::atomic<bool> stop{false};
  std::vector<std::thread> hitters;
  for (const char* site : sites) {
    hitters.emplace_back([&, site] {
      while (!stop.load(std::memory_order_relaxed)) {
        Status status = Hit(site);
        if (!status.ok()) {
          StatusCode code = status.code();
          ASSERT_TRUE(code == StatusCode::kInternal || code == StatusCode::kNotFound ||
                      code == StatusCode::kResourceExhausted)
              << status.ToString();
        }
      }
    });
  }
  Rng rng(seed);
  for (int round = 0; round < 300; ++round) {
    const char* site = sites[rng.NextBelow(3)];
    const char* spec = specs[rng.NextBelow(6)];
    ASSERT_TRUE(FailpointRegistry::Instance().Arm(site, spec).ok()) << spec;
  }
  stop.store(true);
  for (auto& thread : hitters) {
    thread.join();
  }
  for (const char* site : sites) {
    Failpoint* point = FailpointRegistry::Instance().Find(site);
    ASSERT_NE(point, nullptr);
    EXPECT_GE(point->hits(), point->fires());
  }
}

// -- The mediated control plane (FaultService) --------------------------------

class FaultServiceTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

TEST_F(FaultServiceTest, SystemArmsReadsAndDisarms) {
  SecureSystem sys;
  Subject system = sys.SystemSubject();
  auto armed = sys.faults().Arm(system, "test.svc.point", "error,nth=2");
  ASSERT_TRUE(armed.ok()) << armed.status().ToString();
  EXPECT_NE(armed->find("error"), std::string::npos);

  Failpoint* point = FailpointRegistry::Instance().Find("test.svc.point");
  ASSERT_NE(point, nullptr);
  EXPECT_TRUE(point->armed());

  auto state = sys.faults().ReadFault(system, "test.svc.point");
  ASSERT_TRUE(state.ok());
  EXPECT_NE(state->find("nth=2"), std::string::npos);

  auto listing = sys.faults().List(system);
  ASSERT_TRUE(listing.ok());
  EXPECT_NE(listing->find("test.svc.point"), std::string::npos);

  ASSERT_TRUE(sys.faults().Arm(system, "test.svc.point", "off").ok());
  EXPECT_FALSE(point->armed());
}

TEST_F(FaultServiceTest, ArmingIsFailClosedForOrdinaryUsers) {
  SecureSystem sys;
  auto mallory = sys.CreateUser("mallory");
  ASSERT_TRUE(mallory.ok());
  Subject mallory_s = sys.Login(*mallory, sys.labels().Bottom());
  auto armed = sys.faults().Arm(mallory_s, "test.svc.denied", "error");
  EXPECT_EQ(armed.status().code(), StatusCode::kPermissionDenied);
  // The denial never reached the registry: the failpoint stays disarmed.
  Failpoint* point = FailpointRegistry::Instance().Find("test.svc.denied");
  EXPECT_TRUE(point == nullptr || !point->armed());
  // Reads and listings are fail-closed too.
  EXPECT_EQ(sys.faults().ReadFault(mallory_s, "test.svc.denied").status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(sys.faults().List(mallory_s).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(FaultServiceTest, ArmingIsAudited) {
  SecureSystem sys;
  sys.monitor().audit().set_policy(AuditPolicy::kAll);
  Subject system = sys.SystemSubject();
  ASSERT_TRUE(sys.faults().Arm(system, "test.svc.audited", "sleep=1us").ok());
  auto records = sys.monitor().audit().Query([](const AuditRecord& record) {
    return record.path == "/sys/faults/test.svc.audited" &&
           record.modes.Contains(AccessMode::kAdministrate);
  });
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].allowed);
}

TEST_F(FaultServiceTest, RejectsInvalidNames) {
  SecureSystem sys;
  Subject system = sys.SystemSubject();
  EXPECT_EQ(sys.faults().Arm(system, "bad name", "error").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sys.faults().Arm(system, "", "error").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sys.faults().Arm(system, "a/b", "error").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FaultServiceTest, BadSpecIsRejectedAfterTheCheck) {
  SecureSystem sys;
  Subject system = sys.SystemSubject();
  auto armed = sys.faults().Arm(system, "test.svc.badspec", "gibberish");
  EXPECT_EQ(armed.status().code(), StatusCode::kInvalidArgument);
  Failpoint* point = FailpointRegistry::Instance().Find("test.svc.badspec");
  EXPECT_TRUE(point == nullptr || !point->armed());
}

}  // namespace
}  // namespace xsec
