// Experiment T2 — the paper's §2.2 worked applet example, regenerated on the
// real system. Prints the measured subject × file access matrix ('R' = read
// allowed, 'A' = write-append allowed) together with the lattice-derived
// expectation; `mismatches` must be 0.

#include <cstdio>

#include "src/core/applet_example.h"

int main() {
  xsec::AppletMatrix matrix = xsec::RunAppletExample();

  std::printf("T2: the paper's worked example (levels: others < organization < local;\n");
  std::printf("    categories: myself, department-1, department-2, outside)\n\n");
  std::printf("subject classes:\n");
  for (size_t i = 0; i < matrix.subjects.size(); ++i) {
    std::printf("  %-16s %s\n", matrix.subjects[i].c_str(),
                matrix.subject_classes[i].c_str());
  }
  std::printf("\nmeasured access matrix (R = read, A = append, . = denied):\n\n%s",
              xsec::RenderAppletMatrix(matrix).c_str());

  std::printf("\npaper claims checked:\n");
  std::printf("  user reads every file:              %s\n",
              matrix.read_allowed[0][1] && matrix.read_allowed[0][4] ? "yes" : "NO");
  std::printf("  dep-1 and dep-2 mutually isolated:  %s\n",
              !matrix.read_allowed[1][2] && !matrix.read_allowed[2][1] ? "yes" : "NO");
  std::printf("  dual-label applet reads both:       %s\n",
              matrix.read_allowed[3][1] && matrix.read_allowed[3][2] ? "yes" : "NO");
  std::printf("  measured-vs-lattice mismatches:     %d\n", matrix.mismatches);
  return matrix.mismatches == 0 ? 0 : 1;
}
