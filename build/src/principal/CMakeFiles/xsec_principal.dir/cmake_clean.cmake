file(REMOVE_RECURSE
  "CMakeFiles/xsec_principal.dir/registry.cc.o"
  "CMakeFiles/xsec_principal.dir/registry.cc.o.d"
  "libxsec_principal.a"
  "libxsec_principal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_principal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
