#include "src/dac/access_mode.h"

#include <gtest/gtest.h>

namespace xsec {
namespace {

TEST(AccessModeTest, NamesAreStable) {
  EXPECT_EQ(AccessModeName(AccessMode::kRead), "read");
  EXPECT_EQ(AccessModeName(AccessMode::kWriteAppend), "write-append");
  EXPECT_EQ(AccessModeName(AccessMode::kExecute), "execute");
  EXPECT_EQ(AccessModeName(AccessMode::kExtend), "extend");
  EXPECT_EQ(AccessModeName(AccessMode::kAdministrate), "administrate");
}

TEST(AccessModeSetTest, EmptyAndAll) {
  EXPECT_TRUE(AccessModeSet::None().empty());
  EXPECT_EQ(AccessModeSet::All().Modes().size(), static_cast<size_t>(kAccessModeCount));
  EXPECT_TRUE(AccessModeSet::All().Contains(AccessMode::kExtend));
}

TEST(AccessModeSetTest, SetOperations) {
  AccessModeSet rw = AccessMode::kRead | AccessMode::kWrite;
  EXPECT_TRUE(rw.Contains(AccessMode::kRead));
  EXPECT_FALSE(rw.Contains(AccessMode::kExecute));
  EXPECT_TRUE(rw.ContainsAll(AccessModeSet(AccessMode::kRead)));
  EXPECT_FALSE(rw.ContainsAll(rw | AccessMode::kExecute));
  EXPECT_TRUE(rw.Intersects(AccessMode::kWrite | AccessMode::kDelete));
  EXPECT_FALSE(rw.Intersects(AccessModeSet(AccessMode::kDelete)));

  AccessModeSet minus = rw - AccessModeSet(AccessMode::kWrite);
  EXPECT_TRUE(minus.Contains(AccessMode::kRead));
  EXPECT_FALSE(minus.Contains(AccessMode::kWrite));
}

TEST(AccessModeSetTest, EveryModeRequestableAlone) {
  for (int i = 0; i < kAccessModeCount; ++i) {
    AccessMode m = static_cast<AccessMode>(1u << i);
    AccessModeSet s(m);
    EXPECT_EQ(s.Modes().size(), 1u);
    EXPECT_EQ(s.Modes()[0], m);
  }
}

TEST(AccessModeSetTest, ToStringRoundTrip) {
  AccessModeSet s = AccessMode::kRead | AccessMode::kExecute | AccessMode::kExtend;
  std::string text = s.ToString();
  EXPECT_EQ(text, "read|execute|extend");
  auto parsed = AccessModeSet::Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, s);
}

TEST(AccessModeSetTest, ParseEmpty) {
  auto parsed = AccessModeSet::Parse("-");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
  EXPECT_EQ(AccessModeSet::None().ToString(), "-");
}

TEST(AccessModeSetTest, ParseRejectsUnknown) {
  EXPECT_EQ(AccessModeSet::Parse("read|fly").status().code(), StatusCode::kInvalidArgument);
}

TEST(AccessModeSetTest, RoundTripAllSubsets) {
  // Exhaustive over all 256 subsets: ToString/Parse is a bijection.
  for (uint32_t bits = 0; bits < (1u << kAccessModeCount); ++bits) {
    AccessModeSet s(bits);
    auto parsed = AccessModeSet::Parse(s.ToString());
    ASSERT_TRUE(parsed.ok()) << s.ToString();
    EXPECT_EQ(*parsed, s) << s.ToString();
  }
}

}  // namespace
}  // namespace xsec
