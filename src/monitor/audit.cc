#include "src/monitor/audit.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <thread>

#include "src/base/failpoint.h"
#include "src/base/strings.h"
#include "src/monitor/monitor_stats.h"

namespace xsec {

std::string_view DenyReasonName(DenyReason reason) {
  switch (reason) {
    case DenyReason::kNone:
      return "none";
    case DenyReason::kNotFound:
      return "not-found";
    case DenyReason::kTraversal:
      return "traversal";
    case DenyReason::kDacExplicitDeny:
      return "dac-explicit-deny";
    case DenyReason::kDacNoGrant:
      return "dac-no-grant";
    case DenyReason::kMacFlow:
      return "mac-flow";
    case DenyReason::kNotAuthorized:
      return "not-authorized";
    case DenyReason::kAuditUnavailable:
      return "audit-unavailable";
  }
  return "unknown";
}

std::string AuditRecord::ToString() const {
  return StrFormat("#%llu p%u/t%llu %s %s -> %s%s%s",
                   static_cast<unsigned long long>(sequence), principal.value,
                   static_cast<unsigned long long>(thread_id), path.c_str(),
                   modes.ToString().c_str(), allowed ? "ALLOW" : "DENY",
                   allowed ? "" : StrFormat(" (%s)", std::string(DenyReasonName(reason)).c_str())
                                      .c_str(),
                   detail.empty() ? "" : StrFormat(" [%s]", detail.c_str()).c_str());
}

std::string AuditRecord::ToJson() const {
  return StrFormat(
      "{\"seq\":%llu,\"principal\":%u,\"thread\":%llu,\"node\":%u,\"path\":\"%s\","
      "\"modes\":\"%s\",\"allowed\":%s,\"reason\":\"%s\",\"detail\":\"%s\"}",
      static_cast<unsigned long long>(sequence), principal.value,
      static_cast<unsigned long long>(thread_id), node.value, JsonEscape(path).c_str(),
      modes.ToString().c_str(), allowed ? "true" : "false",
      std::string(DenyReasonName(reason)).c_str(), JsonEscape(detail).c_str());
}

std::function<void(const AuditRecord&)> MakeNdjsonSink(std::ostream* out) {
  return [out](const AuditRecord& record) { *out << record.ToJson() << '\n'; };
}

NdjsonFileRotator::NdjsonFileRotator(std::string path, NdjsonRotationPolicy policy)
    : path_(std::move(path)), policy_(policy) {}

NdjsonFileRotator::~NdjsonFileRotator() {
  if (out_ != nullptr) {
    std::fclose(out_);
  }
}

Status NdjsonFileRotator::Open() {
  if (out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
  }
  XSEC_FAILPOINT("audit.rotate.open");
  out_ = std::fopen(path_.c_str(), "w");
  if (out_ == nullptr) {
    return InternalError(StrFormat("cannot open '%s' for writing", path_.c_str()));
  }
  bytes_ = 0;
  opened_at_ns_ = MonotonicNowNs();
  return OkStatus();
}

void NdjsonFileRotator::RotateIfNeeded(size_t next_line_bytes) {
  bool over_size = policy_.max_bytes != 0 && bytes_ != 0 &&
                   bytes_ + next_line_bytes > policy_.max_bytes;
  bool over_age = policy_.max_age_ns != 0 && bytes_ != 0 &&
                  MonotonicNowNs() - opened_at_ns_ >= policy_.max_age_ns;
  if (!over_size && !over_age) {
    return;
  }
  std::fclose(out_);
  out_ = nullptr;
  if (policy_.max_keep > 0) {
    if (XSEC_FAILPOINT_FIRED("audit.rotate.rename")) {
      // A failed history rename degrades to truncate-in-place: the window
      // loses one file of history but writing never stops.
      ++rename_failures_;
    } else {
      // Shift the history window: drop the oldest, slide the rest up, then
      // move the just-closed file into the .1 position.
      std::remove(StrFormat("%s.%zu", path_.c_str(), policy_.max_keep).c_str());
      for (size_t k = policy_.max_keep; k > 1; --k) {
        std::rename(StrFormat("%s.%zu", path_.c_str(), k - 1).c_str(),
                    StrFormat("%s.%zu", path_.c_str(), k).c_str());
      }
      std::rename(path_.c_str(), StrFormat("%s.1", path_.c_str()).c_str());
    }
  }
  ++rotations_;
  (void)Open();  // max_keep == 0 lands here too: truncate in place
}

void NdjsonFileRotator::Write(const AuditRecord& record) {
  if (out_ == nullptr) {
    return;  // Open() failed or was never called; drop rather than crash
  }
  std::string line = record.ToJson();
  line += '\n';
  RotateIfNeeded(line.size());
  if (out_ == nullptr) {
    return;  // reopen after rotation failed
  }
  // Disk-full simulation point: an armed `audit.ndjson.write` takes zero
  // bytes, like a device with no space left; a real short fwrite lands in
  // the same recovery path below.
  size_t wrote = XSEC_FAILPOINT_FIRED("audit.ndjson.write")
                     ? 0
                     : std::fwrite(line.data(), 1, line.size(), out_);
  if (wrote != line.size()) {
    // Short write: truncate the torn suffix back off so the file ends on
    // the last complete line (bytes_ is the pre-write size, which is by
    // construction a whole-line boundary), then drop this record from
    // export. The in-memory ring still retains it.
    ++write_failures_;
    std::fflush(out_);
    (void)ftruncate(fileno(out_), static_cast<off_t>(bytes_));
    std::fseek(out_, static_cast<long>(bytes_), SEEK_SET);
    return;
  }
  std::fflush(out_);
  bytes_ += line.size();
}

std::function<void(const AuditRecord&)> MakeRotatingNdjsonSink(
    std::shared_ptr<NdjsonFileRotator> rotator) {
  return [rotator](const AuditRecord& record) { rotator->Write(record); };
}

std::function<Status(const AuditRecord&)> MakeRotatingNdjsonFallibleSink(
    std::shared_ptr<NdjsonFileRotator> rotator) {
  // Sink invocations are externally serialized (AuditLog's contract), so the
  // before/after failure-counter delta unambiguously belongs to this write.
  return [rotator](const AuditRecord& record) -> Status {
    uint64_t failures_before = rotator->write_failures();
    rotator->Write(record);
    if (rotator->write_failures() != failures_before) {
      return ResourceExhaustedError("ndjson write failed (disk full?)");
    }
    return OkStatus();
  };
}

ResilientSink::ResilientSink(FallibleSink inner, ResilientSinkOptions options)
    : inner_(std::move(inner)), options_(options), rng_(options.rng_seed) {
  if (options_.max_attempts < 1) {
    options_.max_attempts = 1;
  }
  if (options_.trip_after < 1) {
    options_.trip_after = 1;
  }
}

std::string_view ResilientSink::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

Status ResilientSink::TryOnce(const AuditRecord& record) {
  XSEC_FAILPOINT("audit.sink.write");
  return inner_(record);
}

void ResilientSink::Write(const AuditRecord& record) {
  State entered = state();
  if (entered == State::kOpen) {
    if (options_.reopen_after_ns == 0 ||
        MonotonicNowNs() - opened_at_ns_ < options_.reopen_after_ns) {
      // Circuit open: drop immediately, never touch the dead sink. The ring
      // still retains the record; only export is lost.
      gave_up_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    entered = State::kHalfOpen;
    state_.store(entered, std::memory_order_relaxed);
  }
  // Half-open gets exactly one probe; closed gets the full retry budget.
  const int attempts = entered == State::kHalfOpen ? 1 : options_.max_attempts;
  uint64_t backoff_ns = options_.backoff_initial_ns;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      uint64_t jitter = backoff_ns * options_.jitter_pct / 100;
      uint64_t sleep_ns =
          backoff_ns - jitter + (jitter != 0 ? rng_.NextBelow(2 * jitter + 1) : 0);
      if (sleep_ns != 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_ns));
      }
      backoff_ns = std::min(backoff_ns * 2, options_.backoff_max_ns);
    }
    if (TryOnce(record).ok()) {
      consecutive_failures_ = 0;
      written_.fetch_add(1, std::memory_order_relaxed);
      if (entered == State::kHalfOpen) {
        state_.store(State::kClosed, std::memory_order_relaxed);
      }
      return;
    }
    ++consecutive_failures_;
  }
  gave_up_.fetch_add(1, std::memory_order_relaxed);
  if (entered == State::kHalfOpen || consecutive_failures_ >= options_.trip_after) {
    opened_at_ns_ = MonotonicNowNs();
    state_.store(State::kOpen, std::memory_order_relaxed);
  }
}

void AuditLog::RingInsertLocked(AuditRecord record) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else if (capacity_ > 0) {
    // Full: overwrite the oldest record (at head_) and advance.
    ring_[head_] = std::move(record);
    head_ = (head_ + 1) % capacity_;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void AuditLog::Record(AuditRecord record) {
  Count(record.allowed);
  if (!WouldRetain(record.allowed)) {
    return;
  }
  // Sequence-order fix: when the sink runs synchronously (no drain), acquire
  // sink_mu_ BEFORE stamping, so the stamp and the sink call form one
  // critical section and two racing recorders cannot stamp in one order and
  // emit in the other. The drained path gets the same guarantee from
  // enqueueing inside the stamping critical section below.
  std::unique_lock<std::mutex> serialize(sink_mu_, std::defer_lock);
  if (sync_sink_active_.load(std::memory_order_acquire)) {
    serialize.lock();
  }
  std::shared_ptr<const Sink> sink;
  AuditRecord for_sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    record.sequence = next_sequence_++;
    if (sink_ != nullptr) {
      if (drain_running_) {
        // Only enqueue under mu_; the drainer does the sink I/O. Enqueueing
        // in the same critical section that stamps the sequence is what
        // keeps drained output exactly sequence-ordered. The failpoint is
        // evaluated first so an injected enqueue failure (or latency — it
        // runs under mu_, deliberately stalling recorders like a contended
        // queue would) is exercised even when the queue has room.
        if (XSEC_FAILPOINT_FIRED("audit.drain.enqueue") ||
            drain_queue_.size() >= drain_options_.queue_capacity) {
          sink_dropped_.fetch_add(1, std::memory_order_relaxed);
        } else {
          drain_queue_.push_back(record);
          drain_cv_.notify_one();
        }
      } else {
        sink = sink_;     // invoke outside the lock, on a copy
        for_sink = record;
      }
    }
    RingInsertLocked(std::move(record));
  }
  if (sink != nullptr) {
    // Recorders are never blocked on file I/O while holding the ring mutex;
    // they may still wait on each other (sink_mu_), which is what the async
    // drain removes entirely. A sink installed between the pre-check above
    // and here is serialized late (that one racing record may emit out of
    // order; sinks are setup-time by contract).
    if (!serialize.owns_lock()) {
      serialize.lock();
    }
    (*sink)(for_sink);
  }
}

void AuditLog::RecordBatch(std::vector<AuditRecord> records) {
  if (records.empty()) {
    return;
  }
  uint64_t denials = 0;
  for (const AuditRecord& record : records) {
    if (!record.allowed) {
      ++denials;
    }
  }
  CountBatch(records.size(), denials);
  // One policy read for the whole batch: a racing set_policy applies to the
  // next batch, never to half of this one.
  AuditPolicy p = policy();
  if (p == AuditPolicy::kOff) {
    return;
  }
  if (p == AuditPolicy::kDenialsOnly) {
    records.erase(std::remove_if(records.begin(), records.end(),
                                 [](const AuditRecord& r) { return r.allowed; }),
                  records.end());
    if (records.empty()) {
      return;
    }
  }
  // Same sync-mode ordering discipline as Record: sink_mu_ before the stamp.
  std::unique_lock<std::mutex> serialize(sink_mu_, std::defer_lock);
  if (sync_sink_active_.load(std::memory_order_acquire)) {
    serialize.lock();
  }
  std::shared_ptr<const Sink> sink;
  std::vector<AuditRecord> for_sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (AuditRecord& record : records) {
      record.sequence = next_sequence_++;
    }
    if (sink_ != nullptr) {
      if (drain_running_) {
        for (const AuditRecord& record : records) {
          if (XSEC_FAILPOINT_FIRED("audit.drain.enqueue") ||
              drain_queue_.size() >= drain_options_.queue_capacity) {
            sink_dropped_.fetch_add(1, std::memory_order_relaxed);
          } else {
            drain_queue_.push_back(record);
          }
        }
        drain_cv_.notify_one();
      } else {
        sink = sink_;
        for_sink = records;
      }
    }
    for (AuditRecord& record : records) {
      RingInsertLocked(std::move(record));
    }
  }
  if (sink != nullptr) {
    if (!serialize.owns_lock()) {
      serialize.lock();
    }
    for (const AuditRecord& record : for_sink) {
      (*sink)(record);
    }
  }
}

void AuditLog::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = sink ? std::make_shared<const Sink>(std::move(sink)) : nullptr;
  UpdateSyncModeLocked();
}

void AuditLog::InstallResilientSink(std::shared_ptr<ResilientSink> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  resilient_ = sink;
  // Publish the health pointer before the sink can be invoked; release
  // pairs with the acquire in SinkTripped.
  resilient_raw_.store(sink.get(), std::memory_order_release);
  sink_ = sink != nullptr
              ? std::make_shared<const Sink>(
                    [sink](const AuditRecord& record) { sink->Write(record); })
              : nullptr;
  UpdateSyncModeLocked();
}

std::string AuditLog::sink_state() const {
  const ResilientSink* sink = resilient_raw_.load(std::memory_order_acquire);
  if (sink == nullptr) {
    return "none";
  }
  return std::string(ResilientSink::StateName(sink->state()));
}

uint64_t AuditLog::sink_retries() const {
  const ResilientSink* sink = resilient_raw_.load(std::memory_order_acquire);
  return sink == nullptr ? 0 : sink->retries();
}

uint64_t AuditLog::sink_gave_up() const {
  const ResilientSink* sink = resilient_raw_.load(std::memory_order_acquire);
  return sink == nullptr ? 0 : sink->gave_up();
}

void AuditLog::StartDrain(AuditDrainOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (drain_running_) {
    return;
  }
  if (options.queue_capacity == 0) {
    options.queue_capacity = 1;
  }
  drain_options_ = options;
  drain_stop_ = false;
  drain_running_ = true;
  UpdateSyncModeLocked();
  drainer_ = std::thread([this] { DrainLoop(); });
}

void AuditLog::DrainLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    drain_cv_.wait(lock, [this] { return drain_stop_ || !drain_queue_.empty(); });
    if (drain_queue_.empty()) {
      return;  // stop requested and nothing left to flush
    }
    std::deque<AuditRecord> batch;
    batch.swap(drain_queue_);
    std::shared_ptr<const Sink> sink = sink_;
    drain_busy_ = true;
    lock.unlock();
    if (sink != nullptr) {
      std::lock_guard<std::mutex> serialize(sink_mu_);
      for (const AuditRecord& record : batch) {
        (*sink)(record);
      }
    }
    lock.lock();
    drain_busy_ = false;
    if (drain_queue_.empty()) {
      drain_idle_cv_.notify_all();
    }
  }
}

void AuditLog::StopDrain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!drain_running_) {
      return;
    }
    drain_stop_ = true;
  }
  drain_cv_.notify_all();
  drainer_.join();  // the drainer flushes the queue before exiting
  std::lock_guard<std::mutex> lock(mu_);
  drain_running_ = false;
  drain_stop_ = false;
  UpdateSyncModeLocked();
}

void AuditLog::Flush() {
  // Latency-injection point for flush-path tests (arm with sleep=...; an
  // error spec counts a fire but flush still proceeds — flush is not
  // allowed to fail, only to be slow).
  (void)XSEC_FAILPOINT_FIRED("audit.sink.flush");
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_idle_cv_.wait(lock, [this] { return drain_queue_.empty() && !drain_busy_; });
  }
  // Wait out any sink call currently in flight (sync recorder or drainer).
  std::lock_guard<std::mutex> serialize(sink_mu_);
}

template <typename Visit>
void AuditLog::ForEachLocked(Visit visit) const {
  for (size_t i = head_; i < ring_.size(); ++i) {
    visit(ring_[i]);
  }
  for (size_t i = 0; i < head_; ++i) {
    visit(ring_[i]);
  }
}

size_t AuditLog::retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::vector<AuditRecord> AuditLog::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditRecord> out;
  out.reserve(ring_.size());
  ForEachLocked([&out](const AuditRecord& r) { out.push_back(r); });
  return out;
}

std::vector<AuditRecord> AuditLog::Query(
    const std::function<bool(const AuditRecord&)>& pred) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditRecord> out;
  ForEachLocked([&out, &pred](const AuditRecord& r) {
    if (pred(r)) {
      out.push_back(r);
    }
  });
  return out;
}

void AuditLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  // next_sequence_ deliberately survives: resetting it would reissue ids
  // already written to rotated NDJSON files, breaking dedup by `seq`.
  total_checks_.store(0, std::memory_order_relaxed);
  total_denials_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  sink_dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace xsec
