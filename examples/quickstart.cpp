// Quickstart: the smallest end-to-end xsec program.
//
// Boots a SecureSystem, creates a user, defines trust levels, loads an
// extension that both *calls* an existing service (execute) and *extends* an
// interface (extend), and shows a denial when the grant is missing.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "src/core/secure_system.h"

using xsec::AccessMode;
using xsec::Acl;
using xsec::AclEntry;
using xsec::AclEntryType;
using xsec::CallContext;
using xsec::ExtensionManifest;
using xsec::StatusOr;
using xsec::Value;

int main() {
  xsec::SecureSystem sys;

  // 1. Principals and labels.
  xsec::PrincipalId alice = *sys.CreateUser("alice");
  (void)sys.labels().DefineLevels({"untrusted", "trusted"});
  xsec::Subject subject = sys.Login(alice, *sys.labels().MakeClass("trusted", {}));
  std::printf("logged in as alice at class %s\n",
              sys.labels().ClassToString(subject.security_class).c_str());

  // 2. Calling an existing service works out of the box (services are
  //    executable by everyone by default).
  auto stats = sys.Invoke(subject, "/svc/mbuf/stats", {});
  std::printf("mbuf stats -> %s (live buffers: %lld)\n",
              stats.ok() ? "OK" : stats.status().ToString().c_str(),
              stats.ok() ? static_cast<long long>(std::get<int64_t>(*stats)) : -1);

  // 3. The base system publishes an extension point; alice is granted
  //    extend on it.
  xsec::NodeId greet = *sys.kernel().RegisterInterface("/svc/greet", sys.system_principal());
  Acl acl;
  acl.AddEntry(AclEntry{AclEntryType::kAllow, alice,
                        AccessMode::kExtend | AccessMode::kExecute | AccessMode::kList});
  (void)sys.name_space().SetAclRef(greet, sys.kernel().acls().Create(std::move(acl)));

  // 4. An extension that imports the mbuf allocator and specializes /svc/greet.
  ExtensionManifest manifest;
  manifest.name = "greeter";
  manifest.imports = {"/svc/mbuf/alloc"};
  manifest.exports.push_back({"/svc/greet", [](CallContext& ctx) -> StatusOr<Value> {
                                auto name = xsec::ArgString(ctx.args, 0);
                                if (!name.ok()) {
                                  return name.status();
                                }
                                return Value{"hello, " + *name + "!"};
                              }});
  auto ext = sys.LoadExtension(manifest, subject);
  std::printf("load greeter -> %s\n", ext.ok() ? "OK" : ext.status().ToString().c_str());

  // 5. Invoking the extended interface dispatches to the extension.
  auto greeting = sys.Invoke(subject, "/svc/greet", {Value{std::string("world")}});
  std::printf("invoke /svc/greet -> %s\n",
              greeting.ok() ? std::get<std::string>(*greeting).c_str()
                            : greeting.status().ToString().c_str());

  // 6. A user without grants is denied — and the denial is audited.
  xsec::PrincipalId mallory = *sys.CreateUser("mallory");
  xsec::Subject intruder = sys.Login(mallory, sys.labels().Bottom());
  auto denied = sys.Invoke(intruder, "/svc/greet", {Value{std::string("mallory")}});
  std::printf("mallory invokes /svc/greet -> %s\n", denied.status().ToString().c_str());

  for (const auto& record : sys.monitor().audit().records()) {
    std::printf("audit: %s\n", record.ToString().c_str());
  }
  return 0;
}
