// SecureSystem: the top-level public API of the xsec library.
//
// Wires together the kernel (name space, principals, ACLs, labels, reference
// monitor, dispatcher) and the standard services (memfs, mbuf pool, threads,
// log, VFS) and applies usable defaults:
//
//   - a built-in group "everyone" that every user created through this
//     facade joins automatically;
//   - default ACLs making the service tree callable and the hierarchy
//     listable by everyone (specific nodes then restrict).
//
// Quickstart:
//
//   xsec::SecureSystem sys;
//   auto alice = sys.CreateUser("alice");
//   (void)sys.labels().DefineLevels({"others", "organization", "local"});
//   auto cls = sys.labels().MakeClass("local", {});
//   xsec::Subject subject = sys.Login(*alice, *cls);
//   auto result = sys.Invoke(subject, "/svc/fs/list", {xsec::Value{"/fs"}});

#ifndef XSEC_SRC_CORE_SECURE_SYSTEM_H_
#define XSEC_SRC_CORE_SECURE_SYSTEM_H_

#include <memory>
#include <string_view>

#include "src/extsys/kernel.h"
#include "src/extsys/supervisor.h"
#include "src/services/fault_service.h"
#include "src/services/health_service.h"
#include "src/services/log.h"
#include "src/services/mbuf.h"
#include "src/services/memfs.h"
#include "src/services/netstack.h"
#include "src/services/stats_service.h"
#include "src/services/threads.h"
#include "src/services/vfs.h"

namespace xsec {

class SecureSystem {
 public:
  explicit SecureSystem(MonitorOptions options = {});

  // -- Component access -------------------------------------------------------
  Kernel& kernel() { return kernel_; }
  ReferenceMonitor& monitor() { return kernel_.monitor(); }
  NameSpace& name_space() { return kernel_.name_space(); }
  PrincipalRegistry& principals() { return kernel_.principals(); }
  LabelAuthority& labels() { return kernel_.labels(); }
  MemFs& fs() { return *fs_; }
  MbufPool& mbufs() { return *mbufs_; }
  ThreadService& threads() { return *threads_; }
  LogService& log() { return *log_; }
  VfsService& vfs() { return *vfs_; }
  NetStack& net() { return *net_; }
  StatsService& stats() { return *stats_; }
  FaultService& faults() { return *faults_; }
  // Null until EnableSupervision.
  ExtensionSupervisor* supervisor() { return supervisor_.get(); }
  HealthService* health() { return health_.get(); }

  PrincipalId everyone() const { return everyone_; }
  PrincipalId system_principal() const { return kernel_.system_principal(); }
  Subject SystemSubject() { return kernel_.SystemSubject(); }

  // -- Principals -------------------------------------------------------------

  // Creates a user and adds it to "everyone".
  StatusOr<PrincipalId> CreateUser(std::string_view name);
  StatusOr<PrincipalId> CreateGroup(std::string_view name);

  // A fresh thread subject for `principal` at `security_class`. Trusted,
  // unchecked variant — tests and boot code use it; authentication-facing
  // code should use LoginChecked.
  Subject Login(PrincipalId principal, const SecurityClass& security_class);

  // Checked login: verifies the principal exists, authenticates the
  // credential if one is registered, and enforces the principal's clearance
  // (the requested class must be dominated by it).
  StatusOr<Subject> LoginChecked(std::string_view name, std::string_view credential,
                                 const SecurityClass& security_class);

  // Convenience: record a clearance for a user (trusted administrative op).
  Status SetClearance(PrincipalId user, const SecurityClass& clearance);

  // -- Forwarders for the common operations ------------------------------------
  StatusOr<Value> Invoke(Subject& subject, std::string_view path, Args args,
                         const CallOptions& options = {}) {
    return kernel_.Invoke(subject, path, std::move(args), options);
  }
  StatusOr<ExtensionId> LoadExtension(const ExtensionManifest& manifest, const Subject& loader) {
    return kernel_.LoadExtension(manifest, loader);
  }
  Status UnloadExtension(const Subject& subject, ExtensionId id) {
    return kernel_.UnloadExtension(subject, id);
  }

  // -- Supervision (docs/MODEL.md §16) ----------------------------------------

  // Opt-in: creates the extension supervisor (budgets, circuit breakers,
  // quarantine, the ring watchdog), attaches it to the kernel so every
  // subsequently loaded extension is supervised, mounts the health telemetry
  // under /sys/monitor/health/, and installs the mediated /svc/health
  // control plane. Idempotent after the first call (later calls return the
  // existing supervisor, ignoring `options`). Systems that never call this
  // keep pre-supervision behavior bit-for-bit.
  StatusOr<ExtensionSupervisor*> EnableSupervision(SupervisorOptions options = {});

 private:
  Status InstallDefaults();

  Kernel kernel_;
  std::unique_ptr<MemFs> fs_;
  std::unique_ptr<MbufPool> mbufs_;
  std::unique_ptr<ThreadService> threads_;
  std::unique_ptr<LogService> log_;
  std::unique_ptr<VfsService> vfs_;
  std::unique_ptr<NetStack> net_;
  std::unique_ptr<StatsService> stats_;
  std::unique_ptr<FaultService> faults_;
  // Supervision plane (EnableSupervision). Declared after the services it
  // feeds telemetry to, before kernel teardown in reverse order: the
  // supervisor's watchdog joins before the kernel it references dies.
  std::unique_ptr<ExtensionSupervisor> supervisor_;
  std::unique_ptr<HealthService> health_;
  PrincipalId everyone_;
};

}  // namespace xsec

#endif  // XSEC_SRC_CORE_SECURE_SYSTEM_H_
