file(REMOVE_RECURSE
  "CMakeFiles/xsec_core.dir/applet_example.cc.o"
  "CMakeFiles/xsec_core.dir/applet_example.cc.o.d"
  "CMakeFiles/xsec_core.dir/flow_sim.cc.o"
  "CMakeFiles/xsec_core.dir/flow_sim.cc.o.d"
  "CMakeFiles/xsec_core.dir/scenarios.cc.o"
  "CMakeFiles/xsec_core.dir/scenarios.cc.o.d"
  "CMakeFiles/xsec_core.dir/secure_system.cc.o"
  "CMakeFiles/xsec_core.dir/secure_system.cc.o.d"
  "libxsec_core.a"
  "libxsec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
