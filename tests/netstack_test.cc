#include "src/services/netstack.h"

#include <gtest/gtest.h>

#include "src/core/secure_system.h"

namespace xsec {
namespace {

std::vector<uint8_t> Bytes(std::string_view text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

// A protocol implementation that upper-cases the payload, tagged per class.
HandlerFn UppercaseProto() {
  return [](CallContext& ctx) -> StatusOr<Value> {
    auto payload = ArgBytes(ctx.args, 1);
    if (!payload.ok()) {
      return payload.status();
    }
    std::vector<uint8_t> out = *payload;
    for (uint8_t& c : out) {
      if (c >= 'a' && c <= 'z') {
        c = static_cast<uint8_t>(c - 'a' + 'A');
      }
    }
    return Value{out};
  };
}

class NetStackTest : public ::testing::Test {
 protected:
  NetStackTest() {
    (void)sys_.labels().DefineLevels({"low", "high"});
    dev_user_ = *sys_.CreateUser("proto-dev");
    user_user_ = *sys_.CreateUser("user");
    other_user_ = *sys_.CreateUser("other");
    high_ = *sys_.labels().MakeClass("high", {});
    dev_ = sys_.Login(dev_user_, sys_.labels().Bottom());
    user_ = sys_.Login(user_user_, sys_.labels().Bottom());
    other_ = sys_.Login(other_user_, sys_.labels().Bottom());

    NodeId iface = *sys_.net().CreateProtocol("upper", sys_.system_principal());
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, dev_user_, AccessModeSet(AccessMode::kExtend)});
    acl.AddEntry({AclEntryType::kAllow, sys_.everyone(),
                  AccessMode::kExecute | AccessMode::kList});
    (void)sys_.name_space().SetAclRef(iface, sys_.kernel().acls().Create(std::move(acl)));
  }

  StatusOr<ExtensionId> LoadProto(std::string name = "upper-impl",
                                  std::optional<SecurityClass> cls = {}) {
    ExtensionManifest manifest;
    manifest.name = std::move(name);
    manifest.static_class = cls;
    manifest.exports.push_back(
        {sys_.net().ProtocolInterfacePath("upper"), UppercaseProto()});
    return sys_.LoadExtension(manifest, dev_);
  }

  StatusOr<ExtensionId> LoadFilter(std::string name, uint8_t forbidden_first_byte) {
    ExtensionManifest manifest;
    manifest.name = std::move(name);
    manifest.exports.push_back(
        {"/svc/net/filter", [forbidden_first_byte](CallContext& ctx) -> StatusOr<Value> {
           auto payload = ArgBytes(ctx.args, 2);
           if (!payload.ok()) {
             return payload.status();
           }
           return Value{payload->empty() || (*payload)[0] != forbidden_first_byte};
         }});
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, dev_user_,
                  AccessMode::kExtend | AccessMode::kExecute});
    (void)sys_.name_space().SetAclRef(sys_.net().filter_interface(),
                                      sys_.kernel().acls().Create(std::move(acl)));
    return sys_.LoadExtension(manifest, dev_);
  }

  SecureSystem sys_;
  PrincipalId dev_user_, user_user_, other_user_;
  SecurityClass high_;
  Subject dev_, user_, other_;
};

TEST_F(NetStackTest, DeviceLifecycleAndDelivery) {
  ASSERT_TRUE(LoadProto().ok());
  ASSERT_TRUE(sys_.net().CreateDevice(user_, "eth0").ok());
  auto delivered = sys_.net().Inject(user_, "eth0", "upper", Bytes("hello"));
  ASSERT_TRUE(delivered.ok()) << delivered.status();
  EXPECT_TRUE(*delivered);
  EXPECT_EQ(*sys_.net().Delivered(user_, "eth0"), 1);
  // The device is a named, protected object.
  EXPECT_TRUE(sys_.name_space().Lookup("/obj/net/eth0").ok());
}

TEST_F(NetStackTest, DevicesArePerOwnerProtected) {
  ASSERT_TRUE(LoadProto().ok());
  ASSERT_TRUE(sys_.net().CreateDevice(user_, "eth0").ok());
  // Another principal can neither inject into nor read the device.
  EXPECT_EQ(sys_.net().Inject(other_, "eth0", "upper", Bytes("x")).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(sys_.net().Delivered(other_, "eth0").status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(sys_.net().Send(other_, "eth0", Bytes("x")).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(NetStackTest, DuplicateAndInvalidDevices) {
  ASSERT_TRUE(sys_.net().CreateDevice(user_, "eth0").ok());
  EXPECT_EQ(sys_.net().CreateDevice(user_, "eth0").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(sys_.net().CreateDevice(user_, "bad/name").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sys_.net().Inject(user_, "missing", "upper", {}).status().code(),
            StatusCode::kNotFound);
}

TEST_F(NetStackTest, UnimplementedProtocolIsNotFound) {
  ASSERT_TRUE(sys_.net().CreateDevice(user_, "eth0").ok());
  EXPECT_EQ(sys_.net().Inject(user_, "eth0", "upper", Bytes("x")).status().code(),
            StatusCode::kNotFound);  // no handler registered yet
  EXPECT_EQ(sys_.net().Inject(user_, "eth0", "nosuch", Bytes("x")).status().code(),
            StatusCode::kNotFound);  // no such interface at all
}

TEST_F(NetStackTest, ProtocolHandlerProcessesPayload) {
  ASSERT_TRUE(LoadProto().ok());
  ASSERT_TRUE(sys_.net().CreateDevice(user_, "eth0").ok());
  ASSERT_TRUE(sys_.net().Inject(user_, "eth0", "upper", Bytes("abc")).ok());
  // Delivered payloads pass through the extension (upper-cased).
  // Reach into the service via a second injection + count check, then use
  // the send queue for a distinguishable observation.
  EXPECT_EQ(*sys_.net().Delivered(user_, "eth0"), 1);
  ASSERT_TRUE(sys_.net().Send(user_, "eth0", Bytes("out")).ok());
  EXPECT_EQ(*sys_.net().TxQueued(user_, "eth0"), 1);
}

TEST_F(NetStackTest, FiltersDropPackets) {
  ASSERT_TRUE(LoadProto().ok());
  ASSERT_TRUE(LoadFilter("no-x", 'x').ok());
  ASSERT_TRUE(sys_.net().CreateDevice(dev_, "eth0").ok());
  auto passed = sys_.net().Inject(dev_, "eth0", "upper", Bytes("allowed"));
  ASSERT_TRUE(passed.ok());
  EXPECT_TRUE(*passed);
  auto dropped = sys_.net().Inject(dev_, "eth0", "upper", Bytes("xblocked"));
  ASSERT_TRUE(dropped.ok());
  EXPECT_FALSE(*dropped);
  EXPECT_EQ(sys_.net().packets_filtered(), 1u);
  EXPECT_EQ(*sys_.net().Delivered(dev_, "eth0"), 1);
}

TEST_F(NetStackTest, AllFiltersMustPass) {
  ASSERT_TRUE(LoadProto().ok());
  ASSERT_TRUE(LoadFilter("no-x", 'x').ok());
  ASSERT_TRUE(LoadFilter("no-y", 'y').ok());
  ASSERT_TRUE(sys_.net().CreateDevice(dev_, "eth0").ok());
  EXPECT_FALSE(*sys_.net().Inject(dev_, "eth0", "upper", Bytes("x1")));
  EXPECT_FALSE(*sys_.net().Inject(dev_, "eth0", "upper", Bytes("y2")));
  EXPECT_TRUE(*sys_.net().Inject(dev_, "eth0", "upper", Bytes("z3")));
}

TEST_F(NetStackTest, ClassSelectedProtocolImplementations) {
  // Two implementations: the baseline at ⊥ and a premium one at high.
  ASSERT_TRUE(LoadProto("upper-low", sys_.labels().Bottom()).ok());
  ASSERT_TRUE(LoadProto("upper-high", high_).ok());
  Subject user_high = sys_.Login(user_user_, high_);
  ASSERT_TRUE(sys_.net().CreateDevice(user_high, "hi0").ok());
  ASSERT_TRUE(sys_.net().CreateDevice(user_, "lo0").ok());
  // Both callers are served (each by an implementation they dominate).
  EXPECT_TRUE(*sys_.net().Inject(user_high, "hi0", "upper", Bytes("a")));
  EXPECT_TRUE(*sys_.net().Inject(user_, "lo0", "upper", Bytes("b")));
  // A low subject may still inject into the high device — that is a blind
  // append up, legal under the ⋆-property — but it can never read it back.
  EXPECT_TRUE(*sys_.net().Inject(user_, "hi0", "upper", Bytes("c")));
  EXPECT_EQ(sys_.net().Delivered(user_, "hi0").status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(*sys_.net().Delivered(user_high, "hi0"), 2);
}

TEST_F(NetStackTest, ExtendGrantRequiredForProtocolImplementations) {
  ExtensionManifest manifest;
  manifest.name = "rogue";
  manifest.exports.push_back({sys_.net().ProtocolInterfacePath("upper"), UppercaseProto()});
  EXPECT_EQ(sys_.LoadExtension(manifest, other_).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(NetStackTest, ProcedureInterface) {
  ASSERT_TRUE(LoadProto().ok());
  ASSERT_TRUE(sys_.Invoke(user_, "/svc/net/create_device", {Value{std::string("eth1")}}).ok());
  auto delivered = sys_.Invoke(user_, "/svc/net/inject",
                               {Value{std::string("eth1")}, Value{std::string("upper")},
                                Value{Bytes("hi")}});
  ASSERT_TRUE(delivered.ok()) << delivered.status();
  EXPECT_TRUE(std::get<bool>(*delivered));
  auto count = sys_.Invoke(user_, "/svc/net/delivered", {Value{std::string("eth1")}});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(std::get<int64_t>(*count), 1);
}

}  // namespace
}  // namespace xsec
