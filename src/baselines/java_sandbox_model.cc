#include "src/baselines/java_sandbox_model.h"

#include "src/base/strings.h"

namespace xsec {

bool JavaSandboxModel::Allows(const BaselineWorld& world, const BaselineSubject& subject,
                              const BaselineObject& object, AccessMode mode) const {
  (void)mode;
  // Local code is trusted with everything.
  if (subject.origin == Origin::kLocal) {
    return true;
  }
  // A broken prong breaks the whole sandbox: untrusted code escapes.
  if (!world.java_verifier_ok || !world.java_classloader_ok ||
      !world.java_security_manager_ok) {
    return true;
  }
  // Untrusted code: the sandbox blocks local file-system and directory
  // access wholesale (no finer granularity exists in the 1.x model)…
  if (object.category == ObjectCategory::kFile ||
      object.category == ObjectCategory::kDirectory) {
    return false;
  }
  // …but does NOT isolate applets from each other: thread objects of other
  // applets are reachable (ThreadMurder). Services inside the sandbox are
  // callable and extensible without distinction.
  return true;
}

}  // namespace xsec
