// Experiment F12 — subscription fan-out cost on the publish path.
//
// Tick() pushes each newly published epoch to every subscriber channel, so
// the publisher pays O(subscribers) per epoch. The tentpole claim is that a
// slow or absent consumer never wedges publication: under kDropOldest the
// per-channel work is a deque rotation and a counter bump even when every
// queue is full. The figure sweeps:
//
//   PublishFanOut/subscribers:<n>   one mediated check + Tick, n channels
//                                   under kDropOldest, none draining
//   SubscribeUnsubscribe            admission check + channel mount/unmount
//                                   round trip (the control-plane cost)
//   MultiSinkDrain/sinks:<n>        audit fan-out: one batch recorded, n
//                                   registered sinks each ~20us per record,
//                                   lanes drain in parallel until Flush
//
// Expected shape: with the RCU-published epoch pointer the publisher's cost
// is ~flat in n — the fan-out step per channel is a pointer push, so the
// n:64 cell should sit within ~10% of n:1 (ci/check_bench_f12.py gates
// this). items_per_second counts published epochs.
//
// MultiSinkDrain uses real time: each lane's sink sleeps ~20us per record,
// so with 2 lanes the sleeps overlap across drainer threads and total
// sink-deliveries/sec should be >= 1.5x the single-sink lane even on one
// core (the gate in ci/check_bench_f12.py). stitch_violations must be 0.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/extsys/kernel.h"
#include "src/monitor/audit.h"
#include "src/services/stats_service.h"

namespace xsec {
namespace {

StatsServiceOptions BenchOptions() {
  StatsServiceOptions options;
  // Publication is driven by the explicit Tick below; a huge epoch interval
  // keeps the self-clocking read paths out of the measurement.
  options.epoch_interval_ns = uint64_t{3600} * 1'000'000'000;
  options.max_subscribers = 1024;
  // Every bench channel belongs to the system principal; the per-principal
  // quota would cap the sweep at 4 subscribers.
  options.max_channels_per_principal = 0;
  return options;
}

void BM_PublishFanOut(benchmark::State& state) {
  Kernel kernel;
  StatsService stats(&kernel, BenchOptions());
  if (!stats.Install().ok()) {
    state.SkipWithError("Install failed");
    return;
  }
  Subject system = kernel.SystemSubject();
  std::vector<uint64_t> ids;
  for (int64_t i = 0; i < state.range(0); ++i) {
    auto id = stats.Subscribe(system, -1, SubscriberBackpressure::kDropOldest);
    if (!id.ok()) {
      state.SkipWithError("Subscribe failed");
      return;
    }
    ids.push_back(*id);
  }
  NodeId root = kernel.name_space().root();
  for (auto _ : state) {
    // A counter has to move or Tick publishes nothing; one mediated check is
    // the cheapest way to guarantee a fresh epoch every iteration.
    benchmark::DoNotOptimize(kernel.monitor().Check(system, root, AccessMode::kList));
    benchmark::DoNotOptimize(stats.Tick());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["dropped"] =
      static_cast<double>(stats.subscriber_dropped_total());
  for (uint64_t id : ids) {
    (void)stats.Unsubscribe(system, id);
  }
}
BENCHMARK(BM_PublishFanOut)
    ->ArgName("subscribers")
    ->Arg(0)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64);

void BM_SubscribeUnsubscribe(benchmark::State& state) {
  Kernel kernel;
  StatsService stats(&kernel, BenchOptions());
  if (!stats.Install().ok()) {
    state.SkipWithError("Install failed");
    return;
  }
  Subject system = kernel.SystemSubject();
  for (auto _ : state) {
    auto id = stats.Subscribe(system, -1);
    if (!id.ok()) {
      state.SkipWithError("Subscribe failed");
      return;
    }
    (void)stats.Unsubscribe(system, *id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubscribeUnsubscribe);

void BM_MultiSinkDrain(benchmark::State& state) {
  const int64_t sinks = state.range(0);
  AuditLog log(/*capacity=*/1 << 16);
  log.set_policy(AuditPolicy::kAll);
  for (int64_t i = 0; i < sinks; ++i) {
    // A sink that costs ~20us per record: the drain time is sleep-dominated,
    // so parallel lanes overlap their sleeps even on a single core.
    log.AddSink("bench" + std::to_string(i), [](const AuditRecord&) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    });
  }
  log.StartFanOut();
  AuditRecord record;
  record.principal = PrincipalId{1};
  record.thread_id = 7;
  record.node = NodeId{1};
  record.path = "/svc/fs/read";
  record.modes = AccessMode::kRead;
  record.allowed = false;
  record.reason = DenyReason::kDacNoGrant;
  constexpr int kBatch = 64;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      log.Record(record);
    }
    // Flush blocks until every lane has emptied its shards, so an iteration
    // measures enqueue + full parallel drain.
    log.Flush();
  }
  log.StopFanOut();
  // Each lane delivers the whole stream: total sink-deliveries scale with
  // the sink count while wall time stays ~flat when lanes overlap.
  state.SetItemsProcessed(state.iterations() * kBatch * sinks);
  state.counters["stitch_violations"] =
      static_cast<double>(log.fanout_stitch_violations());
  state.counters["fanout_dropped"] =
      static_cast<double>(log.fanout_dropped());
}
BENCHMARK(BM_MultiSinkDrain)
    ->ArgName("sinks")
    ->Arg(1)
    ->Arg(2)
    ->UseRealTime();

}  // namespace
}  // namespace xsec

BENCHMARK_MAIN();
