#include "src/baselines/spin_domain_model.h"

namespace xsec {

bool SpinDomainModel::Allows(const BaselineWorld& world, const BaselineSubject& subject,
                             const BaselineObject& object, AccessMode mode) const {
  (void)mode;  // all modes collapse to "linked against the domain"
  auto it = world.spin_links.find(subject.name);
  if (it == world.spin_links.end()) {
    return false;
  }
  if (object.spin_domain.empty()) {
    // Data objects are outside the domain mechanism; any linked extension
    // reaches them (type safety, not access control, is the only barrier).
    return !it->second.empty();
  }
  return it->second.count(object.spin_domain) != 0;
}

}  // namespace xsec
