#include "src/dac/acl.h"

#include <algorithm>
#include <mutex>

#include "src/base/strings.h"

namespace xsec {

Acl::EntryList* Acl::MutableEntries() {
  if (entries_ == nullptr) {
    auto fresh = std::make_shared<EntryList>();
    EntryList* raw = fresh.get();
    entries_ = std::move(fresh);
    return raw;
  }
  // Clone only when the list is aliased (interned or copied); a uniquely
  // owned list is edited in place.
  if (entries_.use_count() > 1) {
    auto clone = std::make_shared<EntryList>(*entries_);
    EntryList* raw = clone.get();
    entries_ = std::move(clone);
    return raw;
  }
  return const_cast<EntryList*>(entries_.get());
}

void Acl::AddEntry(const AclEntry& entry) {
  EntryList* entries = MutableEntries();
  for (AclEntry& existing : *entries) {
    if (existing.type == entry.type && existing.who == entry.who) {
      existing.modes |= entry.modes;
      return;
    }
  }
  entries->push_back(entry);
}

size_t Acl::RemoveEntriesFor(PrincipalId who) {
  if (entries_ == nullptr) {
    return 0;
  }
  bool any = false;
  for (const AclEntry& e : *entries_) {
    any |= e.who == who;
  }
  if (!any) {
    return 0;  // no clone when nothing would change
  }
  EntryList* entries = MutableEntries();
  size_t before = entries->size();
  entries->erase(std::remove_if(entries->begin(), entries->end(),
                                [who](const AclEntry& e) { return e.who == who; }),
                 entries->end());
  return before - entries->size();
}

AclVerdict Acl::Evaluate(const DynamicBitset& closure, AccessModeSet requested) const {
  if (requested.empty()) {
    return AclVerdict::kGranted;
  }
  AccessModeSet allowed;
  for (const AclEntry& entry : entries()) {
    if (!closure.Test(entry.who.value)) {
      continue;
    }
    if (entry.type == AclEntryType::kDeny) {
      if (entry.modes.Intersects(requested)) {
        return AclVerdict::kDeniedByEntry;
      }
    } else {
      allowed |= entry.modes;
    }
  }
  return allowed.ContainsAll(requested) ? AclVerdict::kGranted : AclVerdict::kNoMatchingGrant;
}

AccessModeSet Acl::EffectiveModes(const DynamicBitset& closure) const {
  AccessModeSet allowed;
  AccessModeSet denied;
  for (const AclEntry& entry : entries()) {
    if (!closure.Test(entry.who.value)) {
      continue;
    }
    if (entry.type == AclEntryType::kDeny) {
      denied |= entry.modes;
    } else {
      allowed |= entry.modes;
    }
  }
  return allowed - denied;
}

std::string Acl::ToString() const {
  std::string out;
  for (const AclEntry& entry : entries()) {
    if (!out.empty()) {
      out += "; ";
    }
    out += entry.type == AclEntryType::kAllow ? "allow" : "deny";
    out += StrFormat(" p%u %s", entry.who.value, entry.modes.ToString().c_str());
  }
  return out.empty() ? "(empty)" : out;
}

namespace {

uint64_t HashEntries(const Acl::EntryList& entries) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const AclEntry& e : entries) {
    mix(static_cast<uint64_t>(e.type));
    mix(e.who.value);
    mix(e.modes.bits());
  }
  return h;
}

}  // namespace

AclStore::AclRef AclStore::Create(Acl acl) { return Create(std::move(acl), kUnknownShard); }

AclStore::AclRef AclStore::Create(Acl acl, ShardId shard) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Intern the entry list into the shard-local pool: identical ACLs (the
  // overwhelmingly common case in a generated million-node policy) collapse
  // to one immutable vector shared by every slot that carries them.
  if (!acl.empty()) {
    auto& pool = intern_pools_[IsConcreteShard(shard) ? shard : kMonitorShardCount];
    uint64_t hash = HashEntries(acl.entries());
    auto [it, end] = pool.equal_range(hash);
    bool hit = false;
    for (; it != end; ++it) {
      if (*it->second == acl.entries()) {
        acl = Acl(it->second);
        hit = true;
        break;
      }
    }
    if (hit) {
      intern_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      std::shared_ptr<const Acl::EntryList> canon = acl.shared_entries();
      pool.emplace(hash, std::move(canon));
      intern_unique_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  AclRef ref = static_cast<AclRef>(acls_.size());
  acls_.push_back(Slot{std::move(acl), 0, shard});
  // Mutate, then publish: readers that observe the new generation also see
  // the new ACL (the lock orders the data; release orders the stamp). A
  // create bumps no *per-shard* generation: the fresh ref is not yet
  // reachable from any node, so no cached decision can depend on it.
  acls_.back().generation = store_generation_.fetch_add(1, std::memory_order_release) + 1;
  return ref;
}

void AclStore::AttachShard(AclRef ref, ShardId shard) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (ref >= acls_.size()) {
    return;
  }
  Slot& slot = acls_[ref];
  if (slot.shard == shard) {
    return;
  }
  if (slot.shard == kUnknownShard) {
    // First attachment narrows the tag (or records kAllShards for the root).
    slot.shard = IsConcreteShard(shard) ? shard : kAllShards;
  } else {
    // Referenced from two different domains: mutations must invalidate both,
    // so escalate permanently to the conservative tag.
    slot.shard = kAllShards;
  }
}

ShardId AclStore::ShardOf(AclRef ref) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (ref >= acls_.size()) {
    return kUnknownShard;
  }
  return acls_[ref].shard;
}

void AclStore::BumpLocked(Slot& slot) {
  if (IsConcreteShard(slot.shard)) {
    shard_generation_[slot.shard].fetch_add(1, std::memory_order_release);
  } else {
    // Unknown or multi-shard slots: every shard's decisions may read this
    // ACL, so all of them go stale ("spuriously stale, never wrongly fresh").
    for (auto& g : shard_generation_) {
      g.fetch_add(1, std::memory_order_release);
    }
  }
  slot.generation = store_generation_.fetch_add(1, std::memory_order_release) + 1;
}

const Acl* AclStore::Get(AclRef ref) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (ref >= acls_.size()) {
    return nullptr;
  }
  return &acls_[ref].acl;
}

AclVerdict AclStore::Evaluate(AclRef ref, const DynamicBitset& closure,
                              AccessModeSet requested) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (ref >= acls_.size()) {
    return requested.empty() ? AclVerdict::kGranted : AclVerdict::kNoMatchingGrant;
  }
  return acls_[ref].acl.Evaluate(closure, requested);
}

bool AclStore::CopyAcl(AclRef ref, Acl* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (ref >= acls_.size()) {
    return false;
  }
  *out = acls_[ref].acl;
  return true;
}

Status AclStore::Replace(AclRef ref, Acl acl) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (ref >= acls_.size()) {
    return NotFoundError("no such ACL");
  }
  acls_[ref].acl = std::move(acl);
  BumpLocked(acls_[ref]);
  return OkStatus();
}

Status AclStore::AddEntry(AclRef ref, const AclEntry& entry) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (ref >= acls_.size()) {
    return NotFoundError("no such ACL");
  }
  acls_[ref].acl.AddEntry(entry);
  BumpLocked(acls_[ref]);
  return OkStatus();
}

Status AclStore::RemoveEntriesFor(AclRef ref, PrincipalId who) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (ref >= acls_.size()) {
    return NotFoundError("no such ACL");
  }
  acls_[ref].acl.RemoveEntriesFor(who);
  BumpLocked(acls_[ref]);
  return OkStatus();
}

uint64_t AclStore::GenerationOf(AclRef ref) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (ref >= acls_.size()) {
    return 0;
  }
  return acls_[ref].generation;
}

size_t AclStore::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return acls_.size();
}

}  // namespace xsec
