#include "src/services/memfs.h"

#include <algorithm>

#include "src/base/failpoint.h"
#include "src/base/strings.h"
#include "src/extsys/cooperative_budget.h"

namespace xsec {

namespace {

// Bulk content copies poll for cancellation once per this many bytes; a
// caller abandoning a multi-megabyte read stops paying for it within one
// chunk instead of at the end.
constexpr size_t kCopyChunkBytes = 64 * 1024;

// Directory scans poll once per this many entries.
constexpr uint64_t kScanPollEntries = 64;

}  // namespace

MemFs::MemFs(Kernel* kernel, std::string mount_path, std::string service_path)
    : kernel_(kernel), mount_path_(std::move(mount_path)), service_path_(std::move(service_path)) {}

Status MemFs::Install() {
  PrincipalId system = kernel_->system_principal();
  auto mount = kernel_->name_space().BindPath(mount_path_, NodeKind::kDirectory, system);
  if (!mount.ok()) {
    return mount.status();
  }
  auto svc = kernel_->RegisterService(service_path_, system);
  if (!svc.ok()) {
    return svc.status();
  }

  auto proc = [this, system](std::string_view name, HandlerFn fn) -> Status {
    auto node = kernel_->RegisterProcedure(JoinPath(service_path_, name), system, std::move(fn));
    return node.ok() ? OkStatus() : node.status();
  };

  XSEC_RETURN_IF_ERROR(proc("create", [this](CallContext& ctx) -> StatusOr<Value> {
    auto path = ArgString(ctx.args, 0);
    if (!path.ok()) {
      return path.status();
    }
    auto node = Create(*ctx.subject, *path);
    if (!node.ok()) {
      return node.status();
    }
    return Value{static_cast<int64_t>(node->value)};
  }));
  XSEC_RETURN_IF_ERROR(proc("mkdir", [this](CallContext& ctx) -> StatusOr<Value> {
    auto path = ArgString(ctx.args, 0);
    if (!path.ok()) {
      return path.status();
    }
    auto node = MkDir(*ctx.subject, *path);
    if (!node.ok()) {
      return node.status();
    }
    return Value{static_cast<int64_t>(node->value)};
  }));
  XSEC_RETURN_IF_ERROR(proc("read", [this](CallContext& ctx) -> StatusOr<Value> {
    auto path = ArgString(ctx.args, 0);
    if (!path.ok()) {
      return path.status();
    }
    auto data = Read(*ctx.subject, *path, &ctx);
    if (!data.ok()) {
      return data.status();
    }
    return Value{std::move(*data)};
  }));
  XSEC_RETURN_IF_ERROR(proc("write", [this](CallContext& ctx) -> StatusOr<Value> {
    auto path = ArgString(ctx.args, 0);
    auto data = ArgBytes(ctx.args, 1);
    if (!path.ok()) {
      return path.status();
    }
    if (!data.ok()) {
      return data.status();
    }
    XSEC_RETURN_IF_ERROR(Write(*ctx.subject, *path, std::move(*data), &ctx));
    return Value{true};
  }));
  XSEC_RETURN_IF_ERROR(proc("append", [this](CallContext& ctx) -> StatusOr<Value> {
    auto path = ArgString(ctx.args, 0);
    auto data = ArgBytes(ctx.args, 1);
    if (!path.ok()) {
      return path.status();
    }
    if (!data.ok()) {
      return data.status();
    }
    XSEC_RETURN_IF_ERROR(Append(*ctx.subject, *path, *data, &ctx));
    return Value{true};
  }));
  XSEC_RETURN_IF_ERROR(proc("remove", [this](CallContext& ctx) -> StatusOr<Value> {
    auto path = ArgString(ctx.args, 0);
    if (!path.ok()) {
      return path.status();
    }
    XSEC_RETURN_IF_ERROR(Remove(*ctx.subject, *path));
    return Value{true};
  }));
  XSEC_RETURN_IF_ERROR(proc("list", [this](CallContext& ctx) -> StatusOr<Value> {
    auto path = ArgString(ctx.args, 0);
    if (!path.ok()) {
      return path.status();
    }
    auto names = ListDir(*ctx.subject, *path, &ctx);
    if (!names.ok()) {
      return names.status();
    }
    return Value{StrJoin(*names, "\n")};
  }));
  XSEC_RETURN_IF_ERROR(proc("stat", [this](CallContext& ctx) -> StatusOr<Value> {
    auto path = ArgString(ctx.args, 0);
    if (!path.ok()) {
      return path.status();
    }
    auto size = Stat(*ctx.subject, *path);
    if (!size.ok()) {
      return size.status();
    }
    return Value{*size};
  }));
  return OkStatus();
}

StatusOr<NodeId> MemFs::CreateFileAsSystem(std::string_view path, std::vector<uint8_t> contents) {
  if (!StartsWith(path, mount_path_ + "/")) {
    return InvalidArgumentError(
        StrFormat("'%s' is outside the mount '%s'", std::string(path).c_str(),
                  mount_path_.c_str()));
  }
  auto node = kernel_->name_space().BindPath(path, NodeKind::kFile, kernel_->system_principal());
  if (!node.ok()) {
    return node.status();
  }
  contents_[node->value] = std::move(contents);
  return node;
}

StatusOr<NodeId> MemFs::ResolveChecked(Subject& subject, std::string_view path,
                                       AccessModeSet modes, NodeKind kind) {
  if (!StartsWith(path, mount_path_ + "/") && path != mount_path_) {
    return InvalidArgumentError(
        StrFormat("'%s' is outside the mount '%s'", std::string(path).c_str(),
                  mount_path_.c_str()));
  }
  NodeId node;
  Decision decision = kernel_->monitor().CheckPath(subject, path, modes, &node);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  const Node* n = kernel_->name_space().Get(node);
  if (n->kind != kind) {
    return FailedPreconditionError(
        StrFormat("'%s' is a %s, expected %s", std::string(path).c_str(),
                  std::string(NodeKindName(n->kind)).c_str(),
                  std::string(NodeKindName(kind)).c_str()));
  }
  return node;
}

StatusOr<NodeId> MemFs::Create(Subject& subject, std::string_view path) {
  auto parent = ResolveChecked(subject, ParentPath(path), AccessMode::kWrite,
                               NodeKind::kDirectory);
  if (!parent.ok()) {
    return parent.status();
  }
  auto node = kernel_->name_space().Bind(*parent, Basename(path), NodeKind::kFile,
                                         subject.principal);
  if (!node.ok()) {
    return node.status();
  }
  contents_[node->value] = {};
  return node;
}

StatusOr<NodeId> MemFs::MkDir(Subject& subject, std::string_view path) {
  auto parent = ResolveChecked(subject, ParentPath(path), AccessMode::kWrite,
                               NodeKind::kDirectory);
  if (!parent.ok()) {
    return parent.status();
  }
  return kernel_->name_space().Bind(*parent, Basename(path), NodeKind::kDirectory,
                                    subject.principal);
}

StatusOr<std::vector<uint8_t>> MemFs::Read(Subject& subject, std::string_view path,
                                           const CallContext* call) {
  auto node = ResolveChecked(subject, path, AccessMode::kRead, NodeKind::kFile);
  if (!node.ok()) {
    return node.status();
  }
  // Post-mediation I/O fault site: the check allowed, the device failed.
  XSEC_FAILPOINT("memfs.read");
  const std::vector<uint8_t>& src = contents_[node->value];
  CooperativeBudget budget(call, kCopyChunkBytes);
  std::vector<uint8_t> out;
  out.reserve(src.size());
  for (size_t off = 0; off < src.size(); off += kCopyChunkBytes) {
    const size_t len = std::min(kCopyChunkBytes, src.size() - off);
    XSEC_RETURN_IF_ERROR(budget.Charge(len));
    out.insert(out.end(), src.begin() + static_cast<ptrdiff_t>(off),
               src.begin() + static_cast<ptrdiff_t>(off + len));
  }
  return out;
}

Status MemFs::Write(Subject& subject, std::string_view path, std::vector<uint8_t> data,
                    const CallContext* call) {
  auto node = ResolveChecked(subject, path, AccessMode::kWrite, NodeKind::kFile);
  if (!node.ok()) {
    return node.status();
  }
  // Fires before any mutation, so an injected failure leaves the old
  // contents fully intact.
  XSEC_FAILPOINT("memfs.write");
  // The overwrite itself is one O(1) move, so it is a single work unit: poll
  // once before committing, and a cancelled caller leaves the old contents
  // fully intact.
  if (call != nullptr) {
    XSEC_RETURN_IF_ERROR(call->CheckDeadline());
  }
  contents_[node->value] = std::move(data);
  return OkStatus();
}

Status MemFs::Append(Subject& subject, std::string_view path,
                     const std::vector<uint8_t>& data, const CallContext* call) {
  // Either write-append or full write suffices; try the narrower mode first.
  auto node = ResolveChecked(subject, path, AccessMode::kWriteAppend, NodeKind::kFile);
  if (!node.ok()) {
    node = ResolveChecked(subject, path, AccessMode::kWrite, NodeKind::kFile);
  }
  if (!node.ok()) {
    return node.status();
  }
  // Same contract as the cancellation rollback below: an injected failure
  // here (or mid-copy) must never leave a torn suffix behind.
  XSEC_FAILPOINT("memfs.append");
  std::vector<uint8_t>& dst = contents_[node->value];
  const size_t old_size = dst.size();
  CooperativeBudget budget(call, kCopyChunkBytes);
  for (size_t off = 0; off < data.size(); off += kCopyChunkBytes) {
    const size_t len = std::min(kCopyChunkBytes, data.size() - off);
    Status deadline = budget.Charge(len);
    if (!deadline.ok()) {
      // Roll back the partial append: a cancelled call must not leave a
      // torn suffix behind.
      dst.resize(old_size);
      return deadline;
    }
    dst.insert(dst.end(), data.begin() + static_cast<ptrdiff_t>(off),
               data.begin() + static_cast<ptrdiff_t>(off + len));
  }
  return OkStatus();
}

Status MemFs::Remove(Subject& subject, std::string_view path) {
  auto node = ResolveChecked(subject, path, AccessMode::kDelete, NodeKind::kFile);
  if (!node.ok()) {
    return node.status();
  }
  auto parent = ResolveChecked(subject, ParentPath(path), AccessMode::kWrite,
                               NodeKind::kDirectory);
  if (!parent.ok()) {
    return parent.status();
  }
  XSEC_RETURN_IF_ERROR(kernel_->name_space().Unbind(*node));
  contents_.erase(node->value);
  return OkStatus();
}

StatusOr<std::vector<std::string>> MemFs::ListDir(Subject& subject, std::string_view path,
                                                  const CallContext* call) {
  auto node = ResolveChecked(subject, path, AccessMode::kList, NodeKind::kDirectory);
  if (!node.ok()) {
    return node.status();
  }
  XSEC_FAILPOINT("memfs.list");
  auto children = kernel_->name_space().List(*node);
  if (!children.ok()) {
    return children.status();
  }
  CooperativeBudget budget(call, kScanPollEntries);
  std::vector<std::string> names;
  names.reserve(children->size());
  for (NodeId child : *children) {
    XSEC_RETURN_IF_ERROR(budget.Charge());
    names.push_back(kernel_->name_space().Get(child)->name);
  }
  return names;
}

StatusOr<int64_t> MemFs::Stat(Subject& subject, std::string_view path) {
  auto node = ResolveChecked(subject, path, AccessMode::kRead, NodeKind::kFile);
  if (!node.ok()) {
    return node.status();
  }
  return static_cast<int64_t>(contents_[node->value].size());
}

}  // namespace xsec
