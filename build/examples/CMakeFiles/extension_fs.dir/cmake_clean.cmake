file(REMOVE_RECURSE
  "CMakeFiles/extension_fs.dir/extension_fs.cpp.o"
  "CMakeFiles/extension_fs.dir/extension_fs.cpp.o.d"
  "extension_fs"
  "extension_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
