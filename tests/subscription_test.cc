// Tests for the persistent stats subscription channels: one admission check
// at Subscribe, a bounded per-subscriber epoch queue fed by Tick, drop-oldest
// vs block-publisher backpressure, owner-bound handles, and the
// /sys/monitor/subscribers/... telemetry.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/base/strings.h"
#include "src/core/secure_system.h"
#include "src/services/stats_service.h"

namespace xsec {
namespace {

// Publishing requires a counter to actually move: bump one with a mediated
// check, then Tick.
uint64_t Publish(Kernel& kernel, StatsService& stats) {
  Subject system = kernel.SystemSubject();
  (void)kernel.monitor().Check(system, kernel.name_space().root(), AccessMode::kList);
  return stats.Tick();
}

StatsServiceOptions ManualOptions() {
  StatsServiceOptions options;
  // No self-clocking during these tests: epochs are published only by an
  // explicit Tick, so queue contents are deterministic.
  options.epoch_interval_ns = uint64_t{3600} * 1'000'000'000;
  return options;
}

TEST(SubscriptionTest, PollDeliversEachPublishedEpoch) {
  Kernel kernel;
  StatsService stats(&kernel, ManualOptions());
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  auto id = stats.Subscribe(system, -1);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  uint64_t v1 = Publish(kernel, stats);
  uint64_t v2 = Publish(kernel, stats);
  ASSERT_GT(v2, v1);

  auto first = stats.PollSubscription(system, *id, /*deadline_ns=*/0);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = stats.PollSubscription(system, *id, /*deadline_ns=*/0);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first->find(StrFormat("version %llu", static_cast<unsigned long long>(v1))),
            std::string::npos);
  EXPECT_NE(second->find(StrFormat("version %llu", static_cast<unsigned long long>(v2))),
            std::string::npos);
}

TEST(SubscriptionTest, EmptyQueueTimesOut) {
  Kernel kernel;
  StatsService stats(&kernel, ManualOptions());
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  auto id = stats.Subscribe(system, -1);
  ASSERT_TRUE(id.ok());
  auto result =
      stats.PollSubscription(system, *id, MonotonicNowNs() + 30'000'000);  // 30ms
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(SubscriptionTest, StaleSinceSeedsOneCatchUpSnapshot) {
  Kernel kernel;
  StatsService stats(&kernel, ManualOptions());
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  Publish(kernel, stats);
  // The subscriber last saw version 0, i.e. it is behind: the channel opens
  // with the current snapshot already queued, no blocking needed.
  auto id = stats.Subscribe(system, 0);
  ASSERT_TRUE(id.ok());
  auto caught_up = stats.PollSubscription(system, *id, /*deadline_ns=*/0);
  ASSERT_TRUE(caught_up.ok()) << caught_up.status().ToString();
  EXPECT_NE(caught_up->find("version "), std::string::npos);
}

TEST(SubscriptionTest, AdmissionIsCheckedOnceAtSubscribe) {
  Kernel kernel;
  StatsService stats(&kernel, ManualOptions());
  ASSERT_TRUE(stats.Install().ok());
  auto intruder = kernel.principals().CreateUser("intruder");
  ASSERT_TRUE(intruder.ok());
  Subject intruder_s = kernel.CreateSubject(*intruder, kernel.labels().Bottom());
  // The fail-closed mount ACL denies the read that Subscribe mediates.
  auto denied = stats.Subscribe(intruder_s, -1);
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
}

TEST(SubscriptionTest, HandlesAreOwnerBound) {
  Kernel kernel;
  StatsService stats(&kernel, ManualOptions());
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  auto id = stats.Subscribe(system, -1);
  ASSERT_TRUE(id.ok());
  auto other = kernel.principals().CreateUser("other");
  ASSERT_TRUE(other.ok());
  Subject other_s = kernel.CreateSubject(*other, kernel.labels().Bottom());
  // A leaked or guessed handle number grants nothing to another principal.
  EXPECT_EQ(stats.PollSubscription(other_s, *id, 0).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(stats.Unsubscribe(other_s, *id).code(), StatusCode::kPermissionDenied);
  // The owner still holds a live channel.
  EXPECT_TRUE(stats.Unsubscribe(system, *id).ok());
}

TEST(SubscriptionTest, DropOldestShedsAndCountsWithoutBlockingTick) {
  Kernel kernel;
  StatsServiceOptions options = ManualOptions();
  options.subscriber_queue_capacity = 2;
  StatsService stats(&kernel, options);
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  auto id = stats.Subscribe(system, -1, SubscriberBackpressure::kDropOldest);
  ASSERT_TRUE(id.ok());

  // A subscriber that never drains: 6 published epochs into a queue of 2.
  auto start = std::chrono::steady_clock::now();
  uint64_t last_version = 0;
  for (int i = 0; i < 6; ++i) {
    last_version = Publish(kernel, stats);
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  // Drop-oldest applies no backpressure at all: well under the 50ms
  // publisher block cap even once per epoch.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 5000);

  // The drops are observable through the mediated telemetry tree.
  std::string base = StrFormat("/sys/monitor/subscribers/%llu",
                               static_cast<unsigned long long>(*id));
  auto dropped = stats.ReadStat(system, base + "/dropped");
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_EQ(*dropped, "4");
  auto queued = stats.ReadStat(system, base + "/queued");
  ASSERT_TRUE(queued.ok());
  EXPECT_EQ(*queued, "2");
  auto aggregate = stats.ReadStat(system, "/sys/monitor/subscribers/dropped");
  ASSERT_TRUE(aggregate.ok());
  EXPECT_EQ(*aggregate, "4");

  // The queue holds the two NEWEST epochs: the gap is at the old end.
  auto first = stats.PollSubscription(system, *id, 0);
  ASSERT_TRUE(first.ok());
  auto second = stats.PollSubscription(system, *id, 0);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second->find(StrFormat("version %llu",
                                   static_cast<unsigned long long>(last_version))),
            std::string::npos);
  auto delivered = stats.ReadStat(system, base + "/delivered");
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, "2");
}

TEST(SubscriptionTest, BlockPublisherWaitsOnlyUpToTheCap) {
  Kernel kernel;
  StatsServiceOptions options = ManualOptions();
  options.subscriber_queue_capacity = 1;
  options.publisher_block_cap_ns = 30'000'000;  // 30ms
  StatsService stats(&kernel, options);
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  auto id = stats.Subscribe(system, -1, SubscriberBackpressure::kBlockPublisher);
  ASSERT_TRUE(id.ok());

  Publish(kernel, stats);  // fills the queue; no wait
  auto start = std::chrono::steady_clock::now();
  Publish(kernel, stats);  // queue full: waits out the cap, then drops
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_GE(elapsed_ms, 25);    // the publisher honored the cap...
  EXPECT_LT(elapsed_ms, 5000);  // ...but was never wedged
  std::string base = StrFormat("/sys/monitor/subscribers/%llu",
                               static_cast<unsigned long long>(*id));
  auto dropped = stats.ReadStat(system, base + "/dropped");
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, "1");
}

TEST(SubscriptionTest, BlockPublisherUnblocksWhenTheSubscriberDrains) {
  Kernel kernel;
  StatsServiceOptions options = ManualOptions();
  options.subscriber_queue_capacity = 1;
  options.publisher_block_cap_ns = uint64_t{5} * 1'000'000'000;  // generous cap
  StatsService stats(&kernel, options);
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  auto id = stats.Subscribe(system, -1, SubscriberBackpressure::kBlockPublisher);
  ASSERT_TRUE(id.ok());
  Publish(kernel, stats);  // queue now full

  std::thread drainer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto epoch = stats.PollSubscription(system, *id, 0);
    EXPECT_TRUE(epoch.ok());
  });
  auto start = std::chrono::steady_clock::now();
  Publish(kernel, stats);  // blocks until the drain frees a slot
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  drainer.join();
  EXPECT_LT(elapsed_ms, 4500);  // released by the drain, not the 5s cap
  auto dropped = stats.ReadStat(
      system, StrFormat("/sys/monitor/subscribers/%llu/dropped",
                        static_cast<unsigned long long>(*id)));
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, "0");
}

TEST(SubscriptionTest, UnsubscribeClosesTheChannelAndUnmountsTelemetry) {
  Kernel kernel;
  StatsService stats(&kernel, ManualOptions());
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  auto id = stats.Subscribe(system, -1);
  ASSERT_TRUE(id.ok());
  std::string base = StrFormat("/sys/monitor/subscribers/%llu",
                               static_cast<unsigned long long>(*id));
  ASSERT_TRUE(stats.ReadStat(system, base + "/queued").ok());
  auto active = stats.ReadStat(system, "/sys/monitor/subscribers/active");
  ASSERT_TRUE(active.ok());
  EXPECT_EQ(*active, "1");

  ASSERT_TRUE(stats.Unsubscribe(system, *id).ok());
  EXPECT_EQ(stats.ReadStat(system, base + "/queued").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(stats.PollSubscription(system, *id, 0).status().code(),
            StatusCode::kNotFound);
  active = stats.ReadStat(system, "/sys/monitor/subscribers/active");
  ASSERT_TRUE(active.ok());
  EXPECT_EQ(*active, "0");
}

TEST(SubscriptionTest, SubscriberLimitIsEnforced) {
  Kernel kernel;
  StatsServiceOptions options = ManualOptions();
  options.max_subscribers = 2;
  StatsService stats(&kernel, options);
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  ASSERT_TRUE(stats.Subscribe(system, -1).ok());
  ASSERT_TRUE(stats.Subscribe(system, -1).ok());
  EXPECT_EQ(stats.Subscribe(system, -1).status().code(),
            StatusCode::kResourceExhausted);
}

// Grants `principal` the read that Subscribe mediates on the snapshot node.
void GrantSubscribe(Kernel& kernel, PrincipalId principal) {
  Subject system = kernel.SystemSubject();
  NodeId snapshot = *kernel.name_space().Lookup("/sys/monitor/snapshot");
  ASSERT_TRUE(kernel.monitor()
                  .AddAclEntry(system, snapshot,
                               {AclEntryType::kAllow, principal, AccessMode::kRead})
                  .ok());
}

TEST(SubscriptionTest, ChannelQuotaIsPerPrincipal) {
  Kernel kernel;
  StatsServiceOptions options = ManualOptions();
  options.max_channels_per_principal = 2;
  StatsService stats(&kernel, options);
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  ASSERT_TRUE(stats.Subscribe(system, -1).ok());
  ASSERT_TRUE(stats.Subscribe(system, -1).ok());
  auto third = stats.Subscribe(system, -1);
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(stats.quota_denied_total(), 1u);
  auto leaf = stats.ReadStat(system, "/sys/monitor/subscribers/quota_denied");
  ASSERT_TRUE(leaf.ok()) << leaf.status().ToString();
  EXPECT_EQ(*leaf, "1");

  // The quota bounds one misbehaving subject, not the service: a different
  // principal still gets a channel.
  auto other = kernel.principals().CreateUser("other");
  ASSERT_TRUE(other.ok());
  GrantSubscribe(kernel, *other);
  Subject other_s = kernel.CreateSubject(*other, kernel.labels().Bottom());
  EXPECT_TRUE(stats.Subscribe(other_s, -1).ok());
  EXPECT_EQ(stats.quota_denied_total(), 1u);
}

TEST(SubscriptionTest, ChannelQuotaIsReleasedByUnsubscribe) {
  Kernel kernel;
  StatsServiceOptions options = ManualOptions();
  options.max_channels_per_principal = 1;
  StatsService stats(&kernel, options);
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  auto id = stats.Subscribe(system, -1);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(stats.Subscribe(system, -1).status().code(),
            StatusCode::kResourceExhausted);
  ASSERT_TRUE(stats.Unsubscribe(system, *id).ok());
  EXPECT_TRUE(stats.Subscribe(system, -1).ok());
}

TEST(SubscriptionTest, GcClosesEveryChannelOwnedByThePrincipal) {
  Kernel kernel;
  StatsService stats(&kernel, ManualOptions());
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  auto survivor = stats.Subscribe(system, -1);
  ASSERT_TRUE(survivor.ok());

  auto doomed = kernel.principals().CreateUser("doomed");
  ASSERT_TRUE(doomed.ok());
  GrantSubscribe(kernel, *doomed);
  Subject doomed_s = kernel.CreateSubject(*doomed, kernel.labels().Bottom());
  auto first = stats.Subscribe(doomed_s, -1);
  auto second = stats.Subscribe(doomed_s, -1);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(stats.active_subscribers(), 3u);

  EXPECT_EQ(stats.GcChannelsFor(*doomed), 2u);
  EXPECT_EQ(stats.active_subscribers(), 1u);
  // The reaped handles are gone, and so is their telemetry subtree.
  EXPECT_EQ(stats.PollSubscription(doomed_s, *first, 0).status().code(),
            StatusCode::kNotFound);
  std::string leaf = StrFormat("/sys/monitor/subscribers/%llu/queued",
                               static_cast<unsigned long long>(*first));
  EXPECT_EQ(stats.ReadStat(system, leaf).status().code(), StatusCode::kNotFound);
  // Other principals' channels are untouched.
  Publish(kernel, stats);
  EXPECT_TRUE(stats.PollSubscription(system, *survivor, 0).ok());
  // Reaping an already-clean principal collects nothing.
  EXPECT_EQ(stats.GcChannelsFor(*doomed), 0u);
}

TEST(SubscriptionTest, GcWakesABlockedPollerWithFailedPrecondition) {
  Kernel kernel;
  StatsService stats(&kernel, ManualOptions());
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  auto id = stats.Subscribe(system, -1);
  ASSERT_TRUE(id.ok());

  StatusOr<std::string> result = InvalidArgumentError("not run");
  std::thread blocked([&] {
    result = stats.PollSubscription(system, *id,
                                    MonotonicNowNs() + uint64_t{10} * 1'000'000'000);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(stats.GcChannelsFor(kernel.system_principal()), 1u);
  blocked.join();
  auto reaction_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  // The poller holds the channel shared_ptr across the erase, so it observes
  // the close rather than a dangling handle.
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_LT(reaction_ms, 2000);
}

TEST(SubscriptionTest, UnblockedPollSeesAnEpochPublishedWhileBlocked) {
  Kernel kernel;
  StatsService stats(&kernel, ManualOptions());
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  auto id = stats.Subscribe(system, -1);
  ASSERT_TRUE(id.ok());
  StatusOr<std::string> result = InvalidArgumentError("not run");
  std::thread blocked([&] {
    result = stats.PollSubscription(system, *id,
                                    MonotonicNowNs() + uint64_t{10} * 1'000'000'000);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Publish(kernel, stats);
  blocked.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->find("version "), std::string::npos);
}

// The /svc/stats procedure surface over the same machinery.
Subject LoginAuditor(SecureSystem& sys) {
  auto auditor = sys.CreateUser("auditor");
  EXPECT_TRUE(auditor.ok());
  NodeId mount = *sys.name_space().Lookup("/sys/monitor");
  EXPECT_TRUE(sys.monitor()
                  .AddAclEntry(sys.SystemSubject(), mount,
                               {AclEntryType::kAllow, *auditor,
                                AccessMode::kRead | AccessMode::kList})
                  .ok());
  return sys.Login(*auditor, sys.labels().Bottom());
}

TEST(SubscriptionProcedureTest, SubscribePollUnsubscribeRoundTrip) {
  SecureSystem sys;
  Subject auditor = LoginAuditor(sys);
  auto handle = sys.Invoke(auditor, "/svc/stats/subscribe", {});
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  uint64_t id = std::stoull(std::get<std::string>(*handle));

  // Move a counter and publish, then poll the epoch out.
  (void)sys.monitor().Check(auditor, sys.name_space().root(), AccessMode::kList);
  sys.stats().Tick();
  auto epoch = sys.Invoke(auditor, "/svc/stats/poll",
                          {Value{static_cast<int64_t>(id)}, Value{int64_t{1000}}});
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_NE(std::get<std::string>(*epoch).find("version "), std::string::npos);

  auto bye = sys.Invoke(auditor, "/svc/stats/unsubscribe",
                        {Value{static_cast<int64_t>(id)}});
  ASSERT_TRUE(bye.ok()) << bye.status().ToString();
  auto gone = sys.Invoke(auditor, "/svc/stats/poll",
                         {Value{static_cast<int64_t>(id)}, Value{int64_t{1000}}});
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
}

TEST(SubscriptionProcedureTest, ArgumentsAreValidated) {
  SecureSystem sys;
  Subject auditor = LoginAuditor(sys);
  EXPECT_EQ(sys.Invoke(auditor, "/svc/stats/subscribe",
                       {Value{int64_t{-1}}, Value{std::string("flood")}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sys.Invoke(auditor, "/svc/stats/subscribe", {Value{int64_t{-7}}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  auto handle = sys.Invoke(auditor, "/svc/stats/subscribe", {});
  ASSERT_TRUE(handle.ok());
  int64_t id = static_cast<int64_t>(std::stoull(std::get<std::string>(*handle)));
  EXPECT_EQ(sys.Invoke(auditor, "/svc/stats/poll", {Value{id}, Value{int64_t{0}}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sys.Invoke(auditor, "/svc/stats/poll", {Value{int64_t{-3}}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sys.Invoke(auditor, "/svc/stats/unsubscribe", {Value{int64_t{99999}}})
                .status()
                .code(),
            StatusCode::kNotFound);
}

// Delta-encoded epochs: a poll renders only the leaves that changed since the
// channel's previous delivery, under a delta_from header, while a catch-up
// delivery renders the full snapshot.
TEST(SubscriptionTest, PollRendersDeltasAgainstThePreviousDelivery) {
  Kernel kernel;
  StatsService stats(&kernel, ManualOptions());
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  auto id = stats.Subscribe(system, -1);  // baseline: next delivery is a delta
  ASSERT_TRUE(id.ok());
  // Drive the next epoch with a check that is ALLOWED (a mediated read of
  // the version leaf) — the generic Publish helper's root list check is
  // denied under DAC, which would legitimately move the denied counter and
  // defeat the omitted-leaf assertion below.
  ASSERT_TRUE(stats.ReadStat(system, "/sys/monitor/version").ok());
  uint64_t v = stats.Tick();
  auto delta = stats.PollSubscription(system, *id, /*deadline_ns=*/0);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_NE(delta->find(StrFormat("version %llu", static_cast<unsigned long long>(v))),
            std::string::npos);
  EXPECT_NE(delta->find("delta_from "), std::string::npos);
  EXPECT_NE(delta->find("/sys/monitor/checks/total"), std::string::npos);
  // Nothing was denied between the baseline and this epoch, so the denied
  // leaf is omitted from the delta...
  EXPECT_EQ(delta->find("/sys/monitor/checks/denied"), std::string::npos);
  // ...while a catch-up (full) rendering always carries it.
  auto behind = stats.Subscribe(system, 0);
  ASSERT_TRUE(behind.ok());
  auto full = stats.PollSubscription(system, *behind, /*deadline_ns=*/0);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->find("delta_from "), std::string::npos);
  EXPECT_NE(full->find("/sys/monitor/checks/denied"), std::string::npos);
}

// Deltas are computed against the last DELIVERED epoch, not the last queued
// one, so epochs evicted by backpressure fold into the next delta exactly
// (the counters are cumulative).
TEST(SubscriptionTest, DeltaSpansDroppedEpochsExactly) {
  Kernel kernel;
  StatsServiceOptions options = ManualOptions();
  options.subscriber_queue_capacity = 1;
  StatsService stats(&kernel, options);
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  auto id = stats.Subscribe(system, -1);
  ASSERT_TRUE(id.ok());
  uint64_t baseline = stats.version();
  // Three epochs into a queue of one: the first two are evicted.
  Publish(kernel, stats);
  Publish(kernel, stats);
  uint64_t last = Publish(kernel, stats);
  auto delta = stats.PollSubscription(system, *id, /*deadline_ns=*/0);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  // The one delivery is version `last`, delta'd all the way back to the
  // baseline: the three list checks appear as one cumulative movement.
  EXPECT_NE(delta->find(StrFormat("version %llu", static_cast<unsigned long long>(last))),
            std::string::npos);
  EXPECT_NE(delta->find(StrFormat("delta_from %llu",
                                  static_cast<unsigned long long>(baseline))),
            std::string::npos);
}

// -- Durable subscriptions ----------------------------------------------------

TEST(SubscriptionDurableTest, ExportedTokenResumesAcrossAMonitorRestart) {
  std::string token;
  {
    Kernel kernel;
    StatsService stats(&kernel, ManualOptions());
    ASSERT_TRUE(stats.Install().ok());
    Subject system = kernel.SystemSubject();
    auto id = stats.Subscribe(system, -1);
    ASSERT_TRUE(id.ok());
    Publish(kernel, stats);
    Publish(kernel, stats);
    Publish(kernel, stats);  // push the old era's version well past the new one's
    ASSERT_TRUE(stats.PollSubscription(system, *id, 0).ok());
    auto exported = stats.ExportSubscription(system, *id);
    ASSERT_TRUE(exported.ok()) << exported.status().ToString();
    token = *exported;
    EXPECT_NE(token.find("xsec-sub-v1 "), std::string::npos);
  }  // the whole monitor goes away

  // A fresh incarnation: the token re-admits (the owner still holds read on
  // the new mount) and the era mismatch seeds one catch-up snapshot.
  Kernel kernel;
  StatsService stats(&kernel, ManualOptions());
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  auto resumed = stats.ResumeSubscription(system, token);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  auto caught_up = stats.PollSubscription(system, *resumed, 0);
  ASSERT_TRUE(caught_up.ok()) << caught_up.status().ToString();
  EXPECT_EQ(caught_up->find("delta_from "), std::string::npos);  // full snapshot
  EXPECT_NE(caught_up->find("/sys/monitor/checks/total"), std::string::npos);
}

TEST(SubscriptionDurableTest, ResumeReRunsAdmissionAndDeniesRevokedPrincipals) {
  std::string token;
  {
    Kernel kernel;
    StatsService stats(&kernel, ManualOptions());
    ASSERT_TRUE(stats.Install().ok());
    auto analyst = kernel.principals().CreateUser("analyst");
    ASSERT_TRUE(analyst.ok());
    GrantSubscribe(kernel, *analyst);
    Subject analyst_s = kernel.CreateSubject(*analyst, kernel.labels().Bottom());
    auto id = stats.Subscribe(analyst_s, -1);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    auto exported = stats.ExportSubscription(analyst_s, *id);
    ASSERT_TRUE(exported.ok());
    token = *exported;
  }

  // Same principal id in the new incarnation — but nobody re-granted read on
  // the fail-closed mount. The token is a bookmark, not a bearer credential:
  // resume re-runs the monitor Check and is denied.
  Kernel kernel;
  StatsService stats(&kernel, ManualOptions());
  ASSERT_TRUE(stats.Install().ok());
  auto analyst = kernel.principals().CreateUser("analyst");
  ASSERT_TRUE(analyst.ok());
  Subject analyst_s = kernel.CreateSubject(*analyst, kernel.labels().Bottom());
  EXPECT_EQ(stats.ResumeSubscription(analyst_s, token).status().code(),
            StatusCode::kPermissionDenied);
}

TEST(SubscriptionDurableTest, TokensAreOwnerBound) {
  Kernel kernel;
  StatsService stats(&kernel, ManualOptions());
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  auto id = stats.Subscribe(system, -1);
  ASSERT_TRUE(id.ok());
  auto token = stats.ExportSubscription(system, *id);
  ASSERT_TRUE(token.ok());
  auto thief = kernel.principals().CreateUser("thief");
  ASSERT_TRUE(thief.ok());
  GrantSubscribe(kernel, *thief);  // even WITH read rights of their own
  Subject thief_s = kernel.CreateSubject(*thief, kernel.labels().Bottom());
  EXPECT_EQ(stats.ResumeSubscription(thief_s, *token).status().code(),
            StatusCode::kPermissionDenied);
  // Export itself is owner-only too.
  EXPECT_EQ(stats.ExportSubscription(thief_s, *id).status().code(),
            StatusCode::kPermissionDenied);
}

TEST(SubscriptionDurableTest, MalformedTokensAreRejected) {
  Kernel kernel;
  StatsService stats(&kernel, ManualOptions());
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  const char* bad[] = {
      "",
      "garbage",
      "xsec-sub-v2 principal=1 since=2 policy=drop",       // unknown version
      "xsec-sub-v1 principal=1 since=2",                   // missing field
      "xsec-sub-v1 principal=1 since=2 policy=flood",      // bad policy
      "xsec-sub-v1 principal=1 since=-2 policy=drop",      // non-numeric
      "xsec-sub-v1 principal=1 since=2 policy=drop extra=1",
      "xsec-sub-v1 principal=99999999999999999999999999 since=2 policy=drop",
  };
  for (const char* token : bad) {
    EXPECT_EQ(stats.ResumeSubscription(system, token).status().code(),
              StatusCode::kInvalidArgument)
        << "token accepted: " << token;
  }
}

TEST(SubscriptionProcedureTest, ExportResumeRoundTripOverTheServiceSurface) {
  SecureSystem sys;
  Subject auditor = LoginAuditor(sys);
  auto handle = sys.Invoke(auditor, "/svc/stats/subscribe", {});
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  int64_t id = static_cast<int64_t>(std::stoull(std::get<std::string>(*handle)));
  auto token = sys.Invoke(auditor, "/svc/stats/export", {Value{id}});
  ASSERT_TRUE(token.ok()) << token.status().ToString();
  auto resumed = sys.Invoke(auditor, "/svc/stats/resume",
                            {Value{std::get<std::string>(*token)}});
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  uint64_t new_id = std::stoull(std::get<std::string>(*resumed));
  EXPECT_NE(new_id, static_cast<uint64_t>(id));  // a NEW channel, old one intact
  EXPECT_TRUE(sys.Invoke(auditor, "/svc/stats/unsubscribe", {Value{id}}).ok());
  EXPECT_TRUE(sys.Invoke(auditor, "/svc/stats/unsubscribe",
                         {Value{static_cast<int64_t>(new_id)}})
                  .ok());
}

// The TSan target: subscribers come and go while a publisher storms and a
// dump reader walks the (now mutable) leaf registry.
TEST(SubscriptionConcurrencyTest, SubscribePublishPollCancelUnsubscribeRace) {
  Kernel kernel;
  StatsServiceOptions options;
  options.epoch_interval_ns = 1'000'000;  // 1ms: plenty of publications
  options.subscriber_queue_capacity = 2;
  StatsService stats(&kernel, options);
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    while (!stop.load()) {
      Publish(kernel, stats);
      std::this_thread::yield();
    }
  });
  std::thread dumper([&] {
    while (!stop.load()) {
      (void)stats.RenderAll();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> churners;
  for (int t = 0; t < 3; ++t) {
    churners.emplace_back([&, t] {
      Subject mine = kernel.SystemSubject();
      SubscriberBackpressure backpressure = t % 2 == 0
                                                ? SubscriberBackpressure::kDropOldest
                                                : SubscriberBackpressure::kBlockPublisher;
      for (int round = 0; round < 20; ++round) {
        auto id = stats.Subscribe(mine, -1, backpressure);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        for (int polls = 0; polls < 3; ++polls) {
          (void)stats.PollSubscription(mine, *id, MonotonicNowNs() + 5'000'000);
        }
        ASSERT_TRUE(stats.Unsubscribe(mine, *id).ok());
      }
    });
  }
  for (auto& churner : churners) {
    churner.join();
  }
  stop.store(true);
  publisher.join();
  dumper.join();
  // Everyone unsubscribed; the aggregate gauge agrees.
  auto active = stats.ReadStat(system, "/sys/monitor/subscribers/active");
  ASSERT_TRUE(active.ok());
  EXPECT_EQ(*active, "0");
}

// Extracts the `version N` header from a delivered epoch rendering.
uint64_t DeliveredVersion(const std::string& text) {
  size_t at = text.find("version ");
  EXPECT_NE(at, std::string::npos) << text;
  return at == std::string::npos ? 0 : std::stoull(text.substr(at + 8));
}

// Subscriber-churn soak: N churners subscribe/poll/unsubscribe while the
// publisher storms, with a long-lived channel riding along. No channel may
// see the same epoch twice (per-channel versions strictly increase), and the
// long-lived channel's accounting must reconcile: every version published
// after its baseline was delivered, is still queued, or was counted dropped
// (concurrently raced fan-outs may additionally skip a version, never
// duplicate one — hence <=).
TEST(SubscriptionConcurrencyTest, ChurnSoakDeliversNoEpochTwiceAndReconcilesDrops) {
  Kernel kernel;
  StatsServiceOptions options = ManualOptions();  // publisher-driven only
  options.subscriber_queue_capacity = 4;
  options.max_subscribers = 64;
  // Every churner plus the long-lived channel shares the system principal;
  // the per-principal quota is not what this soak exercises.
  options.max_channels_per_principal = 0;
  StatsService stats(&kernel, options);
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();

  auto longlived = stats.Subscribe(system, -1, SubscriberBackpressure::kDropOldest);
  ASSERT_TRUE(longlived.ok());
  uint64_t baseline = stats.version();

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    while (!stop.load()) {
      Publish(kernel, stats);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> churners;
  for (int t = 0; t < 4; ++t) {
    churners.emplace_back([&] {
      Subject mine = kernel.SystemSubject();
      for (int round = 0; round < 15; ++round) {
        auto id = stats.Subscribe(mine, -1);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        uint64_t last_seen = 0;
        for (int polls = 0; polls < 4; ++polls) {
          auto epoch = stats.PollSubscription(mine, *id, MonotonicNowNs() + 50'000'000);
          if (!epoch.ok()) {
            break;  // deadline: the publisher was outpaced, fine
          }
          uint64_t version = DeliveredVersion(*epoch);
          EXPECT_GT(version, last_seen) << "epoch delivered twice (or reordered)";
          last_seen = version;
        }
        ASSERT_TRUE(stats.Unsubscribe(mine, *id).ok());
      }
    });
  }
  for (auto& churner : churners) {
    churner.join();
  }
  stop.store(true);
  publisher.join();

  // Drain the long-lived channel dry, still checking monotonicity.
  uint64_t drained = 0;
  uint64_t last_seen = baseline;
  for (;;) {
    auto epoch = stats.PollSubscription(system, *longlived, MonotonicNowNs() + 1);
    if (!epoch.ok()) {
      break;
    }
    uint64_t version = DeliveredVersion(*epoch);
    EXPECT_GT(version, last_seen);
    last_seen = version;
    ++drained;
  }
  uint64_t final_version = stats.version();
  ASSERT_GT(final_version, baseline);  // the storm published plenty
  std::string delivered_leaf = StrFormat("/sys/monitor/subscribers/%llu/delivered",
                                         static_cast<unsigned long long>(*longlived));
  std::string dropped_leaf = StrFormat("/sys/monitor/subscribers/%llu/dropped",
                                       static_cast<unsigned long long>(*longlived));
  auto delivered_text = stats.ReadStat(system, delivered_leaf);
  auto dropped_text = stats.ReadStat(system, dropped_leaf);
  ASSERT_TRUE(delivered_text.ok() && dropped_text.ok());
  uint64_t delivered = std::stoull(*delivered_text);
  uint64_t dropped = std::stoull(*dropped_text);
  EXPECT_GE(delivered, drained);
  // Reconciliation: accounted epochs never exceed published ones, and the
  // aggregate drop gauge covers this channel's share.
  EXPECT_LE(delivered + dropped, final_version - baseline);
  EXPECT_GE(stats.subscriber_dropped_total(), dropped);
  EXPECT_TRUE(stats.Unsubscribe(system, *longlived).ok());
}

// The Tick-fan-out vs GcChannelsFor race (the reaped-channel bugfix): a
// channel reaped between the publisher's registry scan and its delivery must
// not be delivered into a dead queue, and a Subscribe racing the reap must
// not leave orphan telemetry leaves behind (resurrection). TSan-hammered.
TEST(SubscriptionConcurrencyTest, GcVersusSubscribeAndFanOutLeavesNoOrphans) {
  Kernel kernel;
  StatsServiceOptions options;
  options.epoch_interval_ns = 1'000'000;  // storm
  options.subscriber_queue_capacity = 2;
  options.max_subscribers = 64;
  options.max_channels_per_principal = 0;  // the reaper is the limit here
  StatsService stats(&kernel, options);
  ASSERT_TRUE(stats.Install().ok());
  Subject system = kernel.SystemSubject();
  PrincipalId principal = kernel.system_principal();

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    while (!stop.load()) {
      Publish(kernel, stats);
      std::this_thread::yield();
    }
  });
  std::thread reaper([&] {
    while (!stop.load()) {
      (void)stats.GcChannelsFor(principal);
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> subscribers;
  for (int t = 0; t < 3; ++t) {
    subscribers.emplace_back([&] {
      Subject mine = kernel.SystemSubject();
      for (int round = 0; round < 40; ++round) {
        auto id = stats.Subscribe(mine, -1);
        if (!id.ok()) {
          // The reaper got between mount and registration: the documented
          // outcome, never a dead capability.
          EXPECT_EQ(id.status().code(), StatusCode::kFailedPrecondition)
              << id.status().ToString();
          continue;
        }
        (void)stats.PollSubscription(mine, *id, MonotonicNowNs() + 2'000'000);
        // Unsubscribe may lose to the reaper; either way the channel dies.
        Status bye = stats.Unsubscribe(mine, *id);
        EXPECT_TRUE(bye.ok() || bye.code() == StatusCode::kNotFound)
            << bye.ToString();
      }
    });
  }
  for (auto& subscriber : subscribers) {
    subscriber.join();
  }
  stop.store(true);
  publisher.join();
  reaper.join();

  (void)stats.GcChannelsFor(principal);
  EXPECT_EQ(stats.active_subscribers(), 0u);
  // No resurrected telemetry: with every channel reaped, the dump must hold
  // no per-channel subtree (only the aggregate subscribers/ gauges).
  std::string dump = stats.RenderAll();
  for (const std::string& line : StrSplit(dump, '\n', /*skip_empty=*/true)) {
    if (StartsWith(line, "/sys/monitor/subscribers/")) {
      char next = line.size() > 25 ? line[25] : '\0';
      EXPECT_FALSE(next >= '0' && next <= '9') << "orphan leaf: " << line;
    }
  }
}

}  // namespace
}  // namespace xsec
