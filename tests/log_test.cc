#include "src/services/log.h"

#include <gtest/gtest.h>

#include "src/core/secure_system.h"

namespace xsec {
namespace {

class LogServiceTest : public ::testing::Test {
 protected:
  LogServiceTest() {
    (void)sys_.labels().DefineLevels({"low", "high"});
    admin_user_ = *sys_.CreateUser("admin");
    reporter_user_ = *sys_.CreateUser("reporter");
    high_ = *sys_.labels().MakeClass("high", {});
    admin_ = sys_.Login(admin_user_, high_);
    reporter_ = sys_.Login(reporter_user_, sys_.labels().Bottom());

    // The syslog object sits high; DAC grants broadly (MAC is the control).
    NodeId node = sys_.log().log_node();
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, sys_.everyone(),
                  AccessMode::kRead | AccessMode::kWrite | AccessMode::kWriteAppend});
    (void)sys_.name_space().SetAclRef(node, sys_.kernel().acls().Create(std::move(acl)));
    (void)sys_.name_space().SetLabelRef(node, sys_.labels().StoreLabel(high_));
  }

  SecureSystem sys_;
  PrincipalId admin_user_, reporter_user_;
  SecurityClass high_;
  Subject admin_, reporter_;
};

TEST_F(LogServiceTest, LowSubjectMayAppendUp) {
  EXPECT_TRUE(sys_.log().AppendEntry(reporter_, "boot ok").ok());
  auto entries = sys_.log().ReadEntries(admin_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(*entries, (std::vector<std::string>{"boot ok"}));
}

TEST_F(LogServiceTest, LowSubjectMayNotReadBack) {
  ASSERT_TRUE(sys_.log().AppendEntry(reporter_, "x").ok());
  EXPECT_EQ(sys_.log().ReadEntries(reporter_).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(sys_.log().Size(reporter_).status().code(), StatusCode::kPermissionDenied);
}

TEST_F(LogServiceTest, LowSubjectMayNotTruncate) {
  ASSERT_TRUE(sys_.log().AppendEntry(reporter_, "x").ok());
  EXPECT_EQ(sys_.log().Truncate(reporter_).code(), StatusCode::kPermissionDenied);
  // The high admin can truncate (equal classes).
  ASSERT_TRUE(sys_.log().Truncate(admin_).ok());
  EXPECT_EQ(*sys_.log().Size(admin_), 0);
}

TEST_F(LogServiceTest, AppendsPreserveOrder) {
  ASSERT_TRUE(sys_.log().AppendEntry(reporter_, "one").ok());
  ASSERT_TRUE(sys_.log().AppendEntry(admin_, "two").ok());
  ASSERT_TRUE(sys_.log().AppendEntry(reporter_, "three").ok());
  auto entries = sys_.log().ReadEntries(admin_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(*entries, (std::vector<std::string>{"one", "two", "three"}));
  EXPECT_EQ(*sys_.log().Size(admin_), 3);
}

TEST_F(LogServiceTest, DacDenialStillApplies) {
  // Replace the ACL with one that grants nothing to the reporter.
  NodeId node = sys_.log().log_node();
  Acl acl;
  acl.AddEntry({AclEntryType::kAllow, admin_user_, AccessModeSet::All()});
  (void)sys_.name_space().SetAclRef(node, sys_.kernel().acls().Create(std::move(acl)));
  EXPECT_EQ(sys_.log().AppendEntry(reporter_, "x").code(), StatusCode::kPermissionDenied);
}

TEST_F(LogServiceTest, ProcedureInterface) {
  ASSERT_TRUE(
      sys_.Invoke(reporter_, "/svc/log/append", {Value{std::string("via-proc")}}).ok());
  auto text = sys_.Invoke(admin_, "/svc/log/read", {});
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(std::get<std::string>(*text), "via-proc");
  auto size = sys_.Invoke(admin_, "/svc/log/size", {});
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(std::get<int64_t>(*size), 1);
  EXPECT_EQ(sys_.Invoke(reporter_, "/svc/log/read", {}).status().code(),
            StatusCode::kPermissionDenied);
  ASSERT_TRUE(sys_.Invoke(admin_, "/svc/log/truncate", {}).ok());
  EXPECT_EQ(*sys_.log().Size(admin_), 0);
}

}  // namespace
}  // namespace xsec
