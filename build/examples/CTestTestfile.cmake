# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_applet_orgs "/root/repo/build/examples/applet_orgs")
set_tests_properties(example_applet_orgs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_extension_fs "/root/repo/build/examples/extension_fs")
set_tests_properties(example_extension_fs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_threadmurder "/root/repo/build/examples/threadmurder")
set_tests_properties(example_threadmurder PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_policy_admin "/root/repo/build/examples/policy_admin")
set_tests_properties(example_policy_admin PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_packet_filter "/root/repo/build/examples/packet_filter")
set_tests_properties(example_packet_filter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_xsec_shell "/root/repo/build/examples/xsec_shell")
set_tests_properties(example_xsec_shell PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_applet_loader "/root/repo/build/examples/applet_loader")
set_tests_properties(example_applet_loader PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
