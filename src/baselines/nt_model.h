// The Windows NT baseline: per-object ACLs with allow and deny ACEs,
// evaluated in order (canonically deny-first), with an append right.
//
// Paper §2: NT "uses access control lists at the granularity of individual
// files and presents a rich, though unnecessarily complicated access control
// model … But it, too, does not provide a means to control the two ways
// extensions interact with the rest of the system, nor does it provide for
// any mandatory access control."
//
// So: per-file ACLs, negative entries, groups and a distinct append right
// (FILE_APPEND_DATA) all work. What does not: the extend mode collapses to
// execute (NT cannot distinguish calling a service from specializing it),
// and there is no lattice MAC at all.

#ifndef XSEC_SRC_BASELINES_NT_MODEL_H_
#define XSEC_SRC_BASELINES_NT_MODEL_H_

#include "src/baselines/model.h"

namespace xsec {

class NtModel : public ProtectionModel {
 public:
  std::string_view name() const override { return "nt"; }

  bool Allows(const BaselineWorld& world, const BaselineSubject& subject,
              const BaselineObject& object, AccessMode mode) const override;
};

}  // namespace xsec

#endif  // XSEC_SRC_BASELINES_NT_MODEL_H_
