// The reference monitor: the paper's "central facility to provide naming and
// protection services for the entire system" (§3).
//
// Every access in xsec — calling a procedure, extending an interface, reading
// a file, listing a directory, killing a thread — funnels through
// ReferenceMonitor::Check. The decision procedure is:
//
//   1. resolve the name (optionally checking `list` on every ancestor, so
//      visibility of each level of the hierarchy is itself protected, §2.3);
//   2. DAC: evaluate the node's *effective ACL* (its own, or the nearest
//      ancestor's — ACL inheritance gives AFS-style directory defaults while
//      still allowing per-leaf ACLs, which AFS cannot do, §1.2);
//   3. MAC: check the flow rules between the subject's security class and the
//      node's *effective label* (own or nearest ancestor's; the root is
//      labeled ⊥ at construction so every node has a label). MAC is checked
//      even when DAC granted: "users can not circumvent the basic security of
//      the system by exercising discretionary access control" (§2.2);
//   4. record the decision in the audit log.
//
// Decisions are cached (src/monitor/decision_cache.h); any policy mutation
// invalidates the cache via generation stamps.
//
// Thread safety: Check/CheckPath/CheckFloating and the administrative
// operations may be called concurrently from any number of threads. The
// check path reads each store through a snapshot or shared-ownership handle
// (NameSpace::SnapshotSecurity, PrincipalRegistry::Closure,
// AclStore::Evaluate, LabelAuthority::LabelHandle) and reads the validity
// stamps *before* evaluating, so a cached decision can be spuriously stale
// but never wrongly fresh. Explain() and EffectiveAcl() are introspection
// helpers for single-threaded use. set_security_officer() is setup-time.

#ifndef XSEC_SRC_MONITOR_REFERENCE_MONITOR_H_
#define XSEC_SRC_MONITOR_REFERENCE_MONITOR_H_

#include <optional>
#include <string>
#include <string_view>

#include "src/dac/acl.h"
#include "src/mac/flow_policy.h"
#include "src/mac/label_authority.h"
#include "src/monitor/audit.h"
#include "src/monitor/decision_cache.h"
#include "src/monitor/monitor_stats.h"
#include "src/monitor/subject.h"
#include "src/naming/namespace.h"
#include "src/principal/registry.h"

namespace xsec {

struct Decision {
  bool allowed = false;
  DenyReason reason = DenyReason::kNone;
  std::string detail;

  // Converts to a Status for callers that propagate errors.
  Status ToStatus() const;
};

struct MonitorOptions {
  bool dac_enabled = true;
  bool mac_enabled = true;
  // Check `list` on every ancestor during resolution.
  bool check_traversal = true;
  bool cache_enabled = true;
  // Maintain MonitorStats (per-reason/per-mode counters, sampled latency
  // histogram). Relaxed atomics only; bench_f1_mediation pins the overhead.
  bool stats_enabled = true;
  FlowPolicyOptions flow;
  AuditPolicy audit_policy = AuditPolicy::kDenialsOnly;
  // Fail-closed audit (MODEL.md §12): when set and the installed resilient
  // sink's circuit is open, Check turns would-be allows into
  // kAuditUnavailable denials instead of proceeding unaudited. Off by
  // default (fail-open: unaudited allows proceed and are counted).
  bool audit_required = false;
  size_t cache_slots = 8192;
  size_t audit_capacity = 4096;
};

class ReferenceMonitor {
 public:
  // The monitor borrows all four stores; they must outlive it.
  ReferenceMonitor(NameSpace* name_space, AclStore* acls, PrincipalRegistry* principals,
                   LabelAuthority* labels, MonitorOptions options = {});

  // -- Access checks ---------------------------------------------------------

  // Checks `modes` on an already-resolved node (no traversal checks).
  Decision Check(const Subject& subject, NodeId node, AccessModeSet modes);

  // Resolves `path` and checks; on success *resolved (if non-null) is set.
  Decision CheckPath(const Subject& subject, std::string_view path, AccessModeSet modes,
                     NodeId* resolved = nullptr);

  // High-water-mark variant (Denning's floating labels): like Check, but on
  // a successful access containing an observation mode (read/list/execute),
  // the subject's class is raised to the join of its current class and the
  // object's label. The subject thereafter carries everything it has seen:
  // a later write to a lower object is denied by the ordinary ⋆-property, so
  // even *sequences* of individually legal accesses cannot relay data
  // downward through a subject. The paper's model uses fixed per-principal
  // classes; this is the natural extension its lattice supports.
  Decision CheckFloating(Subject* subject, NodeId node, AccessModeSet modes);

  // -- Policy administration -------------------------------------------------
  // All three require the subject to hold `administrate` on the node. The
  // node's owner implicitly holds administrate (the bootstrap rule: a fresh
  // node has no ACL of its own and someone must be able to give it one).

  Status SetNodeAcl(const Subject& subject, NodeId node, Acl acl);
  Status AddAclEntry(const Subject& subject, NodeId node, const AclEntry& entry);
  // Removes every entry (both polarities) naming `who` from the node's own
  // ACL. A no-op if the node only inherits an ACL.
  Status RemoveAclEntriesFor(const Subject& subject, NodeId node, PrincipalId who);

  // Non-officer relabeling additionally requires, under MAC, that the
  // subject dominates the node's current label (it must be cleared to see
  // what it relabels) and that the new label equal the subject's own class —
  // a subject classifies objects at exactly its level, so labels can be
  // bootstrapped upward from ⊥ but never laundered up or down past the
  // subject. The registered security officer bypasses the MAC conditions
  // (a trusted subject in the Bell-LaPadula sense).
  Status SetNodeLabel(const Subject& subject, NodeId node, const SecurityClass& label);

  Status SetOwner(const Subject& subject, NodeId node, PrincipalId new_owner);

  // The security officer may relabel arbitrarily (trusted subject in the
  // Bell-LaPadula sense). Unset by default.
  void set_security_officer(PrincipalId officer) { security_officer_ = officer; }
  PrincipalId security_officer() const { return security_officer_; }

  // -- Effective policy resolution (own or inherited) ------------------------

  // The ACL governing a node: its own, else the nearest ancestor's, else null
  // (no ACL anywhere => DAC denies everything except the owner's administrate).
  // Returns a borrowed pointer; for single-threaded introspection only.
  const Acl* EffectiveAcl(NodeId node, AclStore::AclRef* ref_out = nullptr) const;

  // The label governing a node, by value (safe against concurrent relabels).
  // The root always has one (⊥ by default).
  SecurityClass EffectiveLabel(NodeId node) const;

  // True iff the subject holds administrate on the node (ACL grant or owner).
  bool HasAdministrate(const Subject& subject, NodeId node) const;

  // -- Introspection ---------------------------------------------------------

  // A human-readable, multi-line diagnosis of why `subject` can or cannot
  // perform `modes` on `node`: ownership, the governing ACL (and where it
  // was inherited from), which entries matched, and the label comparison.
  // Purely informational — performs no caching and no auditing.
  std::string Explain(const Subject& subject, NodeId node, AccessModeSet modes) const;

  AuditLog& audit() { return audit_; }
  const AuditLog& audit() const { return audit_; }
  MonitorStats& stats() { return stats_; }
  const MonitorStats& stats() const { return stats_; }
  DecisionCache& cache() { return cache_; }
  const MonitorOptions& options() const { return options_; }
  void set_audit_policy(AuditPolicy policy) { audit_.set_policy(policy); }

  NameSpace& name_space() { return *name_space_; }
  AclStore& acls() { return *acls_; }
  PrincipalRegistry& principals() { return *principals_; }
  LabelAuthority& labels() { return *labels_; }

 private:
  Decision CheckUncached(const Subject& subject, NodeId node, AccessModeSet modes) const;
  // The check bodies, without latency sampling (the public wrappers add it).
  Decision CheckUnsampled(const Subject& subject, NodeId node, AccessModeSet modes);
  Decision CheckPathUnsampled(const Subject& subject, std::string_view path,
                              AccessModeSet modes, NodeId* resolved);
  CacheStamps CurrentStamps() const;
  void Audit(const Subject& subject, NodeId node, std::string path, AccessModeSet modes,
             const Decision& decision);
  // Fail-closed override: flips an allow to a kAuditUnavailable denial (or
  // counts it as unaudited, in fail-open mode) when the required audit sink
  // is tripped. Runs AFTER the cache so the transient denial is never
  // cached — allows resume the moment the sink recovers.
  void ApplyAuditAvailability(Decision* decision);

  NameSpace* name_space_;
  AclStore* acls_;
  PrincipalRegistry* principals_;
  LabelAuthority* labels_;
  MonitorOptions options_;
  FlowPolicy flow_;
  AuditLog audit_;
  MonitorStats stats_;
  DecisionCache cache_;
  PrincipalId security_officer_;
};

}  // namespace xsec

#endif  // XSEC_SRC_MONITOR_REFERENCE_MONITOR_H_
