#include "src/services/stats_service.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <limits>
#include <utility>
#include <vector>

#include "src/base/failpoint.h"
#include "src/base/strings.h"
#include "src/extsys/supervisor.h"
#include "src/monitor/mediation_ring.h"
#include "src/naming/path.h"

namespace xsec {

StatsService::StatsService(Kernel* kernel, StatsServiceOptions options)
    : kernel_(kernel), options_(std::move(options)) {}

StatsService::StatsService(Kernel* kernel, std::string mount_path, std::string service_path)
    : kernel_(kernel) {
  options_.mount_path = std::move(mount_path);
  options_.service_path = std::move(service_path);
}

StatsService::~StatsService() {
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    stop_ = true;
  }
  wait_cv_.notify_all();
  if (publisher_.joinable()) {
    publisher_.join();
  }
}

Status StatsService::MountRing(MediationRing* ring) {
  auto count = [](uint64_t v) { return std::to_string(v); };
  XSEC_RETURN_IF_ERROR(
      MountLeaf("ring/shards", [ring, count] { return count(ring->shard_count()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("ring/depth", [ring, count] { return count(ring->depth()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("ring/batches", [ring, count] { return count(ring->batches()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("ring/submitted", [ring, count] { return count(ring->submitted()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("ring/completed", [ring, count] { return count(ring->completed()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("ring/stalls", [ring, count] { return count(ring->stalls()); }));
  return MountLeaf("ring/grant_rejections",
                   [ring, count] { return count(ring->grant_rejections()); });
}

Status StatsService::MountShards(ReferenceMonitor* monitor) {
  auto count = [](uint64_t v) { return std::to_string(v); };
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "shard/count", [count] { return count(kMonitorShardCount); }));
  for (ShardId i = 0; i < kMonitorShardCount; ++i) {
    std::string prefix = "shard/" + std::to_string(i) + "/";
    XSEC_RETURN_IF_ERROR(MountLeaf(prefix + "checks", [monitor, i, count] {
      return count(monitor->shard_checks(i));
    }));
    XSEC_RETURN_IF_ERROR(MountLeaf(prefix + "ns_gen", [monitor, i, count] {
      return count(monitor->CurrentStampsFor(i).namespace_generation);
    }));
    XSEC_RETURN_IF_ERROR(MountLeaf(prefix + "acl_gen", [monitor, i, count] {
      return count(monitor->CurrentStampsFor(i).acl_generation);
    }));
    XSEC_RETURN_IF_ERROR(MountLeaf(prefix + "label_epoch", [monitor, i, count] {
      return count(monitor->CurrentStampsFor(i).label_epoch);
    }));
  }
  return MountLeaf("shard/aggregate/checks", [monitor, count] {
    return count(monitor->shard_checks(kAggregateShard));
  });
}

Status StatsService::MountGrants(ShardGrantTable* grants) {
  auto count = [](uint64_t v) { return std::to_string(v); };
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "shard/grants/count", [grants, count] { return count(grants->grant_count()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "shard/grants/admitted", [grants, count] { return count(grants->admitted()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "shard/grants/rejected", [grants, count] { return count(grants->rejected()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf("shard/grants/transfers_consumed", [grants, count] {
    return count(grants->transfers_consumed());
  }));
  return MountLeaf("shard/grants/interned_names", [grants, count] {
    return count(grants->interned_names());
  });
}

Status StatsService::MountHealth(ExtensionSupervisor* supervisor) {
  auto count = [](uint64_t v) { return std::to_string(v); };
  XSEC_RETURN_IF_ERROR(MountLeaf("health/state", [supervisor] {
    return std::string(SystemHealthName(supervisor->system_health()));
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf("health/quarantined", [supervisor, count] {
    return count(supervisor->quarantined_count());
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf("health/lockdown", [supervisor] {
    return std::string(
        supervisor->system_health() == SystemHealth::kLockdown ? "1" : "0");
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf("health/watchdog/stuck_shards", [supervisor, count] {
    return count(supervisor->stuck_shards());
  }));
  // Per-extension leaves appear as names register (LoadExtension under a
  // supervised kernel registers automatically). The hook runs without
  // supervisor locks; MountLeaf failures on a re-registered name are benign
  // (the leaf already exists).
  supervisor->SetRegistrationHook([this, supervisor, count](const std::string& name) {
    std::string prefix = "health/ext/" + name + "/";
    (void)MountLeaf(prefix + "state", [supervisor, name] {
      auto snap = supervisor->Snapshot(name);
      return std::string(snap ? ExtHealthName(snap->state) : "unregistered");
    });
    (void)MountLeaf(prefix + "trips", [supervisor, name, count] {
      auto snap = supervisor->Snapshot(name);
      return count(snap ? snap->trips : 0);
    });
    (void)MountLeaf(prefix + "timeouts", [supervisor, name, count] {
      auto snap = supervisor->Snapshot(name);
      return count(snap ? snap->timeouts : 0);
    });
    (void)MountLeaf(prefix + "inflight", [supervisor, name, count] {
      auto snap = supervisor->Snapshot(name);
      return count(snap ? snap->inflight : 0);
    });
  });
  return OkStatus();
}

Status StatsService::MountLeaf(const std::string& relative_path,
                               std::function<std::string()> render, bool in_dump) {
  std::string full = JoinPath(options_.mount_path, relative_path);
  auto node = kernel_->name_space().BindPath(full, NodeKind::kFile,
                                             kernel_->system_principal());
  if (!node.ok()) {
    return node.status();
  }
  std::unique_lock<std::shared_mutex> lock(values_mu_);
  values_.emplace(std::move(full), Leaf{*node, std::move(render), in_dump});
  return OkStatus();
}

Status StatsService::Install() {
  PrincipalId system = kernel_->system_principal();
  auto mount = kernel_->name_space().BindPath(options_.mount_path, NodeKind::kDirectory, system);
  if (!mount.ok()) {
    return mount.status();
  }
  // Fail-closed: telemetry reveals who was denied what, so the mount root
  // carries an own ACL (overriding any permissive inherited default) that
  // grants read|list to the system principal only. Administrators widen
  // visibility with ordinary AddAclEntry calls.
  Acl restricted;
  restricted.AddEntry({AclEntryType::kAllow, system, AccessMode::kRead | AccessMode::kList});
  XSEC_RETURN_IF_ERROR(
      kernel_->name_space().SetAclRef(*mount, kernel_->acls().Create(std::move(restricted))));

  ReferenceMonitor* monitor = &kernel_->monitor();
  MonitorStats* stats = &monitor->stats();
  DecisionCache* cache = &monitor->cache();
  AuditLog* audit = &monitor->audit();
  auto count = [](uint64_t v) { return std::to_string(v); };

  // The sanctioned multi-counter view and its version stamp. The snapshot
  // leaf is multi-line, so it is excluded from dumps; `version` does *not*
  // refresh the publication on read — it answers "has anything been
  // published since I last looked", which a self-refreshing value could not.
  // Both leaves read the same atomically swapped epoch pointer, so the
  // version can never lag a snapshot a reader already rendered.
  XSEC_RETURN_IF_ERROR(
      MountLeaf("snapshot", [this] { return RenderSnapshot(); }, /*in_dump=*/false));
  XSEC_RETURN_IF_ERROR(MountLeaf("version", [this] { return std::to_string(version()); }));

  XSEC_RETURN_IF_ERROR(
      MountLeaf("checks/total", [stats, count] { return count(stats->checks_total()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("checks/allowed", [stats, count] { return count(stats->allowed_total()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("checks/denied", [stats, count] { return count(stats->denied_total()); }));
  for (int i = 0; i < kAccessModeCount; ++i) {
    AccessMode mode = static_cast<AccessMode>(1u << i);
    XSEC_RETURN_IF_ERROR(MountLeaf(
        StrFormat("checks/by-mode/%s", std::string(AccessModeName(mode)).c_str()),
        [stats, count, mode] { return count(stats->by_mode(mode)); }));
  }
  for (size_t r = 1; r < kDenyReasonCount; ++r) {  // skip kNone (that is an allow)
    DenyReason reason = static_cast<DenyReason>(r);
    XSEC_RETURN_IF_ERROR(MountLeaf(
        StrFormat("denials/by-reason/%s", std::string(DenyReasonName(reason)).c_str()),
        [stats, count, reason] { return count(stats->by_reason(reason)); }));
  }
  XSEC_RETURN_IF_ERROR(
      MountLeaf("cache/hits", [cache, count] { return count(cache->hits()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("cache/misses", [cache, count] { return count(cache->misses()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("cache/stale", [cache, count] { return count(cache->stale_hits()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf("cache/hit_rate", [cache] {
    uint64_t hits = cache->hits();
    uint64_t probes = hits + cache->misses();
    // Fixed 4-digit rendering with a locale-independent '.' radix point:
    // this leaf is machine-parsed (tools/xsec_stats, golden tests), and
    // printf "%f" follows the process locale's decimal separator.
    return FormatFixed(
        probes == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(probes), 4);
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "latency/p50", [stats, count] { return count(stats->LatencyQuantileNs(0.50)); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "latency/p90", [stats, count] { return count(stats->LatencyQuantileNs(0.90)); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "latency/p99", [stats, count] { return count(stats->LatencyQuantileNs(0.99)); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "latency/samples", [stats, count] { return count(stats->latency_samples()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "audit/retained", [audit, count] { return count(audit->retained()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("audit/dropped", [audit, count] { return count(audit->dropped()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "audit/sink_dropped", [audit, count] { return count(audit->sink_dropped()); }));
  // Resilient-sink health (MODEL.md §12): circuit state plus the retry /
  // give-up counters, and the allows that proceeded unaudited in fail-open
  // mode while the sink was down.
  XSEC_RETURN_IF_ERROR(
      MountLeaf("audit/sink_state", [audit] { return audit->sink_state(); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("audit/retries", [audit, count] { return count(audit->sink_retries()); }));
  XSEC_RETURN_IF_ERROR(
      MountLeaf("audit/gave_up", [audit, count] { return count(audit->sink_gave_up()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf("audit/unaudited_allows", [audit, count] {
    return count(audit->unaudited_allows());
  }));
  // Multi-sink fan-out plane (MODEL.md §11): registered sinks, aggregate
  // deliveries/drops across lanes, and the stitcher's order-violation
  // counter (always 0 unless the sequence-stitch invariant broke).
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "audit/fanout/sinks", [audit, count] { return count(audit->fanout_sinks()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf("audit/fanout/delivered", [audit, count] {
    return count(audit->fanout_delivered());
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf("audit/fanout/dropped", [audit, count] {
    return count(audit->fanout_dropped());
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf("audit/fanout/stitch_violations", [audit, count] {
    return count(audit->fanout_stitch_violations());
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf(
      "subscribers/active", [this] { return std::to_string(active_subscribers()); }));
  XSEC_RETURN_IF_ERROR(MountLeaf("subscribers/dropped", [this] {
    return std::to_string(subscriber_dropped_total());
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf("subscribers/quota_denied", [this] {
    return std::to_string(quota_denied_total());
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf("rate/checks_per_sec", [this] {
    MaybeTick();
    PublishedPtr cur = published_.load();
    return FormatFixed(cur == nullptr ? 0.0 : cur->checks_per_sec, 2);
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf("rate/denials_per_sec", [this] {
    MaybeTick();
    PublishedPtr cur = published_.load();
    return FormatFixed(cur == nullptr ? 0.0 : cur->denials_per_sec, 2);
  }));

  snapshot_node_ = values_.at(JoinPath(options_.mount_path, "snapshot")).node;

  auto svc = kernel_->RegisterService(options_.service_path, system);
  if (!svc.ok()) {
    return svc.status();
  }
  auto read_node = kernel_->RegisterProcedure(
      JoinPath(options_.service_path, "read"), system,
      [this](CallContext& ctx) -> StatusOr<Value> {
        auto path = ArgString(ctx.args, 0);
        if (!path.ok()) {
          return path.status();
        }
        auto value = ReadStat(*ctx.subject, *path);
        if (!value.ok()) {
          return value.status();
        }
        return Value{std::move(*value)};
      });
  if (!read_node.ok()) {
    return read_node.status();
  }
  auto dump_node = kernel_->RegisterProcedure(
      JoinPath(options_.service_path, "dump"), system,
      [this](CallContext& ctx) -> StatusOr<Value> {
        auto text = DumpTree(*ctx.subject);
        if (!text.ok()) {
          return text.status();
        }
        return Value{std::move(*text)};
      });
  if (!dump_node.ok()) {
    return dump_node.status();
  }
  // Shared by watch and poll: the optional trailing timeout argument. A
  // non-positive timeout used to park the caller for a zero-length wait that
  // always "timed out"; it is a caller bug, so it is rejected loudly.
  auto parse_timeout_ms = [](const std::vector<Value>& args,
                             size_t index) -> StatusOr<int64_t> {
    int64_t timeout_ms = 1000;
    if (args.size() > index) {
      auto t = ArgInt(args, index);
      if (!t.ok()) {
        return t.status();
      }
      if (*t <= 0) {
        return InvalidArgumentError(
            StrFormat("timeout_ms must be positive, got %lld",
                      static_cast<long long>(*t)));
      }
      timeout_ms = *t;
    }
    if (timeout_ms > 60'000) {
      timeout_ms = 60'000;  // never parks a thread for minutes
    }
    return timeout_ms;
  };

  auto watch_node = kernel_->RegisterProcedure(
      JoinPath(options_.service_path, "watch"), system,
      [this, parse_timeout_ms](CallContext& ctx) -> StatusOr<Value> {
        auto since = ArgInt(ctx.args, 0);
        if (!since.ok()) {
          return since.status();
        }
        if (*since < -1) {
          return InvalidArgumentError(
              StrFormat("since must be a version or -1, got %lld",
                        static_cast<long long>(*since)));
        }
        auto timeout_ms = parse_timeout_ms(ctx.args, 1);
        if (!timeout_ms.ok()) {
          return timeout_ms.status();
        }
        // Admission before blocking: watching the snapshot is reading it.
        Decision decision =
            kernel_->monitor().Check(*ctx.subject, snapshot_node_, AccessMode::kRead);
        if (!decision.allowed) {
          return decision.ToStatus();
        }
        uint64_t since_v;
        if (*since < 0) {
          // "Any change after this call": baseline a fresh publication that
          // already folds in this watch's own admission check, so the caller
          // blocks for the next *external* change instead of unblocking on
          // the counter bump the watch itself just caused.
          since_v = Tick();
        } else {
          since_v = static_cast<uint64_t>(*since);
        }
        uint64_t deadline =
            MonotonicNowNs() + static_cast<uint64_t>(*timeout_ms) * 1'000'000;
        if (ctx.deadline_ns != 0 && ctx.deadline_ns < deadline) {
          deadline = ctx.deadline_ns;
        }
        auto text = WaitForUpdate(since_v, deadline, &ctx);
        if (!text.ok()) {
          return text.status();
        }
        return Value{std::move(*text)};
      });
  if (!watch_node.ok()) {
    return watch_node.status();
  }
  auto subscribe_node = kernel_->RegisterProcedure(
      JoinPath(options_.service_path, "subscribe"), system,
      [this](CallContext& ctx) -> StatusOr<Value> {
        int64_t since = -1;
        if (!ctx.args.empty()) {
          auto s = ArgInt(ctx.args, 0);
          if (!s.ok()) {
            return s.status();
          }
          since = *s;
        }
        SubscriberBackpressure backpressure = SubscriberBackpressure::kDropOldest;
        if (ctx.args.size() > 1) {
          auto policy = ArgString(ctx.args, 1);
          if (!policy.ok()) {
            return policy.status();
          }
          if (*policy == "block") {
            backpressure = SubscriberBackpressure::kBlockPublisher;
          } else if (*policy != "drop") {
            return InvalidArgumentError(
                StrFormat("backpressure policy must be 'drop' or 'block', got '%s'",
                          std::string(*policy).c_str()));
          }
        }
        auto id = Subscribe(*ctx.subject, since, backpressure);
        if (!id.ok()) {
          return id.status();
        }
        return Value{std::to_string(*id)};
      });
  if (!subscribe_node.ok()) {
    return subscribe_node.status();
  }
  auto poll_node = kernel_->RegisterProcedure(
      JoinPath(options_.service_path, "poll"), system,
      [this, parse_timeout_ms](CallContext& ctx) -> StatusOr<Value> {
        auto id = ArgInt(ctx.args, 0);
        if (!id.ok()) {
          return id.status();
        }
        if (*id < 0) {
          return InvalidArgumentError("subscription handle cannot be negative");
        }
        auto timeout_ms = parse_timeout_ms(ctx.args, 1);
        if (!timeout_ms.ok()) {
          return timeout_ms.status();
        }
        uint64_t deadline =
            MonotonicNowNs() + static_cast<uint64_t>(*timeout_ms) * 1'000'000;
        if (ctx.deadline_ns != 0 && ctx.deadline_ns < deadline) {
          deadline = ctx.deadline_ns;
        }
        auto text =
            PollSubscription(*ctx.subject, static_cast<uint64_t>(*id), deadline, &ctx);
        if (!text.ok()) {
          return text.status();
        }
        return Value{std::move(*text)};
      });
  if (!poll_node.ok()) {
    return poll_node.status();
  }
  auto unsubscribe_node = kernel_->RegisterProcedure(
      JoinPath(options_.service_path, "unsubscribe"), system,
      [this](CallContext& ctx) -> StatusOr<Value> {
        auto id = ArgInt(ctx.args, 0);
        if (!id.ok()) {
          return id.status();
        }
        if (*id < 0) {
          return InvalidArgumentError("subscription handle cannot be negative");
        }
        XSEC_RETURN_IF_ERROR(Unsubscribe(*ctx.subject, static_cast<uint64_t>(*id)));
        return Value{"unsubscribed"};
      });
  if (!unsubscribe_node.ok()) {
    return unsubscribe_node.status();
  }
  auto export_node = kernel_->RegisterProcedure(
      JoinPath(options_.service_path, "export"), system,
      [this](CallContext& ctx) -> StatusOr<Value> {
        auto id = ArgInt(ctx.args, 0);
        if (!id.ok()) {
          return id.status();
        }
        if (*id < 0) {
          return InvalidArgumentError("subscription handle cannot be negative");
        }
        auto token = ExportSubscription(*ctx.subject, static_cast<uint64_t>(*id));
        if (!token.ok()) {
          return token.status();
        }
        return Value{std::move(*token)};
      });
  if (!export_node.ok()) {
    return export_node.status();
  }
  auto resume_node = kernel_->RegisterProcedure(
      JoinPath(options_.service_path, "resume"), system,
      [this](CallContext& ctx) -> StatusOr<Value> {
        auto token = ArgString(ctx.args, 0);
        if (!token.ok()) {
          return token.status();
        }
        auto id = ResumeSubscription(*ctx.subject, std::string(*token));
        if (!id.ok()) {
          return id.status();
        }
        return Value{std::to_string(*id)};
      });
  if (!resume_node.ok()) {
    return resume_node.status();
  }

  Tick();  // version 1: the boot-time state

  if (options_.background_publisher) {
    publisher_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(wait_mu_);
      while (!stop_) {
        wait_cv_.wait_for(lock, std::chrono::nanoseconds(options_.epoch_interval_ns));
        if (stop_) {
          break;
        }
        lock.unlock();
        Tick();
        lock.lock();
      }
    });
  }
  return OkStatus();
}

StatusOr<std::string> StatsService::ReadStat(Subject& subject, std::string_view path) {
  if (!StartsWith(path, options_.mount_path + "/")) {
    return InvalidArgumentError(
        StrFormat("'%s' is outside the stats mount '%s'", std::string(path).c_str(),
                  options_.mount_path.c_str()));
  }
  std::shared_lock<std::shared_mutex> lock(values_mu_);
  auto it = values_.find(std::string(path));
  if (it == values_.end()) {
    return NotFoundError(
        StrFormat("'%s' is not a stats leaf", std::string(path).c_str()));
  }
  Decision decision = kernel_->monitor().Check(subject, it->second.node, AccessMode::kRead);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  return it->second.render();
}

StatusOr<std::string> StatsService::DumpTree(Subject& subject) {
  std::string out;
  std::shared_lock<std::shared_mutex> lock(values_mu_);
  for (const auto& [path, leaf] : values_) {
    if (!leaf.in_dump) {
      continue;  // multi-line leaves (snapshot) don't fit the line format
    }
    if (!kernel_->monitor().Check(subject, leaf.node, AccessMode::kRead).allowed) {
      continue;  // the denial is counted and audited like any other
    }
    out += path + " " + leaf.render() + "\n";
  }
  return out;
}

std::string StatsService::RenderAll() const {
  std::string out;
  std::shared_lock<std::shared_mutex> lock(values_mu_);
  for (const auto& [path, leaf] : values_) {
    if (!leaf.in_dump) {
      continue;
    }
    out += path + " " + leaf.render() + "\n";
  }
  return out;
}

uint64_t StatsService::Tick() {
  ReferenceMonitor& monitor = kernel_->monitor();
  // Capture everything before taking pub_mu_: TakeSnapshot can spin briefly
  // around a concurrent Reset and must not do so while holding the
  // publication lock concurrent Ticks serialize on.
  MonitorStats::Snapshot snap = monitor.stats().TakeSnapshot();
  uint64_t cache_hits = monitor.cache().hits();
  uint64_t cache_misses = monitor.cache().misses();
  uint64_t cache_stale = monitor.cache().stale_hits();
  uint64_t audit_retained = monitor.audit().retained();
  uint64_t audit_dropped = monitor.audit().dropped();
  uint64_t now = MonotonicNowNs();

  PublishedPtr next;
  bool changed;
  {
    std::lock_guard<std::mutex> lock(pub_mu_);
    // Only this writer section swaps the pointer, so a relaxed load under
    // pub_mu_ sees the latest epoch.
    PublishedPtr cur = published_.load();
    changed = cur == nullptr || !snap.SameCounters(cur->snap) ||
              cache_hits != cur->cache_hits || cache_misses != cur->cache_misses ||
              cache_stale != cur->cache_stale || audit_retained != cur->audit_retained ||
              audit_dropped != cur->audit_dropped;
    if (changed) {
      ++version_;
    }
    // The rate ring tracks cumulative counters per publication epoch, each
    // stamped with the MonitorStats reset era it was captured in. Entries
    // from an older era are dropped — a cross-era delta is garbage even when
    // the newer cumulative value has already grown past the older one (the
    // counters restarted in between). Eras only move forward, so stale
    // entries are always a prefix.
    while (!rate_ring_.empty() && rate_ring_.front().reset_epoch != snap.reset_epoch) {
      rate_ring_.pop_front();
    }
    // Same-era decrease should be impossible; clear defensively if seen.
    if (!rate_ring_.empty() && snap.checks_total < rate_ring_.back().checks) {
      rate_ring_.clear();
    }
    rate_ring_.push_back(RateEpoch{now, snap.checks_total, snap.denied, snap.reset_epoch});
    while (rate_ring_.size() > 2 &&
           now - rate_ring_[1].t_ns >= options_.rate_window_ns) {
      rate_ring_.pop_front();
    }
    // Build the immutable epoch and swap it in. Even an unchanged tick
    // republishes (same version): the windowed rates and tick time moved,
    // and readers must see them without ever taking this lock.
    auto epoch = std::make_shared<PublishedEpoch>();
    epoch->version = version_;
    snap.version = version_;
    epoch->snap = snap;
    epoch->cache_hits = cache_hits;
    epoch->cache_misses = cache_misses;
    epoch->cache_stale = cache_stale;
    epoch->audit_retained = audit_retained;
    epoch->audit_dropped = audit_dropped;
    epoch->tick_ns = now;
    epoch->checks_per_sec = ChecksPerSecLocked();
    epoch->denials_per_sec = DenialsPerSecLocked();
    epoch->rendered = RenderEpoch(*epoch, nullptr);
    next = std::move(epoch);
    published_.store(next);
    last_tick_ns_.store(now, std::memory_order_relaxed);
  }
  if (changed) {
    {
      // Empty critical section: a waiter that checked the pointer before the
      // swap is either already parked (the notify below wakes it) or still
      // holds wait_mu_ (this lock waits for it to park first).
      std::lock_guard<std::mutex> lock(wait_mu_);
    }
    wait_cv_.notify_all();
    FanOut(next->version, next);
  }
  return next->version;
}

void StatsService::FanOut(uint64_t version, const PublishedPtr& epoch) {
  // Fast path: one sub_mu_ hold pushes the epoch pointer to every channel
  // with room (or evicts per kDropOldest). The only slow case — a *full*
  // kBlockPublisher queue — is deferred, because its capped wait must not
  // hold sub_mu_ against every other channel.
  std::vector<std::shared_ptr<SubscriberChannel>> deferred;
  uint64_t shed = 0;  // batched into subscriber_dropped_total_ once, below
  {
    std::lock_guard<std::mutex> lock(sub_mu_);
    for (const auto& channel : fanout_order_) {
      if (channel->closed || version <= channel->last_version) {
        continue;  // gone, or a concurrent Tick already delivered this epoch
      }
      if (XSEC_FAILPOINT_FIRED("stats.fanout.push")) {
        // Injected delivery failure: the epoch is lost to this channel
        // exactly like a backpressure drop (a sleep spec instead stalls
        // fan-out under sub_mu_, the shape of a wedged delivery path).
        channel->last_version = version;
        ++channel->dropped;
        ++shed;
        continue;
      }
      if (channel->queue.size() >= options_.subscriber_queue_capacity) {
        if (channel->backpressure == SubscriberBackpressure::kBlockPublisher) {
          deferred.push_back(channel);  // last_version set when handled below
          continue;
        }
        channel->last_version = version;
        channel->queue.pop_front();  // evict: the subscriber sees a gap
        channel->queue.push_back(epoch);
        ++channel->dropped;
        ++shed;
        if (channel->waiters != 0) {
          channel->cv.notify_all();
        }
        continue;
      }
      channel->last_version = version;
      channel->queue.push_back(epoch);
      if (channel->waiters != 0) {
        channel->cv.notify_all();
      }
    }
  }
  if (shed != 0) {
    subscriber_dropped_total_.fetch_add(shed, std::memory_order_relaxed);
  }
  for (const auto& channel : deferred) {
    std::unique_lock<std::mutex> lock(sub_mu_);
    if (channel->closed || version <= channel->last_version) {
      continue;
    }
    if (channel->queue.size() >= options_.subscriber_queue_capacity) {
      // Wait for the subscriber to drain — capped, so a stuck subscriber
      // costs the publisher at most publisher_block_cap_ns per epoch.
      channel->cv.wait_for(
          lock, std::chrono::nanoseconds(options_.publisher_block_cap_ns), [&] {
            return channel->closed ||
                   channel->queue.size() < options_.subscriber_queue_capacity;
          });
      if (channel->closed) {
        continue;
      }
    }
    channel->last_version = version;
    if (channel->queue.size() >= options_.subscriber_queue_capacity) {
      // Past the cap: the new epoch is the one dropped.
      ++channel->dropped;
      subscriber_dropped_total_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    channel->queue.push_back(epoch);
    channel->cv.notify_all();
  }
}

uint64_t StatsService::version() const {
  PublishedPtr cur = published_.load();
  return cur == nullptr ? 0 : cur->version;
}

void StatsService::MaybeTick() {
  uint64_t last = last_tick_ns_.load(std::memory_order_relaxed);
  if (last != 0 && MonotonicNowNs() - last < options_.epoch_interval_ns) {
    return;
  }
  Tick();
}

std::string StatsService::RenderSnapshot() {
  MaybeTick();
  PublishedPtr cur = published_.load();
  return cur == nullptr ? std::string() : cur->rendered;
}

StatusOr<std::string> StatsService::WaitForUpdate(uint64_t since, uint64_t deadline_ns,
                                                  const CallContext* call) {
  for (;;) {
    // Wakeup-path injection point: a sleep spec delays each recheck cycle
    // (simulating a tardy wakeup), an error spec just counts a fire — the
    // wait itself must not fail, only the deadline/cancel checks below can
    // end it.
    (void)XSEC_FAILPOINT_FIRED("stats.poll.wakeup");
    // Lock-free fast path: the reader never touches the writer's lock. A
    // `since` *ahead* of the published version is a handle from before a
    // service restart (version counters restart at 1): the caller's era is
    // gone, so the honest answer is the current state now, not a park that
    // can only time out.
    PublishedPtr cur = published_.load();
    if ((cur == nullptr ? 0 : cur->version) != since) {
      return cur == nullptr ? std::string() : cur->rendered;
    }
    uint64_t now = MonotonicNowNs();
    if (call != nullptr) {
      XSEC_RETURN_IF_ERROR(call->CheckDeadline());  // lock-free cancellation point
    }
    if (deadline_ns != 0 && now >= deadline_ns) {
      return DeadlineExceededError(
          StrFormat("no stats update past version %llu within the deadline",
                    static_cast<unsigned long long>(since)));
    }
    // Self-clocking: when the current epoch has elapsed, this watcher takes
    // its own fresh capture instead of waiting for a publisher thread that
    // may not exist.
    uint64_t next_capture =
        last_tick_ns_.load(std::memory_order_relaxed) + options_.epoch_interval_ns;
    if (now >= next_capture) {
      Tick();
      continue;
    }
    uint64_t wake = next_capture;
    if (deadline_ns != 0 && deadline_ns < wake) {
      wake = deadline_ns;
    }
    if (call != nullptr && options_.cancel_poll_interval_ns != 0 &&
        now + options_.cancel_poll_interval_ns < wake) {
      // A cancellable waiter never parks a whole epoch blind: cap the slice
      // so the loop re-polls CheckDeadline at cancel granularity. (Before
      // this cap a cancelled watcher slept out the full slice — up to the
      // epoch interval — before noticing.)
      wake = now + options_.cancel_poll_interval_ns;
    }
    {
      std::unique_lock<std::mutex> lock(wait_mu_);
      // Re-check under wait_mu_ before parking: Tick swaps the pointer and
      // then passes through this mutex before notifying, so a version that
      // landed after the fast-path check cannot be slept through.
      PublishedPtr again = published_.load();
      if ((again == nullptr ? 0 : again->version) == since) {
        wait_cv_.wait_for(lock, std::chrono::nanoseconds(wake - now));
      }
    }
    if (call != nullptr) {
      // Recheck before re-arming: a spurious wakeup (or a notify for some
      // other waiter) must not put a cancelled caller back to sleep.
      XSEC_RETURN_IF_ERROR(call->CheckDeadline());
    }
  }
}

StatusOr<uint64_t> StatsService::Subscribe(Subject& subject, int64_t since,
                                           SubscriberBackpressure backpressure) {
  if (since < -1) {
    return InvalidArgumentError(
        StrFormat("since must be a version or -1, got %lld", static_cast<long long>(since)));
  }
  // The ONE admission check of the channel's lifetime: opening a stream of
  // snapshots is reading the snapshot leaf. From here on the handle itself
  // is the capability.
  Decision decision = kernel_->monitor().Check(subject, snapshot_node_, AccessMode::kRead);
  if (!decision.allowed) {
    return decision.ToStatus();
  }
  // Baseline a fresh publication (folds in the admission check above), so
  // the channel starts at a well-defined epoch.
  uint64_t version = Tick();
  PublishedPtr current = published_.load();
  auto channel = std::make_shared<SubscriberChannel>();
  channel->owner = subject.principal;
  channel->backpressure = backpressure;
  channel->last_version = version;
  if (since >= 0 && static_cast<uint64_t>(since) != version) {
    // The subscriber is behind — or ahead, holding a version from a previous
    // service incarnation whose era is gone. Either way: seed the queue with
    // one catch-up snapshot. Intermediate epochs are not retained — a
    // subscription delivers current state plus every change from now on,
    // not history. last_delivered stays null so the catch-up renders full.
    channel->queue.push_back(current);
  } else {
    // Baselined now: the next delivery is a delta against this epoch.
    channel->last_delivered = current;
  }
  {
    std::lock_guard<std::mutex> lock(sub_mu_);
    if (subscribers_.size() >= options_.max_subscribers) {
      return ResourceExhaustedError(
          StrFormat("subscriber limit (%zu) reached", options_.max_subscribers));
    }
    if (options_.max_channels_per_principal != 0) {
      size_t owned = 0;
      for (const auto& [id, existing] : subscribers_) {
        if (existing->owner == subject.principal) {
          ++owned;
        }
      }
      if (owned >= options_.max_channels_per_principal) {
        quota_denied_total_.fetch_add(1, std::memory_order_relaxed);
        return ResourceExhaustedError(StrFormat(
            "per-principal channel quota (%zu) reached; unsubscribe or raise "
            "max_channels_per_principal",
            options_.max_channels_per_principal));
      }
    }
    channel->id = next_subscriber_id_++;
    subscribers_.emplace(channel->id, channel);
    fanout_order_.push_back(channel);
  }
  Status mounted = MountSubscriberLeaves(channel);
  if (!mounted.ok()) {
    (void)Unsubscribe(subject, channel->id);
    return mounted;
  }
  {
    // The leaves were mounted outside sub_mu_ (lock order), so a concurrent
    // Unsubscribe or GcChannelsFor may have reaped the channel in between —
    // and its unmount pass can have run before the mount finished. Re-check
    // under the lock: if the channel is closed, the leaves just mounted are
    // orphans that would resurrect telemetry for a dead channel. Tear them
    // down and report the reap instead of handing out a dead capability.
    std::lock_guard<std::mutex> lock(sub_mu_);
    if (!channel->closed) {
      return channel->id;
    }
  }
  UnmountSubscriberLeaves(channel->id);
  return FailedPreconditionError("subscription was reaped during subscribe");
}

StatusOr<std::string> StatsService::PollSubscription(Subject& subject, uint64_t id,
                                                     uint64_t deadline_ns,
                                                     const CallContext* call) {
  std::shared_ptr<SubscriberChannel> channel;
  {
    std::lock_guard<std::mutex> lock(sub_mu_);
    auto it = subscribers_.find(id);
    if (it == subscribers_.end()) {
      return NotFoundError(StrFormat("no subscription with handle %llu",
                                     static_cast<unsigned long long>(id)));
    }
    if (it->second->owner != subject.principal) {
      // The handle is a capability bound to the principal it was issued to;
      // a guessed or leaked handle number grants nothing.
      return PermissionDeniedError("subscription handle belongs to another principal");
    }
    channel = it->second;
  }
  for (;;) {
    (void)XSEC_FAILPOINT_FIRED("stats.poll.wakeup");
    PublishedPtr epoch;
    PublishedPtr prev;
    {
      std::lock_guard<std::mutex> lock(sub_mu_);
      if (!channel->queue.empty()) {
        epoch = std::move(channel->queue.front());
        channel->queue.pop_front();
        ++channel->delivered;
        prev = channel->last_delivered;
        channel->last_delivered = epoch;
        channel->cv.notify_all();  // a capped publisher may be waiting for space
      } else if (channel->closed) {
        return FailedPreconditionError("subscription was closed");
      }
    }
    if (epoch != nullptr) {
      // Render outside sub_mu_: a delta against the channel's previous
      // delivery (cumulative counters, so epochs dropped in between are
      // folded in exactly), or the full text on a first/catch-up delivery.
      if (prev == nullptr) {
        return epoch->rendered;
      }
      return RenderEpoch(*epoch, prev.get());
    }
    if (call != nullptr) {
      XSEC_RETURN_IF_ERROR(call->CheckDeadline());
    }
    uint64_t now = MonotonicNowNs();
    if (deadline_ns != 0 && now >= deadline_ns) {
      return DeadlineExceededError("no epoch published within the deadline");
    }
    // Self-clocking, like WaitForUpdate: with no background publisher the
    // blocked poller captures an epoch itself once the interval elapses
    // (Tick fans out to this very channel).
    uint64_t next_capture =
        last_tick_ns_.load(std::memory_order_relaxed) + options_.epoch_interval_ns;
    if (now >= next_capture) {
      Tick();
      continue;
    }
    uint64_t wake = next_capture;
    if (deadline_ns != 0 && deadline_ns < wake) {
      wake = deadline_ns;
    }
    if (call != nullptr && options_.cancel_poll_interval_ns != 0 &&
        now + options_.cancel_poll_interval_ns < wake) {
      // Same cancel-granularity cap as WaitForUpdate: a cancelled poller
      // must not sleep out a whole epoch slice before noticing.
      wake = now + options_.cancel_poll_interval_ns;
    }
    {
      std::unique_lock<std::mutex> lock(sub_mu_);
      if (channel->queue.empty() && !channel->closed) {
        // Registered under sub_mu_ before the wait releases it, so the
        // fan-out loop either sees waiters != 0 and notifies, or this
        // thread saw its push in the queue check above. No lost wakeup.
        ++channel->waiters;
        channel->cv.wait_for(lock, std::chrono::nanoseconds(wake - now));
        --channel->waiters;
      }
    }
    if (call != nullptr) {
      // Recheck before re-arming after a (possibly spurious) wakeup.
      XSEC_RETURN_IF_ERROR(call->CheckDeadline());
    }
  }
}

Status StatsService::Unsubscribe(Subject& subject, uint64_t id) {
  {
    std::lock_guard<std::mutex> lock(sub_mu_);
    auto it = subscribers_.find(id);
    if (it == subscribers_.end()) {
      return NotFoundError(StrFormat("no subscription with handle %llu",
                                     static_cast<unsigned long long>(id)));
    }
    if (it->second->owner != subject.principal) {
      return PermissionDeniedError("subscription handle belongs to another principal");
    }
    it->second->closed = true;
    it->second->cv.notify_all();  // release any blocked poller or publisher
    subscribers_.erase(it);
    fanout_order_.erase(
        std::remove_if(fanout_order_.begin(), fanout_order_.end(),
                       [id](const auto& c) { return c->id == id; }),
        fanout_order_.end());
  }
  UnmountSubscriberLeaves(id);
  return OkStatus();
}

StatusOr<std::string> StatsService::ExportSubscription(Subject& subject, uint64_t id) {
  std::lock_guard<std::mutex> lock(sub_mu_);
  auto it = subscribers_.find(id);
  if (it == subscribers_.end()) {
    return NotFoundError(StrFormat("no subscription with handle %llu",
                                   static_cast<unsigned long long>(id)));
  }
  const SubscriberChannel& channel = *it->second;
  if (channel.owner != subject.principal) {
    return PermissionDeniedError("subscription handle belongs to another principal");
  }
  // The durable identity is deliberately tiny: who, how far they have read,
  // and how they want backpressure handled. No capability material — resume
  // re-runs admission, so the token is a bookmark, not a bearer credential.
  return StrFormat(
      "xsec-sub-v1 principal=%lu since=%llu policy=%s",
      static_cast<unsigned long>(channel.owner.value),
      static_cast<unsigned long long>(channel.last_version),
      channel.backpressure == SubscriberBackpressure::kBlockPublisher ? "block" : "drop");
}

StatusOr<uint64_t> StatsService::ResumeSubscription(Subject& subject,
                                                    const std::string& token) {
  std::vector<std::string> parts = StrSplit(token, ' ', /*skip_empty=*/true);
  if (parts.size() != 4 || parts[0] != "xsec-sub-v1") {
    return InvalidArgumentError("unrecognized subscription token");
  }
  uint64_t principal = 0;
  uint64_t since = 0;
  SubscriberBackpressure backpressure = SubscriberBackpressure::kDropOldest;
  bool have_principal = false;
  bool have_since = false;
  bool have_policy = false;
  for (size_t i = 1; i < parts.size(); ++i) {
    size_t eq = parts[i].find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("malformed subscription token field");
    }
    std::string key = parts[i].substr(0, eq);
    std::string val = parts[i].substr(eq + 1);
    if (key == "principal" || key == "since") {
      uint64_t parsed = 0;
      if (val.empty()) {
        return InvalidArgumentError("malformed subscription token field");
      }
      for (char c : val) {
        if (c < '0' || c > '9') {
          return InvalidArgumentError("malformed subscription token field");
        }
        if (parsed > (std::numeric_limits<uint64_t>::max() - (c - '0')) / 10) {
          return InvalidArgumentError("subscription token field overflows");
        }
        parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
      }
      if (key == "principal") {
        principal = parsed;
        have_principal = true;
      } else {
        since = parsed;
        have_since = true;
      }
    } else if (key == "policy") {
      if (val == "block") {
        backpressure = SubscriberBackpressure::kBlockPublisher;
      } else if (val != "drop") {
        return InvalidArgumentError("subscription token policy must be drop or block");
      }
      have_policy = true;
    } else {
      return InvalidArgumentError("unrecognized subscription token field");
    }
  }
  if (!have_principal || !have_since || !have_policy) {
    return InvalidArgumentError("incomplete subscription token");
  }
  if (principal != subject.principal.value) {
    // A token names its owner; presenting someone else's bookmark is denied
    // before any admission work happens.
    return PermissionDeniedError("subscription token belongs to another principal");
  }
  if (since > static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return InvalidArgumentError("subscription token version out of range");
  }
  // Subscribe re-runs the monitor admission Check: a principal whose read
  // right was revoked since the export is denied here, token or no token.
  // A `since` from the previous incarnation that differs from the current
  // version seeds one catch-up snapshot, so the resumed channel starts from
  // observable state instead of a silent gap.
  return Subscribe(subject, static_cast<int64_t>(since), backpressure);
}

size_t StatsService::GcChannelsFor(PrincipalId principal) {
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(sub_mu_);
    for (auto it = subscribers_.begin(); it != subscribers_.end();) {
      if (it->second->owner == principal) {
        ids.push_back(it->first);
        it->second->closed = true;
        it->second->cv.notify_all();  // release blocked pollers/publishers
        it = subscribers_.erase(it);
      } else {
        ++it;
      }
    }
    if (!ids.empty()) {
      fanout_order_.erase(
          std::remove_if(fanout_order_.begin(), fanout_order_.end(),
                         [](const auto& c) { return c->closed; }),
          fanout_order_.end());
    }
  }
  // Leaves are unmounted outside sub_mu_ (lock order: values_mu_ is never
  // taken while sub_mu_ is held). A Subscribe racing this reap re-checks
  // `closed` after its own mount and tears the leaves down itself, so the
  // channel cannot come back as orphaned telemetry.
  for (uint64_t id : ids) {
    UnmountSubscriberLeaves(id);
  }
  return ids.size();
}

size_t StatsService::active_subscribers() const {
  std::lock_guard<std::mutex> lock(sub_mu_);
  return subscribers_.size();
}

Status StatsService::MountSubscriberLeaves(const std::shared_ptr<SubscriberChannel>& channel) {
  // Renders hold the channel shared_ptr, so a leaf read races safely with
  // Unsubscribe (it reports the channel's final counters until unmounted).
  std::string base = StrFormat("subscribers/%llu", static_cast<unsigned long long>(channel->id));
  XSEC_RETURN_IF_ERROR(MountLeaf(base + "/queued", [this, channel] {
    std::lock_guard<std::mutex> lock(sub_mu_);
    return std::to_string(channel->queue.size());
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf(base + "/delivered", [this, channel] {
    std::lock_guard<std::mutex> lock(sub_mu_);
    return std::to_string(channel->delivered);
  }));
  XSEC_RETURN_IF_ERROR(MountLeaf(base + "/dropped", [this, channel] {
    std::lock_guard<std::mutex> lock(sub_mu_);
    return std::to_string(channel->dropped);
  }));
  return OkStatus();
}

void StatsService::UnmountSubscriberLeaves(uint64_t id) {
  std::string prefix = JoinPath(
      options_.mount_path,
      StrFormat("subscribers/%llu", static_cast<unsigned long long>(id)));
  std::unique_lock<std::shared_mutex> lock(values_mu_);
  for (auto it = values_.lower_bound(prefix); it != values_.end();) {
    if (!StartsWith(it->first, prefix + "/")) {
      break;
    }
    (void)kernel_->name_space().Unbind(it->second.node);
    it = values_.erase(it);
  }
  // The now-empty per-channel directory goes too.
  auto dir = kernel_->name_space().Lookup(prefix);
  if (dir.ok()) {
    (void)kernel_->name_space().Unbind(*dir);
  }
}

double StatsService::ChecksPerSecLocked() const {
  if (rate_ring_.size() < 2) {
    return 0.0;
  }
  const RateEpoch& oldest = rate_ring_.front();
  const RateEpoch& newest = rate_ring_.back();
  if (newest.t_ns <= oldest.t_ns || newest.checks < oldest.checks) {
    return 0.0;
  }
  return static_cast<double>(newest.checks - oldest.checks) * 1e9 /
         static_cast<double>(newest.t_ns - oldest.t_ns);
}

double StatsService::DenialsPerSecLocked() const {
  if (rate_ring_.size() < 2) {
    return 0.0;
  }
  const RateEpoch& oldest = rate_ring_.front();
  const RateEpoch& newest = rate_ring_.back();
  if (newest.t_ns <= oldest.t_ns || newest.denials < oldest.denials) {
    return 0.0;
  }
  return static_cast<double>(newest.denials - oldest.denials) * 1e9 /
         static_cast<double>(newest.t_ns - oldest.t_ns);
}

std::string StatsService::RenderEpoch(const PublishedEpoch& cur,
                                      const PublishedEpoch* prev) const {
  const std::string& m = options_.mount_path;
  const MonitorStats::Snapshot& s = cur.snap;
  std::string out;
  out += StrFormat("version %llu\n", static_cast<unsigned long long>(cur.version));
  out += StrFormat("reset_epoch %llu\n", static_cast<unsigned long long>(s.reset_epoch));
  if (prev != nullptr) {
    // Delta framing: every counter below is cumulative, so a delta against
    // any older epoch is exact — including across epochs the channel
    // dropped. Unchanged leaves are omitted.
    out += StrFormat("delta_from %llu\n", static_cast<unsigned long long>(prev->version));
  }
  auto line = [&out, &m, prev](const char* rel, uint64_t v, uint64_t prev_v) {
    if (prev != nullptr && v == prev_v) {
      return;
    }
    out += StrFormat("%s/%s %llu\n", m.c_str(), rel, static_cast<unsigned long long>(v));
  };
  auto text_line = [&out, &m, prev](const char* rel, const std::string& v,
                                    const std::string& prev_v) {
    if (prev != nullptr && v == prev_v) {
      return;
    }
    out += StrFormat("%s/%s %s\n", m.c_str(), rel, v.c_str());
  };
  const MonitorStats::Snapshot* p = prev == nullptr ? nullptr : &prev->snap;
  line("checks/total", s.checks_total, p == nullptr ? 0 : p->checks_total);
  line("checks/allowed", s.allowed, p == nullptr ? 0 : p->allowed);
  line("checks/denied", s.denied, p == nullptr ? 0 : p->denied);
  for (int i = 0; i < kAccessModeCount; ++i) {
    AccessMode mode = static_cast<AccessMode>(1u << i);
    line(StrFormat("checks/by-mode/%s", std::string(AccessModeName(mode)).c_str()).c_str(),
         s.by_mode[i], p == nullptr ? 0 : p->by_mode[i]);
  }
  for (size_t r = 1; r < kDenyReasonCount; ++r) {
    DenyReason reason = static_cast<DenyReason>(r);
    line(StrFormat("denials/by-reason/%s", std::string(DenyReasonName(reason)).c_str()).c_str(),
         s.by_reason[r], p == nullptr ? 0 : p->by_reason[r]);
  }
  line("cache/hits", cur.cache_hits, prev == nullptr ? 0 : prev->cache_hits);
  line("cache/misses", cur.cache_misses, prev == nullptr ? 0 : prev->cache_misses);
  line("cache/stale", cur.cache_stale, prev == nullptr ? 0 : prev->cache_stale);
  auto hit_rate = [](const PublishedEpoch& e) {
    uint64_t probes = e.cache_hits + e.cache_misses;
    return FormatFixed(probes == 0 ? 0.0
                                   : static_cast<double>(e.cache_hits) /
                                         static_cast<double>(probes),
                       4);
  };
  text_line("cache/hit_rate", hit_rate(cur),
            prev == nullptr ? std::string() : hit_rate(*prev));
  line("latency/p50", s.LatencyQuantileNs(0.50),
       p == nullptr ? 0 : p->LatencyQuantileNs(0.50));
  line("latency/p90", s.LatencyQuantileNs(0.90),
       p == nullptr ? 0 : p->LatencyQuantileNs(0.90));
  line("latency/p99", s.LatencyQuantileNs(0.99),
       p == nullptr ? 0 : p->LatencyQuantileNs(0.99));
  line("latency/samples", s.latency_samples, p == nullptr ? 0 : p->latency_samples);
  line("audit/retained", cur.audit_retained, prev == nullptr ? 0 : prev->audit_retained);
  line("audit/dropped", cur.audit_dropped, prev == nullptr ? 0 : prev->audit_dropped);
  text_line("rate/checks_per_sec", FormatFixed(cur.checks_per_sec, 2),
            prev == nullptr ? std::string() : FormatFixed(prev->checks_per_sec, 2));
  text_line("rate/denials_per_sec", FormatFixed(cur.denials_per_sec, 2),
            prev == nullptr ? std::string() : FormatFixed(prev->denials_per_sec, 2));
  return out;
}

}  // namespace xsec
