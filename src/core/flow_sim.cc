#include "src/core/flow_sim.h"

#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/mac/flow_policy.h"
#include "src/monitor/monitor_stats.h"

namespace xsec {

FlowSimResult RunFlowSimulation(const ProtectionModel& model, const FlowSimConfig& config) {
  Rng rng(config.seed);
  FlowPolicy flow{FlowPolicyOptions{}};

  auto random_class = [&]() {
    TrustLevel level = static_cast<TrustLevel>(rng.NextBelow(config.num_levels));
    CategorySet cats(config.num_categories);
    for (size_t c = 0; c < config.num_categories; ++c) {
      if (rng.NextBool(1, 2)) {
        cats.Set(c);
      }
    }
    return SecurityClass(level, std::move(cats));
  };

  BaselineWorld world;
  constexpr uint32_t kEveryoneGid = 1;
  for (size_t i = 0; i < config.num_subjects; ++i) {
    BaselineSubject subject;
    subject.name = StrFormat("s%zu", i);
    subject.uid = static_cast<uint32_t>(100 + i);
    subject.gids = {kEveryoneGid};
    subject.origin = Origin::kLocal;  // keep the Java sandbox maximally open
    subject.security_class = random_class();
    world.subjects.push_back(std::move(subject));
    world.spin_links[StrFormat("s%zu", i)] = {"all"};
  }
  for (size_t i = 0; i < config.num_objects; ++i) {
    BaselineObject object;
    object.path = StrFormat("/fs/data/o%zu", i);
    object.owner_uid = 100;  // someone else; ownership is irrelevant here
    object.unix_mode = 0777;
    object.acl = {BaselineAce{true, true, kEveryoneGid, AccessModeSet::All()}};
    object.spin_domain = "all";
    object.security_class = random_class();
    world.objects.push_back(std::move(object));
  }

  constexpr AccessMode kOps[] = {AccessMode::kRead, AccessMode::kWrite,
                                 AccessMode::kWriteAppend};
  FlowSimResult result;
  uint64_t poll_every = config.poll_every_ops == 0 ? 1 : config.poll_every_ops;
  for (uint64_t op = 0; op < config.num_ops; ++op) {
    if (op % poll_every == 0 &&
        ((config.cancel != nullptr && config.cancel->load(std::memory_order_relaxed)) ||
         (config.deadline_ns != 0 && MonotonicNowNs() >= config.deadline_ns))) {
      result.cancelled = true;
      return result;
    }
    const BaselineSubject& subject =
        world.subjects[rng.NextBelow(world.subjects.size())];
    const BaselineObject& object = world.objects[rng.NextBelow(world.objects.size())];
    AccessMode mode = kOps[rng.NextBelow(3)];
    bool allowed = model.Allows(world, subject, object, mode);
    bool flow_legal = flow.ModeAllowed(subject.security_class, object.security_class, mode);
    ++result.ops;
    if (allowed) {
      ++result.allowed;
      if (!flow_legal) {
        ++result.flow_violations;
      }
    } else {
      ++result.denied;
      if (flow_legal) {
        // DAC was wide open, so a denial of a flow-legal op is the model
        // being more restrictive than the policy requires.
        ++result.over_restrictions;
      }
    }
  }
  return result;
}

}  // namespace xsec
