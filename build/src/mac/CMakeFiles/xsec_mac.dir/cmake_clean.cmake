file(REMOVE_RECURSE
  "CMakeFiles/xsec_mac.dir/flow_policy.cc.o"
  "CMakeFiles/xsec_mac.dir/flow_policy.cc.o.d"
  "CMakeFiles/xsec_mac.dir/label_authority.cc.o"
  "CMakeFiles/xsec_mac.dir/label_authority.cc.o.d"
  "libxsec_mac.a"
  "libxsec_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
