# Empty dependencies file for bench_f1_mediation.
# This may be replaced when dependencies are built.
