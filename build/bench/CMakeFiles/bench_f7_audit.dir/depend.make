# Empty dependencies file for bench_f7_audit.
# This may be replaced when dependencies are built.
