file(REMOVE_RECURSE
  "libxsec_services.a"
)
