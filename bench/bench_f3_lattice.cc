// Experiment F3 — lattice operation cost vs category-set width (DESIGN.md §5).
//
// The MAC check is one Dominates() per access; the figure shows it staying
// flat while the categories fit in one machine word and growing linearly in
// 64-bit words beyond that — i.e. MAC adds near-constant cost for realistic
// category counts (the paper's example needs four).

#include <benchmark/benchmark.h>

#include "src/base/rng.h"
#include "src/mac/security_class.h"

namespace xsec {
namespace {

SecurityClass RandomClass(Rng& rng, size_t categories) {
  CategorySet cats(categories);
  for (size_t c = 0; c < categories; ++c) {
    if (rng.NextBool(1, 2)) {
      cats.Set(c);
    }
  }
  return SecurityClass(static_cast<TrustLevel>(rng.NextBelow(4)), std::move(cats));
}

void BM_Dominates(benchmark::State& state) {
  Rng rng(42);
  size_t width = static_cast<size_t>(state.range(0));
  SecurityClass a = RandomClass(rng, width);
  SecurityClass b = RandomClass(rng, width);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Dominates(b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Dominates)->RangeMultiplier(4)->Range(1, 4096)->Complexity(benchmark::oN);

void BM_DominatesSubsetHolds(benchmark::State& state) {
  // Worst case: the subset relation holds, so every word is inspected.
  size_t width = static_cast<size_t>(state.range(0));
  CategorySet small(width), large(width);
  for (size_t c = 0; c < width; c += 2) {
    small.Set(c);
  }
  large.SetAll();
  SecurityClass lo(0, std::move(small));
  SecurityClass hi(1, std::move(large));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hi.Dominates(lo));
  }
}
BENCHMARK(BM_DominatesSubsetHolds)->RangeMultiplier(4)->Range(1, 4096);

void BM_Join(benchmark::State& state) {
  Rng rng(7);
  size_t width = static_cast<size_t>(state.range(0));
  SecurityClass a = RandomClass(rng, width);
  SecurityClass b = RandomClass(rng, width);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Join(b));
  }
}
BENCHMARK(BM_Join)->RangeMultiplier(4)->Range(1, 4096);

void BM_Meet(benchmark::State& state) {
  Rng rng(9);
  size_t width = static_cast<size_t>(state.range(0));
  SecurityClass a = RandomClass(rng, width);
  SecurityClass b = RandomClass(rng, width);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Meet(b));
  }
}
BENCHMARK(BM_Meet)->RangeMultiplier(4)->Range(1, 4096);

void BM_ClassHash(benchmark::State& state) {
  Rng rng(11);
  SecurityClass a = RandomClass(rng, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Hash());
  }
}
BENCHMARK(BM_ClassHash)->RangeMultiplier(4)->Range(1, 4096);

}  // namespace
}  // namespace xsec

BENCHMARK_MAIN();
