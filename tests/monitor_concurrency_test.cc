// Hammers the reference monitor from many threads at once: readers calling
// Check/CheckPath while administrators rewrite ACLs, relabel nodes, and churn
// group membership. Designed to run under ThreadSanitizer (ci/run_checks.sh
// builds with -fsanitize=thread); any lock-ordering or publication bug in the
// stores, the decision cache, or the audit log shows up here.
//
// Beyond "no crashes, no races" the test checks the cache soundness property
// end to end: once the mutators stop, every cached decision must agree with a
// fresh cache-disabled evaluation over the same stores — concurrency may make
// cached entries spuriously stale, never wrongly fresh.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/monitor/reference_monitor.h"

namespace xsec {
namespace {

constexpr size_t kNodes = 32;
constexpr size_t kReaderThreads = 4;
constexpr int kReaderIterations = 4000;
constexpr int kMutatorIterations = 400;

class MonitorConcurrencyTest : public ::testing::Test {
 protected:
  MonitorConcurrencyTest() {
    MonitorOptions options;
    options.audit_policy = AuditPolicy::kDenialsOnly;
    options.audit_capacity = 1024;
    options.cache_slots = 4096;
    monitor_ = std::make_unique<ReferenceMonitor>(&ns_, &acls_, &principals_, &labels_, options);

    admin_ = *principals_.CreateUser("admin");
    officer_ = *principals_.CreateUser("officer");
    group_ = *principals_.CreateGroup("readers");
    for (size_t i = 0; i < kReaderThreads; ++i) {
      users_.push_back(*principals_.CreateUser("user" + std::to_string(i)));
      (void)principals_.AddMember(group_, users_.back());
    }
    churn_user_ = *principals_.CreateUser("churn");
    (void)labels_.DefineLevels({"low", "high"});
    monitor_->set_security_officer(officer_);

    svc_ = *ns_.BindPath("/svc", NodeKind::kDirectory, admin_);
    for (size_t i = 0; i < kNodes; ++i) {
      nodes_.push_back(
          *ns_.BindPath("/svc/n" + std::to_string(i), NodeKind::kFile, admin_));
    }
    // Group may list the tree and read every node (per-node ACLs are what
    // the ACL-mutator thread rewrites).
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, group_,
                  AccessMode::kRead | AccessMode::kList});
    (void)ns_.SetAclRef(svc_, acls_.Create(std::move(acl)));
  }

  Subject Low(PrincipalId p) { return Subject{p, labels_.Bottom(), 1}; }

  NameSpace ns_;
  AclStore acls_;
  PrincipalRegistry principals_;
  LabelAuthority labels_;
  std::unique_ptr<ReferenceMonitor> monitor_;
  PrincipalId admin_, officer_, group_, churn_user_;
  std::vector<PrincipalId> users_;
  NodeId svc_;
  std::vector<NodeId> nodes_;
};

TEST_F(MonitorConcurrencyTest, ConcurrentChecksAndMutationsAreRaceFreeAndSound) {
  std::atomic<uint64_t> reader_checks{0};
  std::vector<std::thread> threads;

  // Readers: cached checks plus the occasional full path resolution.
  for (size_t t = 0; t < kReaderThreads; ++t) {
    threads.emplace_back([&, t] {
      Subject me = Low(users_[t]);
      for (int i = 0; i < kReaderIterations; ++i) {
        NodeId node = nodes_[(t * 7 + static_cast<size_t>(i)) % kNodes];
        (void)monitor_->Check(me, node, AccessMode::kRead);
        reader_checks.fetch_add(1, std::memory_order_relaxed);
        if (i % 16 == 0) {
          (void)monitor_->CheckPath(me, "/svc/n" + std::to_string(i % kNodes),
                                    AccessMode::kRead);
        }
      }
    });
  }

  // ACL mutator: rewrites per-node ACLs, alternately granting and revoking.
  threads.emplace_back([&] {
    Subject admin = Low(admin_);
    for (int i = 0; i < kMutatorIterations; ++i) {
      NodeId node = nodes_[static_cast<size_t>(i) % kNodes];
      Acl acl;
      if (i % 2 == 0) {
        acl.AddEntry({AclEntryType::kAllow, group_, AccessModeSet(AccessMode::kRead)});
      }
      ASSERT_TRUE(monitor_->SetNodeAcl(admin, node, std::move(acl)).ok());
      if (i % 8 == 0) {
        ASSERT_TRUE(monitor_
                        ->AddAclEntry(admin, node,
                                      {AclEntryType::kAllow, churn_user_,
                                       AccessModeSet(AccessMode::kRead)})
                        .ok());
        ASSERT_TRUE(monitor_->RemoveAclEntriesFor(admin, node, churn_user_).ok());
      }
    }
  });

  // Label mutator: the security officer floats node labels low <-> high.
  threads.emplace_back([&] {
    Subject officer = Low(officer_);
    SecurityClass low = labels_.Bottom();
    SecurityClass high(1, CategorySet(0));
    for (int i = 0; i < kMutatorIterations; ++i) {
      NodeId node = nodes_[static_cast<size_t>(i * 3) % kNodes];
      ASSERT_TRUE(
          monitor_->SetNodeLabel(officer, node, i % 2 == 0 ? high : low).ok());
    }
  });

  // Membership churn: a principal enters and leaves the reader group.
  threads.emplace_back([&] {
    for (int i = 0; i < kMutatorIterations; ++i) {
      ASSERT_TRUE(principals_.AddMember(group_, churn_user_).ok());
      Subject churn = Low(churn_user_);
      (void)monitor_->Check(churn, nodes_[static_cast<size_t>(i) % kNodes],
                            AccessMode::kRead);
      ASSERT_TRUE(principals_.RemoveMember(group_, churn_user_).ok());
    }
  });

  for (std::thread& t : threads) {
    t.join();
  }

  // Counter invariants survive arbitrary interleavings.
  const DecisionCache& cache = monitor_->cache();
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
  EXPECT_LE(cache.stale_hits(), cache.misses());
  EXPECT_GE(monitor_->audit().total_checks(), reader_checks.load());
  EXPECT_GE(monitor_->audit().total_checks(), monitor_->audit().total_denials());

  // Soundness at quiescence: every cached decision equals a fresh evaluation
  // by a cache-disabled monitor sharing the same stores.
  MonitorOptions fresh_options;
  fresh_options.cache_enabled = false;
  fresh_options.audit_policy = AuditPolicy::kOff;
  ReferenceMonitor fresh(&ns_, &acls_, &principals_, &labels_, fresh_options);
  for (size_t t = 0; t < kReaderThreads; ++t) {
    Subject me = Low(users_[t]);
    for (NodeId node : nodes_) {
      Decision cached = monitor_->Check(me, node, AccessMode::kRead);
      Decision ground_truth = fresh.Check(me, node, AccessMode::kRead);
      EXPECT_EQ(cached.allowed, ground_truth.allowed)
          << "node " << node.value << " user " << t;
      EXPECT_EQ(cached.reason, ground_truth.reason);
    }
  }
}

// The audit ring accepts concurrent producers without losing its bounded-size
// or monotonic-sequence guarantees.
TEST_F(MonitorConcurrencyTest, AuditRingUnderConcurrentDenials) {
  monitor_->set_audit_policy(AuditPolicy::kAll);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kReaderThreads; ++t) {
    threads.emplace_back([&, t] {
      Subject me = Low(users_[t]);
      for (int i = 0; i < kReaderIterations / 4; ++i) {
        (void)monitor_->Check(me, nodes_[static_cast<size_t>(i) % kNodes],
                              AccessMode::kWrite);  // never granted -> denials
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  std::vector<AuditRecord> records = monitor_->audit().records();
  EXPECT_LE(records.size(), 1024u);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].sequence, records[i].sequence);
  }
  EXPECT_EQ(monitor_->audit().total_checks(),
            kReaderThreads * static_cast<uint64_t>(kReaderIterations / 4));
}

}  // namespace
}  // namespace xsec
