// The AFS (Andrew/ITC File System) baseline: full ACLs, but only at the
// granularity of entire directories.
//
// Paper §2: "The Andrew File System uses full-blown access control lists,
// but does so only at the granularity of entire directories, which we
// believe is at too high a grain."
//
// Every access to an object is evaluated against the ACL of the object's
// *parent directory* (or the object's own ACL if it is itself a directory).
// Consequently two files in one directory can never carry different rights —
// exactly the failure scenario T1/S6 exercises. AFS supports negative rights
// and groups, so those work; write-append, execute-vs-extend and MAC do not
// exist (append collapses to write; extend collapses to write).

#ifndef XSEC_SRC_BASELINES_AFS_MODEL_H_
#define XSEC_SRC_BASELINES_AFS_MODEL_H_

#include "src/baselines/model.h"

namespace xsec {

class AfsModel : public ProtectionModel {
 public:
  std::string_view name() const override { return "afs"; }

  bool Allows(const BaselineWorld& world, const BaselineSubject& subject,
              const BaselineObject& object, AccessMode mode) const override;
};

}  // namespace xsec

#endif  // XSEC_SRC_BASELINES_AFS_MODEL_H_
