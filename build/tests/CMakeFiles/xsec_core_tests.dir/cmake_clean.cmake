file(REMOVE_RECURSE
  "CMakeFiles/xsec_core_tests.dir/applet_example_test.cc.o"
  "CMakeFiles/xsec_core_tests.dir/applet_example_test.cc.o.d"
  "CMakeFiles/xsec_core_tests.dir/baselines_test.cc.o"
  "CMakeFiles/xsec_core_tests.dir/baselines_test.cc.o.d"
  "CMakeFiles/xsec_core_tests.dir/flow_sim_test.cc.o"
  "CMakeFiles/xsec_core_tests.dir/flow_sim_test.cc.o.d"
  "CMakeFiles/xsec_core_tests.dir/integration_test.cc.o"
  "CMakeFiles/xsec_core_tests.dir/integration_test.cc.o.d"
  "CMakeFiles/xsec_core_tests.dir/scenarios_test.cc.o"
  "CMakeFiles/xsec_core_tests.dir/scenarios_test.cc.o.d"
  "CMakeFiles/xsec_core_tests.dir/secure_system_test.cc.o"
  "CMakeFiles/xsec_core_tests.dir/secure_system_test.cc.o.d"
  "xsec_core_tests"
  "xsec_core_tests.pdb"
  "xsec_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
