#include "src/monitor/compiled_policy.h"

#include "src/base/failpoint.h"
#include "src/base/strings.h"
#include "src/monitor/reference_monitor.h"

namespace xsec {

StatusOr<std::shared_ptr<const CompiledPolicy>> CompiledPolicy::Build(
    const NameSpace& name_space, const AclStore& acls, const PrincipalRegistry& principals,
    const LabelAuthority& labels, const CompiledPolicyConfig& config,
    const ShardStampSet& stamps, const std::vector<SecurityClass>& extra_classes) {
  // Fault-injection hook for the recompile path: an injected failure here
  // must degrade to "stay interpreted", never to a wrong decision — the
  // differential fuzzer arms this under its fault sweep.
  XSEC_FAILPOINT("monitor.recompile");

  std::shared_ptr<CompiledPolicy> cp(new CompiledPolicy());
  cp->stamps_ = stamps;
  cp->config_ = config;
  cp->principal_count_ = principals.principal_count();

  if (config.dac_enabled) {
    const size_t acl_count = acls.size();
    const size_t cells = (acl_count + 1) * cp->principal_count_;
    if (cells > config.max_dac_cells) {
      return ResourceExhaustedError(
          StrFormat("compiled DAC table would need %zu cells (cap %zu)", cells,
                    config.max_dac_cells));
    }
    // Closures are cached inside the registry, but hoist the handles so each
    // is fetched once, not once per ACL.
    std::vector<std::shared_ptr<const DynamicBitset>> closures(cp->principal_count_);
    for (size_t p = 0; p < cp->principal_count_; ++p) {
      closures[p] = principals.Closure(PrincipalId{static_cast<uint32_t>(p)});
    }
    cp->dac_.assign(cells, 0);
    Acl acl;
    for (size_t a = 0; a < acl_count; ++a) {
      if (!acls.CopyAcl(static_cast<AclStore::AclRef>(a), &acl)) {
        continue;  // row stays all-zero, like an empty ACL
      }
      uint16_t* row = cp->dac_.data() + a * cp->principal_count_;
      for (const AclEntry& entry : acl.entries()) {
        const uint16_t bits = entry.type == AclEntryType::kAllow
                                  ? static_cast<uint16_t>(entry.modes.bits())
                                  : static_cast<uint16_t>(entry.modes.bits() << 8);
        for (size_t p = 0; p < cp->principal_count_; ++p) {
          if (closures[p]->Test(entry.who.value)) {
            row[p] |= bits;
          }
        }
      }
    }
    // Row acl_count stays all-zero: dangling refs evaluate like an empty ACL.
  }

  if (config.mac_enabled) {
    cp->matrix_ = labels.CompileDominance(config.max_classes, extra_classes);
    if (cp->matrix_ == nullptr) {
      return ResourceExhaustedError(
          StrFormat("distinct security classes exceed compiled cap %zu", config.max_classes));
    }
    const size_t n = cp->matrix_->size();
    cp->mac_mask_.assign(n * n, 0);
    for (size_t s = 0; s < n; ++s) {
      for (size_t o = 0; o < n; ++o) {
        cp->mac_mask_[s * n + o] = static_cast<uint8_t>(
            FlowAllowedMask(cp->matrix_->Dominates(s, o), cp->matrix_->Dominates(o, s),
                            config.flow)
                .bits());
      }
    }
  }

  const size_t node_count = name_space.node_count();
  const size_t acl_count = acls.size();
  cp->nodes_.resize(node_count);
  for (size_t i = 0; i < node_count; ++i) {
    NodeEntry& entry = cp->nodes_[i];
    NameSpace::SecuritySnapshot snap;
    if (!name_space.SnapshotSecurity(NodeId{static_cast<uint32_t>(i)}, &snap)) {
      continue;  // dead node: !alive decides kNotFound, same as interpreted
    }
    entry.alive = true;
    entry.owner = snap.owner;
    if (snap.effective_acl_ref == kNoRef) {
      entry.dac_row = kNoAcl;
    } else if (snap.effective_acl_ref < acl_count) {
      entry.dac_row = snap.effective_acl_ref;
    } else {
      entry.dac_row = static_cast<uint32_t>(acl_count);  // dangling: zero row
    }
    if (config.mac_enabled) {
      std::shared_ptr<const SecurityClass> handle =
          snap.effective_label_ref != kNoRef ? labels.LabelHandle(snap.effective_label_ref)
                                             : nullptr;
      // The interpreted path substitutes a default-constructed (⊥-shaped)
      // class for a missing label; ⊥ is always seeded into the matrix and
      // class equality ignores bitset capacity, so IdOf finds it.
      const SecurityClass fallback;
      entry.label_id = cp->matrix_->IdOf(handle ? *handle : fallback);
    }
  }

  return std::shared_ptr<const CompiledPolicy>(std::move(cp));
}

bool CompiledPolicy::Evaluate(const Subject& subject, NodeId node, AccessModeSet modes,
                              const LabelAuthority& labels, Decision* out) const {
  // A node id beyond the compiled width cannot exist while the stamp vector
  // is valid (Bind bumps the namespace generation), so it is decided, not a
  // fallback. NodeId::kInvalid lands here too.
  if (node.value >= nodes_.size() || !nodes_[node.value].alive) {
    *out = Decision{false, DenyReason::kNotFound, "node does not exist"};
    return true;
  }
  const NodeEntry& entry = nodes_[node.value];

  if (config_.dac_enabled) {
    AccessModeSet dac_modes = modes;
    if (subject.principal == entry.owner) {
      dac_modes = dac_modes - AccessModeSet(AccessMode::kAdministrate);
    }
    if (!dac_modes.empty()) {
      if (entry.dac_row == kNoAcl) {
        *out = Decision{false, DenyReason::kDacNoGrant, "no ACL grants this access"};
        return true;
      }
      if (subject.principal.value >= principal_count_) {
        // Created after the compile (CreateUser bumps no stamp): no row.
        return false;
      }
      const uint16_t cell = dac_[entry.dac_row * principal_count_ + subject.principal.value];
      const uint32_t allowed = cell & 0xffu;
      const uint32_t denied = cell >> 8;
      if ((denied & dac_modes.bits()) != 0) {
        *out = Decision{false, DenyReason::kDacExplicitDeny, "matched a negative ACL entry"};
        return true;
      }
      if ((dac_modes.bits() & ~allowed) != 0) {
        *out = Decision{false, DenyReason::kDacNoGrant, "no ACL entry grants this access"};
        return true;
      }
    }
  }

  if (config_.mac_enabled) {
    if (entry.label_id == kNoLabel) {
      return false;
    }
    const int32_t sid = matrix_->IdOf(subject.security_class);
    if (sid < 0) {
      return false;  // class not interned; the monitor queues it for the next compile
    }
    const size_t n = matrix_->size();
    const uint8_t mask = mac_mask_[static_cast<size_t>(sid) * n + entry.label_id];
    // MAC examines the ORIGINAL request, including an administrate bit the
    // owner carve-out removed from the DAC set — same as the interpreted
    // path.
    const uint32_t violating = modes.bits() & ~static_cast<uint32_t>(mask);
    if (violating != 0) {
      // Lowest violating bit, matching FlowPolicy::Check's reported mode.
      const AccessMode mode = static_cast<AccessMode>(violating & (~violating + 1));
      // Format from the interned label (lattice-equal to the stored one, so
      // ClassToString renders identically) and the subject's own class.
      *out = Decision{
          false, DenyReason::kMacFlow,
          StrFormat("%s of %s by subject at %s violates information flow",
                    std::string(AccessModeName(mode)).c_str(),
                    labels.ClassToString(matrix_->classes()[entry.label_id]).c_str(),
                    labels.ClassToString(subject.security_class).c_str())};
      return true;
    }
  }

  *out = Decision{true, DenyReason::kNone, ""};
  return true;
}

size_t CompiledPolicy::table_bytes() const {
  return nodes_.size() * sizeof(NodeEntry) + dac_.size() * sizeof(uint16_t) +
         mac_mask_.size() * sizeof(uint8_t);
}

}  // namespace xsec
