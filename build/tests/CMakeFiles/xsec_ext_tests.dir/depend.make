# Empty dependencies file for xsec_ext_tests.
# This may be replaced when dependencies are built.
