// The virtual file system switch: the paper's worked specialization example.
//
// §1.1: "an extension can be used to provide a new file system that is not
// supported by the original system. … to access the new file system, a user
// invokes the existing, general file system interfaces which have been
// extended (or specialized) by the extension to also handle the new type of
// file system."
//
// Each registered file-system *type* is an extension-point interface node
// (/svc/vfs/types/<type>). An extension that implements the type exports a
// handler onto that node (an `extend`-checked operation at link time). User
// code keeps calling the general procedures /svc/vfs/{read,write,list} with
// the type name as the first argument; the VFS forwards the operation to the
// type's interface, where the dispatcher selects the right extension for the
// caller's security class.
//
// Handler calling convention: args = [op:string, path:string, data?:bytes],
// op ∈ {"read","write","list"}; result is bytes for read, bool for write,
// string for list.

#ifndef XSEC_SRC_SERVICES_VFS_H_
#define XSEC_SRC_SERVICES_VFS_H_

#include <string>

#include "src/extsys/kernel.h"

namespace xsec {

class VfsService {
 public:
  VfsService(Kernel* kernel, std::string service_path = "/svc/vfs");

  Status Install();

  // Creates the extension-point interface for a new file-system type
  // (administrator/base-system operation). Who may *implement* the type is
  // then governed by the `extend` mode on the returned interface node.
  StatusOr<NodeId> CreateFsType(std::string_view type_name, PrincipalId owner);

  std::string TypeInterfacePath(std::string_view type_name) const;

  // -- Mediated operations ----------------------------------------------------
  StatusOr<std::vector<uint8_t>> Read(Subject& subject, std::string_view type,
                                      std::string_view path);
  Status Write(Subject& subject, std::string_view type, std::string_view path,
               std::vector<uint8_t> data);
  StatusOr<std::string> ListDir(Subject& subject, std::string_view type, std::string_view path);

 private:
  StatusOr<Value> Forward(Subject& subject, std::string_view type, Args args);

  Kernel* kernel_;
  std::string service_path_;
};

}  // namespace xsec

#endif  // XSEC_SRC_SERVICES_VFS_H_
