// The SPIN domain baseline (paper §1.2).
//
// "System services are partitioned into several domains, where each domain
// is a collection of Modula-3 interfaces. An extension is linked against one
// or more domains and can only access and extend those system services that
// are in the domains it has been linked against. … an extension can either
// call on and extend ALL interfaces in all domains it has been linked
// against, or access control is ad hoc."
//
// So: the decision is purely "is the object's domain among the subject's
// linked domains?" — all-or-nothing per domain, execute and extend
// inseparable, no per-procedure refinement, no negative rights, no MAC.
// Objects with an empty domain (plain data such as files) are outside the
// mechanism entirely; SPIN leaves those to Modula-3 type safety, which the
// model approximates as "reachable if any link exists".

#ifndef XSEC_SRC_BASELINES_SPIN_DOMAIN_MODEL_H_
#define XSEC_SRC_BASELINES_SPIN_DOMAIN_MODEL_H_

#include "src/baselines/model.h"

namespace xsec {

class SpinDomainModel : public ProtectionModel {
 public:
  std::string_view name() const override { return "spin-domains"; }

  bool Allows(const BaselineWorld& world, const BaselineSubject& subject,
              const BaselineObject& object, AccessMode mode) const override;
};

}  // namespace xsec

#endif  // XSEC_SRC_BASELINES_SPIN_DOMAIN_MODEL_H_
