file(REMOVE_RECURSE
  "CMakeFiles/xsec_policy.dir/policy_io.cc.o"
  "CMakeFiles/xsec_policy.dir/policy_io.cc.o.d"
  "libxsec_policy.a"
  "libxsec_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
