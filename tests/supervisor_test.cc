// Extension supervision (docs/MODEL.md §16): budgets, circuit breakers,
// audited quarantine, the mediated /svc/health control plane, the monitor
// health state machine, nested-invoke deadline inheritance, and the ring
// watchdog's heartbeat contract.

#include "src/extsys/supervisor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "src/base/failpoint.h"
#include "src/core/secure_system.h"
#include "src/monitor/mediation_ring.h"

namespace xsec {
namespace {

// A budget that trips on the first breaker failure and half-opens fast, so
// tests heal circuits with one short sleep.
ExtensionBudget HairTrigger(uint64_t probe_after_ns = 2'000'000) {
  ExtensionBudget budget;
  budget.trip_after = 1;
  budget.probe_after_ns = probe_after_ns;
  return budget;
}

class SupervisorTest : public ::testing::Test {
 protected:
  SupervisorTest() { Boot(SupervisorOptions{}); }

  void Boot(SupervisorOptions options) {
    sys_ = std::make_unique<SecureSystem>();
    auto supervisor = sys_->EnableSupervision(options);
    ASSERT_TRUE(supervisor.ok()) << supervisor.status().ToString();
    supervisor_ = *supervisor;
    dev_ = *sys_->CreateUser("dev");
    dev_s_ = sys_->Login(dev_, sys_->labels().Bottom());
    hook_ = *sys_->kernel().RegisterInterface("/svc/hook/point", sys_->system_principal());
    // The /svc default makes the interface callable; extending it is the
    // grant under test.
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, dev_,
                  AccessMode::kExtend | AccessMode::kExecute | AccessMode::kList});
    ASSERT_TRUE(
        sys_->name_space().SetAclRef(hook_, sys_->kernel().acls().Create(std::move(acl))).ok());
  }

  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  // A human operator: an ordinary user granted administrate on the health
  // mount, so the mediated /svc/health control plane is exercised end to end
  // through path traversal, execute, and the administrate check — no
  // system-subject shortcut.
  Subject Operator() {
    auto op = sys_->CreateUser("op");
    EXPECT_TRUE(op.ok());
    NodeId mount = *sys_->name_space().Lookup("/sys/monitor/health");
    EXPECT_TRUE(sys_->monitor()
                    .AddAclEntry(sys_->SystemSubject(), mount,
                                 {AclEntryType::kAllow, *op,
                                  AccessMode::kAdministrate | AccessMode::kRead |
                                      AccessMode::kList})
                    .ok());
    return sys_->Login(*op, sys_->labels().Bottom());
  }

  // Loads an extension exporting one handler on the hook interface.
  ExtensionId Load(const std::string& name, HandlerFn handler) {
    ExtensionManifest manifest;
    manifest.name = name;
    manifest.exports.push_back({"/svc/hook/point", std::move(handler)});
    auto id = sys_->LoadExtension(manifest, dev_s_);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return id.ok() ? *id : ExtensionId{};
  }

  StatusOr<Value> CallHook(const CallOptions& options = {}) {
    return sys_->Invoke(dev_s_, "/svc/hook/point", {}, options);
  }

  std::unique_ptr<SecureSystem> sys_;
  ExtensionSupervisor* supervisor_ = nullptr;
  PrincipalId dev_;
  Subject dev_s_;
  NodeId hook_;
};

TEST_F(SupervisorTest, LoadedExtensionsAutoRegister) {
  Load("auto-reg", [](CallContext&) -> StatusOr<Value> { return Value{true}; });
  EXPECT_TRUE(supervisor_->IsRegistered("auto-reg"));
  auto snap = supervisor_->Snapshot("auto-reg");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, ExtHealth::kHealthy);
  EXPECT_EQ(snap->invokes, 0u);
}

TEST_F(SupervisorTest, BudgetCapsTheHandlerDeadline) {
  Load("echo-deadline", [](CallContext& ctx) -> StatusOr<Value> {
    return Value{static_cast<int64_t>(ctx.deadline_ns)};
  });
  ExtensionBudget budget;
  budget.invoke_budget_ns = 50'000'000;  // 50 ms
  supervisor_->SetBudget("echo-deadline", budget);

  // An unbounded caller still gets a bounded handler.
  uint64_t before = MonotonicNowNs();
  auto unbounded = CallHook();
  ASSERT_TRUE(unbounded.ok()) << unbounded.status().ToString();
  uint64_t seen = static_cast<uint64_t>(std::get<int64_t>(*unbounded));
  EXPECT_GT(seen, before);
  EXPECT_LE(seen, before + 1'000'000'000u);

  // A caller deadline tighter than the budget wins.
  CallOptions options;
  options.deadline_ns = MonotonicNowNs() + 10'000'000;  // 10 ms
  auto bounded = CallHook(options);
  ASSERT_TRUE(bounded.ok());
  EXPECT_LE(static_cast<uint64_t>(std::get<int64_t>(*bounded)), options.deadline_ns);
}

TEST_F(SupervisorTest, SleepOverrunningTheBudgetIsATimeoutAndTrips) {
  std::atomic<int> runs{0};
  Load("wedger", [&runs](CallContext&) -> StatusOr<Value> {
    ++runs;
    return Value{true};
  });
  ExtensionBudget budget = HairTrigger(/*probe_after_ns=*/1'000'000'000);
  budget.invoke_budget_ns = 5'000'000;  // 5 ms
  supervisor_->SetBudget("wedger", budget);
  // The stall is injected inside the supervised window, so the overrun is
  // recorded as the timeout it simulates — without the handler running.
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("ext.invoke.wedger", "sleep=20ms").ok());

  auto result = CallHook();
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(runs.load(), 0);

  auto snap = supervisor_->Snapshot("wedger");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, ExtHealth::kQuarantined);
  EXPECT_EQ(snap->timeouts, 1u);
  EXPECT_EQ(snap->trips, 1u);
}

TEST_F(SupervisorTest, MaxInflightFailsFastWithResourceExhausted) {
  NodeId node = *sys_->name_space().BindPath("/svc/hook/manual", NodeKind::kObject,
                                             sys_->system_principal());
  ExtensionBudget budget;
  budget.max_inflight = 1;
  supervisor_->Register("bounded", node, budget);

  auto first = supervisor_->Admit("bounded", 0);
  ASSERT_TRUE(first.ok());
  auto second = supervisor_->Admit("bounded", 0);
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  first->Complete(OkStatus());
  auto third = supervisor_->Admit("bounded", 0);
  EXPECT_TRUE(third.ok());
  third->Complete(OkStatus());
}

TEST_F(SupervisorTest, CancelledCallsDoNotFeedTheBreaker) {
  NodeId node = *sys_->name_space().BindPath("/svc/hook/manual2", NodeKind::kObject,
                                             sys_->system_principal());
  supervisor_->Register("cancelly", node, HairTrigger());
  auto permit = supervisor_->Admit("cancelly", 0);
  ASSERT_TRUE(permit.ok());
  permit->Complete(CancelledError("caller gave up"));
  auto snap = supervisor_->Snapshot("cancelly");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, ExtHealth::kHealthy);
  EXPECT_EQ(snap->failures, 1u);
  EXPECT_EQ(snap->trips, 0u);
}

// -- Quarantine lifecycle -----------------------------------------------------

class QuarantineTest : public SupervisorTest {};

TEST_F(QuarantineTest, BreakerTripsAfterConsecutiveFailuresAndFailsFast) {
  std::atomic<int> runs{0};
  Load("flaky", [&runs](CallContext&) -> StatusOr<Value> {
    ++runs;
    return InternalError("extension crashed");
  });
  ExtensionBudget budget;
  budget.trip_after = 3;
  budget.probe_after_ns = 1'000'000'000;  // no probe during this test
  supervisor_->SetBudget("flaky", budget);

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(CallHook().status().code(), StatusCode::kInternal);
  }
  EXPECT_EQ(runs.load(), 3);

  // Tripped: the next call fails fast without running the handler. With no
  // healthy peer on the interface, selection itself answers kUnavailable.
  auto rejected = CallHook();
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(runs.load(), 3);

  auto snap = supervisor_->Snapshot("flaky");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, ExtHealth::kQuarantined);
  EXPECT_EQ(snap->trips, 1u);
  EXPECT_EQ(snap->failures, 3u);

  // The trip is in the audit trail as a kQuarantined denial on the health
  // leaf (default policy retains denials).
  auto trips = sys_->monitor().audit().Query([](const AuditRecord& r) {
    return !r.allowed && r.reason == DenyReason::kQuarantined &&
           r.path == "/sys/monitor/health/ext/flaky/state";
  });
  EXPECT_EQ(trips.size(), 1u);
}

TEST_F(QuarantineTest, HalfOpenProbeRecoversTheCircuit) {
  std::atomic<bool> failing{true};
  Load("healer", [&failing](CallContext&) -> StatusOr<Value> {
    if (failing.load()) {
      return InternalError("still sick");
    }
    return Value{true};
  });
  supervisor_->SetBudget("healer", HairTrigger(/*probe_after_ns=*/2'000'000));

  EXPECT_EQ(CallHook().status().code(), StatusCode::kInternal);
  EXPECT_EQ(CallHook().status().code(), StatusCode::kUnavailable);  // quarantined

  failing.store(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // Dwell elapsed: this call is admitted as THE half-open probe and its
  // success releases the quarantine.
  auto probe = CallHook();
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();

  auto snap = supervisor_->Snapshot("healer");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, ExtHealth::kHealthy);
  EXPECT_EQ(snap->releases, 1u);
  EXPECT_TRUE(CallHook().ok());
}

TEST_F(QuarantineTest, FailedProbeRequarantinesWithoutANewTrip) {
  Load("chronic", [](CallContext&) -> StatusOr<Value> {
    return InternalError("chronically sick");
  });
  supervisor_->SetBudget("chronic", HairTrigger(/*probe_after_ns=*/2'000'000));

  EXPECT_EQ(CallHook().status().code(), StatusCode::kInternal);  // trip
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(CallHook().status().code(), StatusCode::kInternal);  // failed probe

  auto snap = supervisor_->Snapshot("chronic");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, ExtHealth::kQuarantined);
  // Same quarantine episode: one trip, not two.
  EXPECT_EQ(snap->trips, 1u);
  EXPECT_EQ(snap->releases, 0u);
}

TEST_F(QuarantineTest, MediatedReleaseRestoresServiceAndIsAccessChecked) {
  Load("victim", [](CallContext&) -> StatusOr<Value> { return Value{true}; });
  ASSERT_TRUE(supervisor_->Quarantine("victim", "operator test").ok());
  EXPECT_EQ(CallHook().status().code(), StatusCode::kUnavailable);

  // An unprivileged caller cannot release: the administrate check on the
  // health leaf denies (and is itself a counted, audited decision).
  auto denied = sys_->Invoke(dev_s_, "/svc/health/release",
                             {Value{std::string("victim")}, Value{std::string("nice try")}});
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(supervisor_->Snapshot("victim")->state, ExtHealth::kQuarantined);

  // An authorized operator passes the same mediated path and service resumes.
  Subject root = Operator();
  auto released = sys_->Invoke(root, "/svc/health/release",
                               {Value{std::string("victim")}, Value{std::string("verified fix")}});
  ASSERT_TRUE(released.ok()) << released.status().ToString();
  EXPECT_EQ(std::get<std::string>(*released), "healthy");
  EXPECT_TRUE(CallHook().ok());
  EXPECT_EQ(supervisor_->Snapshot("victim")->releases, 1u);
}

TEST_F(QuarantineTest, HealthTelemetryIsMountedAndMediated) {
  Load("seen", [](CallContext&) -> StatusOr<Value> { return Value{true}; });
  ASSERT_TRUE(supervisor_->Quarantine("seen", "test").ok());

  Subject root = Operator();
  auto state = sys_->stats().ReadStat(root, "/sys/monitor/health/ext/seen/state");
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(*state, "quarantined");
  auto trips = sys_->stats().ReadStat(root, "/sys/monitor/health/ext/seen/trips");
  ASSERT_TRUE(trips.ok());
  EXPECT_EQ(*trips, "1");
  auto quarantined = sys_->stats().ReadStat(root, "/sys/monitor/health/quarantined");
  ASSERT_TRUE(quarantined.ok());
  EXPECT_EQ(*quarantined, "1");

  // The same leaves are fail-closed for an unprivileged reader.
  auto hidden = sys_->stats().ReadStat(dev_s_, "/sys/monitor/health/ext/seen/state");
  EXPECT_EQ(hidden.status().code(), StatusCode::kPermissionDenied);

  // The /svc/health summary and listing agree.
  auto summary = sys_->Invoke(root, "/svc/health/state", {});
  ASSERT_TRUE(summary.ok());
  EXPECT_NE(std::get<std::string>(*summary).find("quarantined 1"), std::string::npos);
  auto listing = sys_->Invoke(root, "/svc/health/list", {});
  ASSERT_TRUE(listing.ok());
  EXPECT_NE(std::get<std::string>(*listing).find("seen quarantined"), std::string::npos);
}

TEST_F(QuarantineTest, DispatchSkipsQuarantinedHandlers) {
  std::atomic<int> a_runs{0}, b_runs{0};
  Load("ext-a", [&a_runs](CallContext&) -> StatusOr<Value> {
    ++a_runs;
    return Value{std::string("a")};
  });
  Load("ext-b", [&b_runs](CallContext&) -> StatusOr<Value> {
    ++b_runs;
    return Value{std::string("b")};
  });

  // Same class: registration order breaks the tie, so ext-a is selected.
  auto first = CallHook();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(std::get<std::string>(*first), "a");

  // Quarantining the selected handler makes selection fall through to the
  // next-best healthy peer instead of failing the caller.
  ASSERT_TRUE(supervisor_->Quarantine("ext-a", "test").ok());
  auto rerouted = CallHook();
  ASSERT_TRUE(rerouted.ok()) << rerouted.status().ToString();
  EXPECT_EQ(std::get<std::string>(*rerouted), "b");
  EXPECT_EQ(a_runs.load(), 1);

  // Both quarantined: the caller is cleared but supervision refuses work —
  // kUnavailable, distinct from a permission denial.
  ASSERT_TRUE(supervisor_->Quarantine("ext-b", "test").ok());
  EXPECT_EQ(CallHook().status().code(), StatusCode::kUnavailable);
}

// -- Lockdown and the health state machine ------------------------------------

TEST_F(SupervisorTest, LockdownDeniesExtendWhileReadsAndCallsStayLive) {
  Load("pre-lockdown", [](CallContext&) -> StatusOr<Value> { return Value{true}; });

  Subject root = Operator();
  auto armed = sys_->Invoke(root, "/svc/health/lockdown",
                            {Value{std::string("on")}, Value{std::string("incident")}});
  ASSERT_TRUE(armed.ok()) << armed.status().ToString();
  EXPECT_EQ(std::get<std::string>(*armed), "lockdown");
  EXPECT_TRUE(sys_->monitor().lockdown());

  // Extend-mode checks — new extension links — are refused as kUnavailable
  // (kQuarantined denials, never cached)...
  ExtensionManifest manifest;
  manifest.name = "too-late";
  manifest.exports.push_back(
      {"/svc/hook/point", [](CallContext&) -> StatusOr<Value> { return Value{true}; }});
  auto denied = sys_->LoadExtension(manifest, dev_s_);
  EXPECT_FALSE(denied.ok());

  // ...while non-extend modes keep serving: existing invocations succeed and
  // ordinary checks still answer from the live policy.
  EXPECT_TRUE(CallHook().ok());
  Decision listing = sys_->monitor().Check(dev_s_, hook_, AccessMode::kList);
  EXPECT_TRUE(listing.allowed);

  auto disarmed = sys_->Invoke(root, "/svc/health/lockdown",
                               {Value{std::string("off")}, Value{std::string("resolved")}});
  ASSERT_TRUE(disarmed.ok());
  EXPECT_FALSE(sys_->monitor().lockdown());
  EXPECT_TRUE(sys_->LoadExtension(manifest, dev_s_).ok());
}

TEST_F(SupervisorTest, QuarantineCascadeEntersLockdownAndReleaseRecovers) {
  SupervisorOptions options;
  options.degraded_after = 1;
  options.lockdown_after = 2;
  Boot(options);
  Load("c-one", [](CallContext&) -> StatusOr<Value> { return Value{true}; });
  Load("c-two", [](CallContext&) -> StatusOr<Value> { return Value{true}; });

  ASSERT_TRUE(supervisor_->Quarantine("c-one", "test").ok());
  EXPECT_EQ(supervisor_->system_health(), SystemHealth::kDegraded);
  EXPECT_FALSE(sys_->monitor().lockdown());

  ASSERT_TRUE(supervisor_->Quarantine("c-two", "test").ok());
  EXPECT_EQ(supervisor_->system_health(), SystemHealth::kLockdown);
  EXPECT_TRUE(sys_->monitor().lockdown());

  // The cascade and the recovery are both audited system transitions.
  auto transitions = sys_->monitor().audit().Query([](const AuditRecord& r) {
    return r.path == "/sys/monitor/health/state";
  });
  EXPECT_FALSE(transitions.empty());

  ASSERT_TRUE(supervisor_->Release("c-two", "fixed").ok());
  EXPECT_EQ(supervisor_->system_health(), SystemHealth::kDegraded);
  ASSERT_TRUE(supervisor_->Release("c-one", "fixed").ok());
  EXPECT_EQ(supervisor_->system_health(), SystemHealth::kHealthy);
  EXPECT_FALSE(sys_->monitor().lockdown());
}

// -- Nested-invoke deadline inheritance (the §16 regression) ------------------

TEST_F(SupervisorTest, NestedInvokeInheritsTheParentDeadline) {
  (void)*sys_->kernel().RegisterProcedure(
      "/svc/nest/inner", sys_->system_principal(),
      [](CallContext& ctx) -> StatusOr<Value> {
        return Value{static_cast<int64_t>(ctx.deadline_ns)};
      });
  (void)*sys_->kernel().RegisterProcedure(
      "/svc/nest/outer", sys_->system_principal(),
      [](CallContext& ctx) -> StatusOr<Value> {
        // No explicit options: the child must inherit the caller's bound.
        return ctx.kernel->Invoke(*ctx.subject, "/svc/nest/inner", {});
      });

  CallOptions options;
  options.deadline_ns = MonotonicNowNs() + 50'000'000;  // 50 ms
  auto inner_deadline = sys_->Invoke(dev_s_, "/svc/nest/outer", {}, options);
  ASSERT_TRUE(inner_deadline.ok()) << inner_deadline.status().ToString();
  EXPECT_EQ(static_cast<uint64_t>(std::get<int64_t>(*inner_deadline)), options.deadline_ns);

  // A child may tighten its own bound; inheritance never widens it.
  (void)*sys_->kernel().RegisterProcedure(
      "/svc/nest/tight", sys_->system_principal(),
      [](CallContext& ctx) -> StatusOr<Value> {
        CallOptions tighter;
        tighter.deadline_ns = MonotonicNowNs() + 1'000'000;  // 1 ms
        return ctx.kernel->Invoke(*ctx.subject, "/svc/nest/inner", {}, tighter);
      });
  auto tightened = sys_->Invoke(dev_s_, "/svc/nest/tight", {}, options);
  ASSERT_TRUE(tightened.ok());
  EXPECT_LT(static_cast<uint64_t>(std::get<int64_t>(*tightened)), options.deadline_ns);
}

TEST_F(SupervisorTest, TwoDeepChainExpiresOnceAsDeadlineExceeded) {
  (void)*sys_->kernel().RegisterProcedure(
      "/svc/nest/spin", sys_->system_principal(),
      [](CallContext& ctx) -> StatusOr<Value> {
        // A cooperative spinner: without inheritance its context is
        // unbounded and this would hang the chain forever (the pre-§16 bug).
        for (;;) {
          Status bound = ctx.CheckDeadline();
          if (!bound.ok()) {
            return bound;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
  (void)*sys_->kernel().RegisterProcedure(
      "/svc/nest/relay", sys_->system_principal(),
      [](CallContext& ctx) -> StatusOr<Value> {
        return ctx.kernel->Invoke(*ctx.subject, "/svc/nest/spin", {});
      });

  CallOptions options;
  options.deadline_ns = MonotonicNowNs() + 20'000'000;  // 20 ms
  auto start = std::chrono::steady_clock::now();
  auto result = sys_->Invoke(dev_s_, "/svc/nest/relay", {}, options);
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed_ms, 5000);
}

TEST_F(SupervisorTest, NestedInvokeInheritsTheParentCancelFlag) {
  // The inner handler reports whether a cancel flag reached it at all; the
  // caller's flag stays unset so nothing short-circuits at the boundary.
  (void)*sys_->kernel().RegisterProcedure(
      "/svc/nest/inner-cancel", sys_->system_principal(),
      [](CallContext& ctx) -> StatusOr<Value> {
        Status withdrawn = ctx.CheckDeadline();
        if (!withdrawn.ok()) {
          return withdrawn;
        }
        return Value{ctx.cancel != nullptr};
      });
  (void)*sys_->kernel().RegisterProcedure(
      "/svc/nest/outer-cancel", sys_->system_principal(),
      [](CallContext& ctx) -> StatusOr<Value> {
        return ctx.kernel->Invoke(*ctx.subject, "/svc/nest/inner-cancel", {});
      });
  std::atomic<bool> cancel{false};
  CallOptions options;
  options.cancel = &cancel;
  auto inherited = sys_->Invoke(dev_s_, "/svc/nest/outer-cancel", {}, options);
  ASSERT_TRUE(inherited.ok()) << inherited.status().ToString();
  EXPECT_TRUE(std::get<bool>(*inherited));

  // Without a caller flag the child sees none either.
  auto bare = sys_->Invoke(dev_s_, "/svc/nest/outer-cancel", {});
  ASSERT_TRUE(bare.ok());
  EXPECT_FALSE(std::get<bool>(*bare));

  // And a set flag is honored: the chain answers kCancelled, not a hang.
  cancel.store(true);
  auto cancelled = sys_->Invoke(dev_s_, "/svc/nest/outer-cancel", {}, options);
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
}

// -- The ring watchdog and the fail-fast admission gate -----------------------

class WatchdogTest : public ::testing::Test {
 protected:
  WatchdogTest() {
    sys_ = std::make_unique<SecureSystem>();
    SupervisorOptions options;
    options.stuck_after_ns = 100'000'000;       // 100 ms
    options.watchdog_interval_ns = 10'000'000'000;  // deterministic: we scan by hand
    auto supervisor = sys_->EnableSupervision(options);
    EXPECT_TRUE(supervisor.ok());
    supervisor_ = *supervisor;
    alice_ = *sys_->CreateUser("alice");
    alice_s_ = sys_->Login(alice_, sys_->labels().Bottom());
    obj_ = *sys_->name_space().BindPath("/fs/watch/obj", NodeKind::kFile,
                                        sys_->system_principal());
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, alice_, AccessModeSet(AccessMode::kRead)});
    (void)sys_->name_space().SetAclRef(obj_, sys_->kernel().acls().Create(std::move(acl)));
  }

  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  MediationRingOptions RingOptions() {
    MediationRingOptions options;
    options.shards = 1;
    options.batch_max = 1;
    return options;
  }

  std::unique_ptr<SecureSystem> sys_;
  ExtensionSupervisor* supervisor_ = nullptr;
  PrincipalId alice_;
  Subject alice_s_;
  NodeId obj_;
};

// The pinned heartbeat contract: heartbeats are stamped at BATCH boundaries
// and "stuck" means ONE batch in flight past stuck_after_ns. A worker that is
// slow but completing batches (each under the bound) must never be declared
// stuck, no matter how long the backlog takes in total.
TEST_F(WatchdogTest, SlowButProgressingBatchIsNotStuck) {
  MediationRing ring(&sys_->monitor(), RingOptions());
  supervisor_->WatchRing(&ring);
  // 8 batches x 20ms each: total work (~160ms) exceeds stuck_after (100ms),
  // but every single batch finishes well under the bound.
  ASSERT_TRUE(FailpointRegistry::Instance().Arm("ring.worker.0.batch", "sleep=20ms").ok());

  auto client = ring.NewClient();
  std::vector<uint64_t> tickets;
  for (int i = 0; i < 8; ++i) {
    auto ticket = ring.SubmitCheck(*client, alice_s_, obj_, AccessMode::kRead);
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  // Scan continuously while the backlog drains.
  for (uint64_t ticket : tickets) {
    supervisor_->RunWatchdogOnce();
    EXPECT_EQ(supervisor_->stuck_shards(), 0u);
    ASSERT_TRUE(ring.Wait(*client, ticket).ok());
  }
  supervisor_->RunWatchdogOnce();
  EXPECT_EQ(supervisor_->stuck_shards(), 0u);
  EXPECT_EQ(supervisor_->system_health(), SystemHealth::kHealthy);
}

TEST_F(WatchdogTest, WedgedBatchIsDeclaredStuckAndDegradesHealth) {
  MediationRing ring(&sys_->monitor(), RingOptions());
  supervisor_->WatchRing(&ring);
  // One batch wedged for 400ms against a 100ms bound.
  ASSERT_TRUE(
      FailpointRegistry::Instance().Arm("ring.worker.0.batch", "sleep=400ms,times=1").ok());

  auto client = ring.NewClient();
  auto ticket = ring.SubmitCheck(*client, alice_s_, obj_, AccessMode::kRead);
  ASSERT_TRUE(ticket.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  supervisor_->RunWatchdogOnce();
  EXPECT_EQ(supervisor_->stuck_shards(), 1u);
  EXPECT_EQ(supervisor_->system_health(), SystemHealth::kDegraded);

  // The batch eventually completes; the next scan clears the verdict.
  ASSERT_TRUE(ring.Wait(*client, *ticket).ok());
  supervisor_->RunWatchdogOnce();
  EXPECT_EQ(supervisor_->stuck_shards(), 0u);
  EXPECT_EQ(supervisor_->system_health(), SystemHealth::kHealthy);
}

TEST_F(WatchdogTest, QuarantinedTargetFailsFastAtTheRingGateWithoutCredits) {
  MediationRingOptions options = RingOptions();
  options.admission_gate = [this](const Subject& subject, NodeId node) {
    return supervisor_->FastFail(subject, node);
  };
  MediationRing ring(&sys_->monitor(), options);

  ExtensionBudget budget;
  budget.probe_after_ns = 1'000'000'000;  // no probe during this test
  supervisor_->Register("ring-victim", obj_, budget);
  ASSERT_TRUE(supervisor_->Quarantine("ring-victim", "test").ok());

  auto client = ring.NewClient();
  auto rejected = ring.SubmitCheck(*client, alice_s_, obj_, AccessMode::kRead);
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(ring.gate_rejections(), 1u);
  EXPECT_EQ(ring.submitted(), 0u);  // no ring credit was consumed
  EXPECT_GE(supervisor_->Snapshot("ring-victim")->rejected, 1u);

  // Releasing restores the transport path end to end.
  ASSERT_TRUE(supervisor_->Release("ring-victim", "test").ok());
  auto ticket = ring.SubmitCheck(*client, alice_s_, obj_, AccessMode::kRead);
  ASSERT_TRUE(ticket.ok());
  auto completion = ring.Wait(*client, *ticket);
  ASSERT_TRUE(completion.ok());
  EXPECT_TRUE(completion->decision.allowed);
}

}  // namespace
}  // namespace xsec
