// Property tests pitting the reference monitor against an independent
// oracle: a from-scratch re-implementation of the intended decision
// semantics (ACL inheritance + deny-overrides + owner bootstrap + label
// inheritance + flow rules), written as directly as possible so a bug would
// have to exist twice to go unnoticed. Random worlds, random mutations,
// cached and uncached monitors must all agree with the oracle on every
// (subject, node, mode) triple.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/monitor/reference_monitor.h"

namespace xsec {
namespace {

class RandomWorld {
 public:
  explicit RandomWorld(uint64_t seed) : rng_(seed) {
    monitor_ = std::make_unique<ReferenceMonitor>(&ns_, &acls_, &principals_, &labels_,
                                                  MonitorOptions{
                                                      .audit_policy = AuditPolicy::kOff,
                                                  });
    uncached_ = std::make_unique<ReferenceMonitor>(
        &ns_, &acls_, &principals_, &labels_,
        MonitorOptions{.cache_enabled = false, .audit_policy = AuditPolicy::kOff});
    BuildPrincipals();
    BuildLabels();
    BuildTree();
  }

  void BuildPrincipals() {
    for (int i = 0; i < 6; ++i) {
      users_.push_back(*principals_.CreateUser("u" + std::to_string(i)));
    }
    for (int i = 0; i < 4; ++i) {
      groups_.push_back(*principals_.CreateGroup("g" + std::to_string(i)));
    }
    // Random membership edges (user->group and group->group; cycles rejected
    // by the registry are simply skipped).
    for (int i = 0; i < 12; ++i) {
      PrincipalId member = rng_.NextBool(2, 3) ? users_[rng_.NextBelow(users_.size())]
                                               : groups_[rng_.NextBelow(groups_.size())];
      (void)principals_.AddMember(groups_[rng_.NextBelow(groups_.size())], member);
    }
  }

  void BuildLabels() {
    (void)labels_.DefineLevels({"l0", "l1", "l2"});
    (void)labels_.DefineCategory("c0");
    (void)labels_.DefineCategory("c1");
    (void)labels_.DefineCategory("c2");
  }

  SecurityClass RandomClass() {
    CategorySet cats(3);
    for (size_t c = 0; c < 3; ++c) {
      if (rng_.NextBool(1, 2)) {
        cats.Set(c);
      }
    }
    return SecurityClass(static_cast<TrustLevel>(rng_.NextBelow(3)), std::move(cats));
  }

  Acl RandomAcl() {
    Acl acl;
    size_t entries = rng_.NextBelow(5);
    for (size_t i = 0; i < entries; ++i) {
      PrincipalId who = rng_.NextBool(1, 2) ? users_[rng_.NextBelow(users_.size())]
                                            : groups_[rng_.NextBelow(groups_.size())];
      AclEntryType type = rng_.NextBool(1, 4) ? AclEntryType::kDeny : AclEntryType::kAllow;
      AccessModeSet modes(static_cast<uint32_t>(rng_.NextBelow(256)));
      acl.AddEntry({type, who, modes});
    }
    return acl;
  }

  void BuildTree() {
    nodes_.push_back(ns_.root());
    for (int i = 0; i < 40; ++i) {
      NodeId parent = nodes_[rng_.NextBelow(nodes_.size())];
      const Node* p = ns_.Get(parent);
      if (!KindAllowsChildren(p->kind)) {
        continue;
      }
      NodeKind kind = static_cast<NodeKind>(rng_.NextBelow(6));
      PrincipalId owner = users_[rng_.NextBelow(users_.size())];
      auto node = ns_.Bind(parent, "n" + std::to_string(i), kind, owner);
      if (!node.ok()) {
        continue;
      }
      nodes_.push_back(*node);
      if (rng_.NextBool(1, 2)) {
        (void)ns_.SetAclRef(*node, acls_.Create(RandomAcl()));
      }
      if (rng_.NextBool(1, 3)) {
        (void)ns_.SetLabelRef(*node, labels_.StoreLabel(RandomClass()));
      }
    }
  }

  void RandomMutation() {
    switch (rng_.NextBelow(4)) {
      case 0: {  // ACL change
        NodeId node = nodes_[rng_.NextBelow(nodes_.size())];
        if (ns_.Get(node) != nullptr) {
          (void)ns_.SetAclRef(node, acls_.Create(RandomAcl()));
        }
        break;
      }
      case 1: {  // label change
        NodeId node = nodes_[rng_.NextBelow(nodes_.size())];
        if (ns_.Get(node) != nullptr) {
          (void)ns_.SetLabelRef(node, labels_.StoreLabel(RandomClass()));
        }
        break;
      }
      case 2: {  // membership change
        PrincipalId group = groups_[rng_.NextBelow(groups_.size())];
        PrincipalId user = users_[rng_.NextBelow(users_.size())];
        if (rng_.NextBool(1, 2)) {
          (void)principals_.AddMember(group, user);
        } else {
          (void)principals_.RemoveMember(group, user);
        }
        break;
      }
      case 3: {  // ownership change
        NodeId node = nodes_[rng_.NextBelow(nodes_.size())];
        if (ns_.Get(node) != nullptr) {
          (void)ns_.SetOwner(node, users_[rng_.NextBelow(users_.size())]);
        }
        break;
      }
    }
  }

  // ---- the oracle -----------------------------------------------------------

  // Independent closure computation (depth-first over member_of edges).
  void OracleCloseOver(PrincipalId id, std::vector<bool>* seen) const {
    if ((*seen)[id.value]) {
      return;
    }
    (*seen)[id.value] = true;
    for (uint32_t g = 0; g < principals_.principal_count(); ++g) {
      const Principal* p = principals_.Get(PrincipalId{g});
      if (p->kind != PrincipalKind::kGroup) {
        continue;
      }
      auto members = principals_.MembersOf(PrincipalId{g});
      for (PrincipalId member : *members) {
        if (member == id) {
          OracleCloseOver(PrincipalId{g}, seen);
        }
      }
    }
  }

  bool OracleFlowAllows(const SecurityClass& s, const SecurityClass& o,
                        AccessMode mode) const {
    bool read_ok = s.level() >= o.level() && o.categories().IsSubsetOf(s.categories());
    bool write_ok = o.level() >= s.level() && s.categories().IsSubsetOf(o.categories());
    switch (mode) {
      case AccessMode::kRead:
      case AccessMode::kList:
      case AccessMode::kExecute:
      case AccessMode::kExtend:
        return read_ok;
      case AccessMode::kWriteAppend:
        return write_ok;
      case AccessMode::kWrite:
      case AccessMode::kDelete:
        return write_ok && read_ok;  // strict default: S = O
      case AccessMode::kAdministrate:
        return read_ok && write_ok;
    }
    return false;
  }

  bool OracleAllows(const Subject& subject, NodeId node, AccessMode mode) const {
    const Node* n = ns_.Get(node);
    if (n == nullptr) {
      return false;
    }
    // DAC, unless the owner requests administrate.
    bool dac_needed = !(mode == AccessMode::kAdministrate && subject.principal == n->owner);
    if (dac_needed) {
      // Find the governing ACL by walking up.
      const Node* cursor = n;
      const Acl* acl = nullptr;
      while (true) {
        if (cursor->acl_ref != kNoRef) {
          acl = acls_.Get(cursor->acl_ref);
          break;
        }
        if (cursor->id == NodeId{0}) {
          break;
        }
        cursor = ns_.Get(cursor->parent);
      }
      if (acl == nullptr) {
        return false;
      }
      std::vector<bool> closure(principals_.principal_count(), false);
      OracleCloseOver(subject.principal, &closure);
      bool granted = false;
      for (const AclEntry& entry : acl->entries()) {
        if (!closure[entry.who.value] || !entry.modes.Contains(mode)) {
          continue;
        }
        if (entry.type == AclEntryType::kDeny) {
          return false;
        }
        granted = true;
      }
      if (!granted) {
        return false;
      }
    }
    // MAC: nearest label up the tree (root always labeled).
    const Node* cursor = n;
    const SecurityClass* label = nullptr;
    while (label == nullptr) {
      if (cursor->label_ref != kNoRef) {
        label = labels_.GetLabel(cursor->label_ref);
        break;
      }
      cursor = ns_.Get(cursor->parent);
    }
    return OracleFlowAllows(subject.security_class, *label, mode);
  }

  Rng rng_{0};
  NameSpace ns_;
  AclStore acls_;
  PrincipalRegistry principals_;
  LabelAuthority labels_;
  std::unique_ptr<ReferenceMonitor> monitor_;
  std::unique_ptr<ReferenceMonitor> uncached_;
  std::vector<PrincipalId> users_;
  std::vector<PrincipalId> groups_;
  std::vector<NodeId> nodes_;
};

class MonitorOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(MonitorOracleTest, MonitorAgreesWithOracle) {
  RandomWorld world(static_cast<uint64_t>(GetParam()));
  for (int round = 0; round < 3; ++round) {
    for (PrincipalId user : world.users_) {
      Subject subject{user, world.RandomClass(), 1};
      for (NodeId node : world.nodes_) {
        for (int m = 0; m < kAccessModeCount; ++m) {
          AccessMode mode = static_cast<AccessMode>(1u << m);
          bool expected = world.OracleAllows(subject, node, mode);
          // First call may fill the cache; second must hit it.
          Decision first = world.monitor_->Check(subject, node, mode);
          Decision second = world.monitor_->Check(subject, node, mode);
          Decision plain = world.uncached_->Check(subject, node, mode);
          ASSERT_EQ(first.allowed, expected)
              << "seed=" << GetParam() << " node=" << world.ns_.PathOf(node) << " mode="
              << AccessModeName(mode) << " subj=" << subject.security_class.ToString();
          ASSERT_EQ(second.allowed, expected) << "cached disagreement";
          ASSERT_EQ(plain.allowed, expected) << "uncached disagreement";
        }
      }
    }
    // Mutate and re-verify: the cache must never serve stale policy.
    for (int i = 0; i < 5; ++i) {
      world.RandomMutation();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorOracleTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace xsec
