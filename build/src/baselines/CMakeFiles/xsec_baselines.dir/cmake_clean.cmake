file(REMOVE_RECURSE
  "CMakeFiles/xsec_baselines.dir/afs_model.cc.o"
  "CMakeFiles/xsec_baselines.dir/afs_model.cc.o.d"
  "CMakeFiles/xsec_baselines.dir/java_sandbox_model.cc.o"
  "CMakeFiles/xsec_baselines.dir/java_sandbox_model.cc.o.d"
  "CMakeFiles/xsec_baselines.dir/nt_model.cc.o"
  "CMakeFiles/xsec_baselines.dir/nt_model.cc.o.d"
  "CMakeFiles/xsec_baselines.dir/spin_domain_model.cc.o"
  "CMakeFiles/xsec_baselines.dir/spin_domain_model.cc.o.d"
  "CMakeFiles/xsec_baselines.dir/unix_model.cc.o"
  "CMakeFiles/xsec_baselines.dir/unix_model.cc.o.d"
  "CMakeFiles/xsec_baselines.dir/vino_model.cc.o"
  "CMakeFiles/xsec_baselines.dir/vino_model.cc.o.d"
  "CMakeFiles/xsec_baselines.dir/xsec_model.cc.o"
  "CMakeFiles/xsec_baselines.dir/xsec_model.cc.o.d"
  "libxsec_baselines.a"
  "libxsec_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
