# Empty dependencies file for bench_f5_link.
# This may be replaced when dependencies are built.
