// The event dispatcher: the mechanism by which extensions *extend* services
// (paper §1.1, modeled on SPIN's event-dispatch model [Pardyak & Bershad]).
//
// An interface node can have many registered handlers, each installed by an
// extension at link time after an `extend` check, and each carrying the
// extension's (possibly statically assigned) security class. Dispatch
// implements the paper's selection rule: "when the extended service is
// invoked, the right extension is selected based on the security class of
// the caller" (§2.2).
//
// Selection semantics: a handler is *eligible* for a caller iff the caller's
// class dominates the handler's class (the caller is cleared to observe the
// handler's behavior — the simple security property applied to code). Among
// eligible handlers, kClassSelected picks a maximal one — the most trusted
// specialization the caller is cleared for; earliest registration breaks
// ties between incomparable maximal classes.

#ifndef XSEC_SRC_EXTSYS_DISPATCHER_H_
#define XSEC_SRC_EXTSYS_DISPATCHER_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/extsys/extension.h"
#include "src/mac/security_class.h"
#include "src/monitor/subject.h"
#include "src/naming/namespace.h"

namespace xsec {

enum class DispatchMode : uint8_t {
  // The paper's rule: best eligible handler by caller class.
  kClassSelected = 0,
  // First registered handler, no class filtering (plain dispatch baseline
  // for experiment F6).
  kFirstRegistered,
  // All eligible handlers, registration order (SPIN events are multicast).
  kBroadcast,
};

class EventDispatcher {
 public:
  struct HandlerRecord {
    ExtensionId extension;
    SecurityClass handler_class;
    HandlerFn handler;
    uint64_t registration_order = 0;
  };

  // Registers a handler on an interface node (the linker performs the
  // `extend` access check before calling this).
  void Register(NodeId interface_node, ExtensionId extension, const SecurityClass& handler_class,
                HandlerFn handler);

  // Removes every handler installed by `extension`. Returns how many.
  size_t UnregisterExtension(ExtensionId extension);

  // An availability filter over handler records: false removes the record
  // from selection (the kernel passes a supervisor-backed predicate that
  // filters quarantined extensions, so class selection falls through to the
  // next-best healthy handler).
  using EligibleFn = std::function<bool(const HandlerRecord&)>;

  // Picks the handler(s) for a caller without invoking them. Empty result
  // with OK status cannot happen: no eligible handler is an error. When
  // `eligible` removes every class-eligible handler the error is
  // kUnavailable (the handlers exist and the caller is cleared — they are
  // just refusing work), distinct from the kPermissionDenied of an
  // uncleared caller.
  StatusOr<std::vector<const HandlerRecord*>> Select(NodeId interface_node,
                                                     const SecurityClass& caller_class,
                                                     DispatchMode mode,
                                                     const EligibleFn& eligible = nullptr) const;

  size_t HandlerCount(NodeId interface_node) const;
  size_t total_handlers() const { return total_handlers_; }

 private:
  std::unordered_map<uint32_t, std::vector<HandlerRecord>> handlers_;
  uint64_t next_order_ = 0;
  size_t total_handlers_ = 0;
};

}  // namespace xsec

#endif  // XSEC_SRC_EXTSYS_DISPATCHER_H_
