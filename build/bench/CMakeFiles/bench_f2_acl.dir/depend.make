# Empty dependencies file for bench_f2_acl.
# This may be replaced when dependencies are built.
