file(REMOVE_RECURSE
  "CMakeFiles/xsec_services.dir/log.cc.o"
  "CMakeFiles/xsec_services.dir/log.cc.o.d"
  "CMakeFiles/xsec_services.dir/mbuf.cc.o"
  "CMakeFiles/xsec_services.dir/mbuf.cc.o.d"
  "CMakeFiles/xsec_services.dir/memfs.cc.o"
  "CMakeFiles/xsec_services.dir/memfs.cc.o.d"
  "CMakeFiles/xsec_services.dir/netstack.cc.o"
  "CMakeFiles/xsec_services.dir/netstack.cc.o.d"
  "CMakeFiles/xsec_services.dir/threads.cc.o"
  "CMakeFiles/xsec_services.dir/threads.cc.o.d"
  "CMakeFiles/xsec_services.dir/vfs.cc.o"
  "CMakeFiles/xsec_services.dir/vfs.cc.o.d"
  "libxsec_services.a"
  "libxsec_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsec_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
