# Empty dependencies file for applet_orgs.
# This may be replaced when dependencies are built.
