#include "src/principal/intern_pool.h"

#include <cstring>

namespace xsec {

std::string_view NameArena::Store(std::string_view s) {
  if (s.empty()) {
    return std::string_view();
  }
  if (s.size() > cur_cap_ - cur_used_) {
    // Open a fresh chunk; an oversized name gets one sized to fit.
    size_t cap = s.size() > kChunkSize ? s.size() : kChunkSize;
    chunks_.push_back(std::make_unique<char[]>(cap));
    cur_ = chunks_.back().get();
    cur_used_ = 0;
    cur_cap_ = cap;
  }
  char* dst = cur_ + cur_used_;
  std::memcpy(dst, s.data(), s.size());
  cur_used_ += s.size();
  bytes_used_ += s.size();
  return std::string_view(dst, s.size());
}

uint32_t PrincipalInternPool::Intern(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) {
    return it->second;
  }
  std::string_view stored = arena_.Store(name);
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.push_back(stored);
  ids_.emplace(stored, id);
  return id;
}

std::string_view PrincipalInternPool::NameOf(uint32_t local_id) const {
  return local_id < names_.size() ? names_[local_id] : std::string_view();
}

uint32_t PrincipalInternPool::Find(std::string_view name) const {
  auto it = ids_.find(name);
  return it != ids_.end() ? it->second : UINT32_MAX;
}

}  // namespace xsec
