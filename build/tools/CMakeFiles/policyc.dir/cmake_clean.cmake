file(REMOVE_RECURSE
  "CMakeFiles/policyc.dir/policyc.cc.o"
  "CMakeFiles/policyc.dir/policyc.cc.o.d"
  "policyc"
  "policyc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policyc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
