#include "src/monitor/monitor_stats.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/monitor/reference_monitor.h"

namespace xsec {
namespace {

TEST(MonitorStatsTest, RecordDecisionCountsTotalReasonAndEveryMode) {
  MonitorStats stats;
  stats.RecordDecision(AccessMode::kRead | AccessMode::kWrite, DenyReason::kNone);
  stats.RecordDecision(AccessModeSet(AccessMode::kRead), DenyReason::kDacNoGrant);
  stats.RecordDecision(AccessModeSet(AccessMode::kExecute), DenyReason::kMacFlow);

  EXPECT_EQ(stats.checks_total(), 3u);
  EXPECT_EQ(stats.allowed_total(), 1u);
  EXPECT_EQ(stats.denied_total(), 2u);
  EXPECT_EQ(stats.by_reason(DenyReason::kDacNoGrant), 1u);
  EXPECT_EQ(stats.by_reason(DenyReason::kMacFlow), 1u);
  EXPECT_EQ(stats.by_reason(DenyReason::kTraversal), 0u);
  // A multi-mode request counts once per mode present.
  EXPECT_EQ(stats.by_mode(AccessMode::kRead), 2u);
  EXPECT_EQ(stats.by_mode(AccessMode::kWrite), 1u);
  EXPECT_EQ(stats.by_mode(AccessMode::kExecute), 1u);
  EXPECT_EQ(stats.by_mode(AccessMode::kDelete), 0u);
}

TEST(MonitorStatsTest, LatencySamplingIsOneInSampleEvery) {
  MonitorStats stats;
  uint64_t sampled = 0;
  for (uint64_t i = 0; i < 3 * MonitorStats::kSampleEvery; ++i) {
    if (stats.ShouldSampleLatency()) {
      ++sampled;
    }
  }
  // The thread's clock phase is arbitrary, but any 3*kSampleEvery
  // consecutive ticks contain exactly 3 multiples of kSampleEvery.
  EXPECT_EQ(sampled, 3u);
}

TEST(MonitorStatsTest, LatencyHistogramAndQuantiles) {
  MonitorStats stats;
  // 10 fast samples (bucket for 100ns) and one slow outlier.
  for (int i = 0; i < 10; ++i) {
    stats.RecordLatencyNs(100);
  }
  stats.RecordLatencyNs(1'000'000);
  EXPECT_EQ(stats.latency_samples(), 11u);
  uint64_t p50 = stats.LatencyQuantileNs(0.50);
  uint64_t p100 = stats.LatencyQuantileNs(1.0);
  EXPECT_GE(p50, 100u);
  EXPECT_LT(p50, 256u);  // the bucket upper bound containing 100ns
  EXPECT_GE(p100, 1'000'000u);  // the max lands in the outlier's bucket
  EXPECT_LE(p50, p100);
  // An empty histogram reports 0.
  MonitorStats empty;
  EXPECT_EQ(empty.LatencyQuantileNs(0.5), 0u);
}

TEST(MonitorStatsTest, ResetZeroesEverything) {
  MonitorStats stats;
  stats.RecordDecision(AccessModeSet(AccessMode::kRead), DenyReason::kNone);
  stats.RecordLatencyNs(50);
  stats.Reset();
  EXPECT_EQ(stats.checks_total(), 0u);
  EXPECT_EQ(stats.by_mode(AccessMode::kRead), 0u);
  EXPECT_EQ(stats.latency_samples(), 0u);
  EXPECT_EQ(stats.LatencyQuantileNs(0.9), 0u);
}

class MonitorStatsIntegrationTest : public ::testing::Test {
 protected:
  MonitorStatsIntegrationTest() {
    monitor_ = std::make_unique<ReferenceMonitor>(&ns_, &acls_, &principals_, &labels_,
                                                  MonitorOptions{});
    user_ = *principals_.CreateUser("u");
    open_ = *ns_.BindPath("/open", NodeKind::kFile, user_);
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, user_, AccessModeSet(AccessMode::kRead)});
    (void)ns_.SetAclRef(open_, acls_.Create(std::move(acl)));
    locked_ = *ns_.BindPath("/locked", NodeKind::kFile, user_);
    (void)ns_.SetAclRef(locked_, acls_.Create(Acl()));
  }

  NameSpace ns_;
  AclStore acls_;
  PrincipalRegistry principals_;
  LabelAuthority labels_;
  std::unique_ptr<ReferenceMonitor> monitor_;
  PrincipalId user_;
  NodeId open_, locked_;
};

TEST_F(MonitorStatsIntegrationTest, StatsMirrorAuditCountersOnEveryDecisionPath) {
  Subject subject{user_, labels_.Bottom(), 1};
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(monitor_->Check(subject, open_, AccessMode::kRead).allowed);
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(monitor_->Check(subject, locked_, AccessMode::kRead).allowed);
  }
  (void)monitor_->Check(subject, NodeId{9999}, AccessMode::kRead);  // not found

  const MonitorStats& stats = monitor_->stats();
  EXPECT_EQ(stats.checks_total(), monitor_->audit().total_checks());
  EXPECT_EQ(stats.denied_total(), monitor_->audit().total_denials());
  EXPECT_EQ(stats.allowed_total(), 5u);
  EXPECT_EQ(stats.by_reason(DenyReason::kDacNoGrant), 3u);
  EXPECT_EQ(stats.by_reason(DenyReason::kNotFound), 1u);
  EXPECT_EQ(stats.by_mode(AccessMode::kRead), 9u);
}

TEST_F(MonitorStatsIntegrationTest, CachedAndUncachedDecisionsBothLand) {
  // The first check misses the decision cache, the rest hit; stats must not
  // care which path produced the decision.
  Subject subject{user_, labels_.Bottom(), 1};
  for (int i = 0; i < 10; ++i) {
    (void)monitor_->Check(subject, open_, AccessMode::kRead);
  }
  EXPECT_EQ(monitor_->stats().checks_total(), 10u);
  EXPECT_EQ(monitor_->stats().allowed_total(), 10u);
}

TEST_F(MonitorStatsIntegrationTest, SamplingPopulatesHistogramOnTheCheckPath) {
  Subject subject{user_, labels_.Bottom(), 1};
  // Whatever the thread's clock phase, 2*kSampleEvery consecutive checks
  // tick past exactly two multiples of kSampleEvery.
  size_t n = 2 * MonitorStats::kSampleEvery;
  for (size_t i = 0; i < n; ++i) {
    (void)monitor_->Check(subject, open_, AccessMode::kRead);
  }
  EXPECT_GE(monitor_->stats().latency_samples(), 2u);
  EXPECT_LE(monitor_->stats().latency_samples(), 3u);
}

TEST_F(MonitorStatsIntegrationTest, DisabledStatsRecordNothing) {
  MonitorOptions options;
  options.stats_enabled = false;
  ReferenceMonitor quiet(&ns_, &acls_, &principals_, &labels_, options);
  Subject subject{user_, labels_.Bottom(), 1};
  (void)quiet.Check(subject, open_, AccessMode::kRead);
  (void)quiet.Check(subject, locked_, AccessMode::kRead);
  EXPECT_EQ(quiet.stats().checks_total(), 0u);
  EXPECT_EQ(quiet.stats().latency_samples(), 0u);
  // The audit counters still run — stats are an overlay, not a replacement.
  EXPECT_EQ(quiet.audit().total_checks(), 2u);
}

TEST_F(MonitorStatsIntegrationTest, ConcurrentCheckingKeepsTotalsCoherent) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Subject subject{user_, labels_.Bottom(), static_cast<uint64_t>(t + 1)};
      for (int i = 0; i < kPerThread; ++i) {
        (void)monitor_->Check(subject, (i & 1) != 0 ? open_ : locked_, AccessMode::kRead);
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  const MonitorStats& stats = monitor_->stats();
  EXPECT_EQ(stats.checks_total(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.allowed_total() + stats.denied_total(), stats.checks_total());
  EXPECT_EQ(stats.checks_total(), monitor_->audit().total_checks());
}

}  // namespace
}  // namespace xsec
