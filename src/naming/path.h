// Path handling for the universal name space.
//
// Paths are absolute, '/'-separated, and canonical: no empty components, no
// "." / "..", no trailing slash (except the root itself). Keeping paths
// canonical at the boundary means the name server never has to re-normalize
// on the hot lookup path (experiment F4).

#ifndef XSEC_SRC_NAMING_PATH_H_
#define XSEC_SRC_NAMING_PATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace xsec {

// Splits an absolute path into components; validates canonicality.
// "/" yields an empty vector. "/svc/fs/read" yields {"svc","fs","read"}.
StatusOr<std::vector<std::string>> ParsePath(std::string_view path);

// True iff `name` is a legal single component: nonempty, no '/', not "." or "..".
bool IsValidComponent(std::string_view name);

// Joins a parent path and a child component ("/svc" + "fs" -> "/svc/fs").
std::string JoinPath(std::string_view parent, std::string_view child);

// The parent of a canonical absolute path ("/svc/fs" -> "/svc"; "/a" -> "/").
// The root's parent is the root.
std::string ParentPath(std::string_view path);

// The last component ("/svc/fs" -> "fs"); empty for the root.
std::string_view Basename(std::string_view path);

}  // namespace xsec

#endif  // XSEC_SRC_NAMING_PATH_H_
