file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_scenarios.dir/bench_t1_scenarios.cc.o"
  "CMakeFiles/bench_t1_scenarios.dir/bench_t1_scenarios.cc.o.d"
  "bench_t1_scenarios"
  "bench_t1_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
