// Experiment F1 — per-call mediation overhead (DESIGN.md §5).
//
// The paper's central facility mediates *every* interaction (§2.3); this
// figure measures what that costs per call, layer by layer:
//
//   raw_handler        calling the handler with no mediation (floor)
//   check_node_*       node-level monitor checks under different layer mixes
//   capability_call    Kernel::CallCapability (node re-check + dispatch)
//   invoke_path        Kernel::Invoke (full path resolution + traversal)
//
// Expected shape: DAC and MAC each add a small constant; the decision cache
// recovers most of the combined cost; path traversal dominates Invoke, which
// is why linked extensions call through capabilities.

#include <benchmark/benchmark.h>

#include "src/core/secure_system.h"

namespace xsec {
namespace {

struct Fixture {
  explicit Fixture(MonitorOptions options) : sys(options) {
    user = *sys.CreateUser("bench-user");
    subject = sys.Login(user, sys.labels().Bottom());
    // A procedure with a direct execute grant.
    proc = *sys.kernel().RegisterProcedure(
        "/svc/bench/noop", sys.system_principal(),
        [](CallContext&) -> StatusOr<Value> { return Value{int64_t{1}}; });
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, user,
                  AccessMode::kExecute | AccessMode::kList | AccessMode::kRead});
    (void)sys.name_space().SetAclRef(proc, sys.kernel().acls().Create(std::move(acl)));
    // Traversal grants for full-path invocation.
    NodeId svc = *sys.name_space().Lookup("/svc/bench");
    Acl dir_acl;
    dir_acl.AddEntry({AclEntryType::kAllow, user, AccessMode::kList | AccessMode::kExecute});
    (void)sys.name_space().SetAclRef(svc, sys.kernel().acls().Create(std::move(dir_acl)));
    capability = Capability{proc, "/svc/bench/noop"};
  }

  SecureSystem sys;
  PrincipalId user;
  Subject subject;
  NodeId proc;
  Capability capability;
};

MonitorOptions Opts(bool dac, bool mac, bool cache) {
  MonitorOptions options;
  options.dac_enabled = dac;
  options.mac_enabled = mac;
  options.cache_enabled = cache;
  options.audit_policy = AuditPolicy::kOff;
  // F1 measures the *interpreted* layers (and the cache over them); the
  // compiled fast path would absorb the DAC/MAC deltas this figure exists
  // to show. Compiled-vs-interpreted is experiment F14.
  options.compiled_enabled = false;
  return options;
}

void BM_RawHandler(benchmark::State& state) {
  HandlerFn handler = [](CallContext&) -> StatusOr<Value> { return Value{int64_t{1}}; };
  Fixture f(Opts(true, true, true));
  CallContext ctx{&f.sys.kernel(), &f.subject, {}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(handler(ctx));
  }
}
BENCHMARK(BM_RawHandler);

void CheckNode(benchmark::State& state, MonitorOptions options) {
  Fixture f(options);
  for (auto _ : state) {
    Decision d = f.sys.monitor().Check(f.subject, f.proc, AccessMode::kExecute);
    benchmark::DoNotOptimize(d);
  }
}

void BM_CheckNode_None(benchmark::State& state) { CheckNode(state, Opts(false, false, false)); }
void BM_CheckNode_DacOnly(benchmark::State& state) { CheckNode(state, Opts(true, false, false)); }
void BM_CheckNode_MacOnly(benchmark::State& state) { CheckNode(state, Opts(false, true, false)); }
void BM_CheckNode_DacMac(benchmark::State& state) { CheckNode(state, Opts(true, true, false)); }
void BM_CheckNode_DacMacCached(benchmark::State& state) { CheckNode(state, Opts(true, true, true)); }
// The same cached hot path with MonitorStats off: the delta between this
// and BM_CheckNode_DacMacCached is the stats overhead (budget: <5%).
void BM_CheckNode_DacMacCached_NoStats(benchmark::State& state) {
  MonitorOptions options = Opts(true, true, true);
  options.stats_enabled = false;
  CheckNode(state, options);
}
BENCHMARK(BM_CheckNode_None);
BENCHMARK(BM_CheckNode_DacOnly);
BENCHMARK(BM_CheckNode_MacOnly);
BENCHMARK(BM_CheckNode_DacMac);
BENCHMARK(BM_CheckNode_DacMacCached);
BENCHMARK(BM_CheckNode_DacMacCached_NoStats);

// Cost of rendering one consistent snapshot of every counter (the
// /sys/monitor/snapshot read path): a reader-side operation, so it only
// needs to be cheap relative to the publication epoch, not the check path.
void BM_MonitorStatsSnapshot(benchmark::State& state) {
  Fixture f(Opts(true, true, true));
  for (int i = 0; i < 1024; ++i) {
    Decision d = f.sys.monitor().Check(f.subject, f.proc, AccessMode::kExecute);
    benchmark::DoNotOptimize(d);
  }
  MonitorStats& stats = f.sys.monitor().stats();
  for (auto _ : state) {
    MonitorStats::Snapshot snap = stats.TakeSnapshot();
    benchmark::DoNotOptimize(snap);
  }
}
BENCHMARK(BM_MonitorStatsSnapshot);

void BM_CapabilityCall(benchmark::State& state) {
  Fixture f(Opts(true, true, true));
  for (auto _ : state) {
    auto result = f.sys.kernel().CallCapability(f.subject, f.capability, {});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_CapabilityCall);

void BM_InvokePath(benchmark::State& state) {
  Fixture f(Opts(true, true, true));
  for (auto _ : state) {
    auto result = f.sys.kernel().Invoke(f.subject, "/svc/bench/noop", {});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_InvokePath);

void BM_InvokePathUncached(benchmark::State& state) {
  Fixture f(Opts(true, true, false));
  for (auto _ : state) {
    auto result = f.sys.kernel().Invoke(f.subject, "/svc/bench/noop", {});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_InvokePathUncached);

}  // namespace
}  // namespace xsec

BENCHMARK_MAIN();
