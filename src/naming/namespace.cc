#include "src/naming/namespace.h"

#include <mutex>

#include "src/base/strings.h"

namespace xsec {

std::string_view NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDirectory:
      return "directory";
    case NodeKind::kService:
      return "service";
    case NodeKind::kInterface:
      return "interface";
    case NodeKind::kObject:
      return "object";
    case NodeKind::kProcedure:
      return "procedure";
    case NodeKind::kFile:
      return "file";
  }
  return "unknown";
}

bool KindAllowsChildren(NodeKind kind) {
  return kind != NodeKind::kProcedure && kind != NodeKind::kFile;
}

NameSpace::NameSpace() {
  Node root;
  root.id = NodeId{0};
  root.parent = NodeId{0};
  root.kind = NodeKind::kDirectory;
  root.name = "";
  // Every node can inherit the root's ACL/label, so root metadata mutations
  // must invalidate every shard.
  root.shard = kAllShards;
  nodes_.push_back(std::move(root));
  PublishShardLocked(0, kAllShards);
}

Node* NameSpace::GetMutableLocked(NodeId id) {
  if (id.value >= nodes_.size() || !nodes_[id.value].alive) {
    return nullptr;
  }
  return &nodes_[id.value];
}

const Node* NameSpace::GetLocked(NodeId id) const {
  if (id.value >= nodes_.size() || !nodes_[id.value].alive) {
    return nullptr;
  }
  return &nodes_[id.value];
}

const Node* NameSpace::Get(NodeId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return GetLocked(id);
}

void NameSpace::BumpShard(ShardId shard) {
  if (IsConcreteShard(shard)) {
    shard_generation_[shard].fetch_add(1, std::memory_order_release);
    return;
  }
  // kAllShards (root) / kAggregateShard: the effect is not confined to one
  // subtree, so every shard's cached decisions must go stale.
  for (auto& g : shard_generation_) {
    g.fetch_add(1, std::memory_order_release);
  }
}

void NameSpace::Touch(Node& node) {
  ++node.generation;
  BumpShard(node.shard);
  // Release: the mutation this stamp publishes happened-before any reader
  // that observes the new generation value. The aggregate stamp is bumped by
  // *every* mutation — it is the validity domain for unknown node ids and
  // for monitors running with sharding disabled.
  global_generation_.fetch_add(1, std::memory_order_release);
}

void NameSpace::PublishShardLocked(uint32_t index, ShardId shard) {
  size_t chunk = index >> kShardChunkBits;
  if (chunk >= kShardMaxChunks) {
    return;  // beyond capacity: ShardOf reports kAggregateShard, still sound
  }
  ShardChunk* c = shard_chunks_[chunk].load(std::memory_order_relaxed);
  if (c == nullptr) {
    auto owned = std::make_unique<ShardChunk>();
    c = owned.get();
    shard_chunk_owner_.push_back(std::move(owned));
    shard_chunks_[chunk].store(c, std::memory_order_release);
  }
  c->shard[index & (kShardChunkSize - 1)].store(shard, std::memory_order_relaxed);
  // The element store above happens-before any reader that observes the new
  // published count.
  shard_ids_published_.store(index + 1, std::memory_order_release);
}

ShardId NameSpace::ShardOf(NodeId id) const {
  if (!id.valid() || id.value >= shard_ids_published_.load(std::memory_order_acquire)) {
    return kAggregateShard;
  }
  size_t chunk = id.value >> kShardChunkBits;
  if (chunk >= kShardMaxChunks) {
    return kAggregateShard;
  }
  const ShardChunk* c = shard_chunks_[chunk].load(std::memory_order_acquire);
  if (c == nullptr) {
    return kAggregateShard;
  }
  return c->shard[id.value & (kShardChunkSize - 1)].load(std::memory_order_relaxed);
}

StatusOr<NodeId> NameSpace::BindLocked(NodeId parent, std::string_view name, NodeKind kind,
                                       PrincipalId owner) {
  Node* p = GetMutableLocked(parent);
  if (p == nullptr) {
    return NotFoundError("parent node does not exist");
  }
  if (!KindAllowsChildren(p->kind)) {
    return FailedPreconditionError(
        StrFormat("node '%s' is a %s and cannot have children", PathOfLocked(parent).c_str(),
                  std::string(NodeKindName(p->kind)).c_str()));
  }
  if (!IsValidComponent(name)) {
    return InvalidArgumentError(StrFormat("invalid name '%s'", std::string(name).c_str()));
  }
  if (p->children.find(name) != p->children.end()) {
    return AlreadyExistsError(
        StrFormat("'%s' already exists under '%s'", std::string(name).c_str(),
                  PathOfLocked(parent).c_str()));
  }
  NodeId id{static_cast<uint32_t>(nodes_.size())};
  Node child;
  child.id = id;
  child.parent = parent;
  child.kind = kind;
  child.name = std::string(name);
  child.owner = owner;
  // Shard assignment (immutable from here on): top-level containers start a
  // subtree of their own, keyed by name; top-level leaves have no subtree,
  // so they follow their owner (the flat-namespace fallback); deeper nodes
  // inherit the subtree's shard.
  if (parent == root()) {
    child.shard = KindAllowsChildren(kind) ? ShardOfName(name) : ShardOfPrincipal(owner.value);
  } else {
    child.shard = p->shard;
  }
  ShardId child_shard = child.shard;
  nodes_.push_back(std::move(child));
  PublishShardLocked(id.value, child_shard);
  p->children.emplace(std::string(name), id);
  // The structural change is confined to the child's validity domain: no
  // cached decision about the *parent* depends on its children map, but a
  // cached NotFound (aggregate domain) or a compiled table covering the
  // child's shard must go stale. The parent keeps its node-local generation
  // bump for observers of Node::generation.
  ++p->generation;
  BumpShard(child_shard);
  global_generation_.fetch_add(1, std::memory_order_release);
  return id;
}

StatusOr<NodeId> NameSpace::Bind(NodeId parent, std::string_view name, NodeKind kind,
                                 PrincipalId owner) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return BindLocked(parent, name, kind, owner);
}

StatusOr<NodeId> NameSpace::BindPath(std::string_view path, NodeKind kind, PrincipalId owner) {
  auto components = ParsePath(path);
  if (!components.ok()) {
    return components.status();
  }
  if (components->empty()) {
    return InvalidArgumentError("cannot bind the root");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  NodeId cur = root();
  for (size_t i = 0; i + 1 < components->size(); ++i) {
    auto child = ChildLocked(cur, (*components)[i]);
    if (child.ok()) {
      cur = *child;
      continue;
    }
    // Auto-created intermediates take the *enclosing* directory's owner, not
    // the caller's. Giving them the final node's owner would silently grant
    // the caller the owner-administrate fallback on every path prefix it
    // named — a privilege the caller never held on those directories.
    auto made = BindLocked(cur, (*components)[i], NodeKind::kDirectory, nodes_[cur.value].owner);
    if (!made.ok()) {
      return made.status();
    }
    cur = *made;
  }
  return BindLocked(cur, components->back(), kind, owner);
}

Status NameSpace::Unbind(NodeId node) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Node* n = GetMutableLocked(node);
  if (n == nullptr) {
    return NotFoundError("node does not exist");
  }
  if (node == root()) {
    return FailedPreconditionError("cannot unbind the root");
  }
  if (!n->children.empty()) {
    return FailedPreconditionError(
        StrFormat("'%s' still has %zu children", PathOfLocked(node).c_str(), n->children.size()));
  }
  Node& parent = nodes_[n->parent.value];
  parent.children.erase(n->name);
  n->alive = false;
  // As in BindLocked: the structural edit only affects decisions in the
  // removed node's validity domain (and the aggregate domain, via Touch's
  // global bump). Bumping the parent's shard here would re-create the
  // invalidation storm for top-level unbinds, whose parent is the root.
  ++parent.generation;
  Touch(*n);
  return OkStatus();
}

StatusOr<NodeId> NameSpace::ChildLocked(NodeId parent, std::string_view name) const {
  const Node* p = GetLocked(parent);
  if (p == nullptr) {
    return NotFoundError("parent node does not exist");
  }
  auto it = p->children.find(name);
  if (it == p->children.end()) {
    return NotFoundError(StrFormat("'%s' has no child '%s'", PathOfLocked(parent).c_str(),
                                   std::string(name).c_str()));
  }
  return it->second;
}

StatusOr<NodeId> NameSpace::Child(NodeId parent, std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return ChildLocked(parent, name);
}

StatusOr<NodeId> NameSpace::Lookup(std::string_view path) const {
  return LookupWithAncestors(path, nullptr);
}

StatusOr<NodeId> NameSpace::LookupWithAncestors(std::string_view path,
                                                AncestorBuffer* ancestors) const {
  auto components = ParsePath(path);
  if (!components.ok()) {
    return components.status();
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  NodeId cur = root();
  for (const std::string& component : *components) {
    if (ancestors != nullptr) {
      ancestors->push_back(cur);
    }
    auto next = ChildLocked(cur, component);
    if (!next.ok()) {
      return next.status();
    }
    cur = *next;
  }
  return cur;
}

StatusOr<std::vector<NodeId>> NameSpace::List(NodeId node) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const Node* n = GetLocked(node);
  if (n == nullptr) {
    return NotFoundError("node does not exist");
  }
  std::vector<NodeId> out;
  out.reserve(n->children.size());
  for (const auto& [name, id] : n->children) {
    out.push_back(id);
  }
  return out;
}

bool NameSpace::SnapshotSecurity(NodeId id, SecuritySnapshot* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const Node* n = GetLocked(id);
  if (n == nullptr) {
    return false;
  }
  out->owner = n->owner;
  out->own_acl_ref = n->acl_ref;
  out->own_label_ref = n->label_ref;
  out->shard = n->shard;
  out->effective_acl_ref = kNoRef;
  out->effective_label_ref = kNoRef;
  // Ancestors of a live node are always alive (only leaves can be unbound),
  // so the walk needs no liveness checks.
  const Node* cur = n;
  while (true) {
    if (out->effective_acl_ref == kNoRef && cur->acl_ref != kNoRef) {
      out->effective_acl_ref = cur->acl_ref;
    }
    if (out->effective_label_ref == kNoRef && cur->label_ref != kNoRef) {
      out->effective_label_ref = cur->label_ref;
    }
    if ((out->effective_acl_ref != kNoRef && out->effective_label_ref != kNoRef) ||
        cur->id == root()) {
      break;
    }
    cur = &nodes_[cur->parent.value];
  }
  return true;
}

std::string NameSpace::PathOfLocked(NodeId id) const {
  const Node* n = GetLocked(id);
  if (n == nullptr) {
    return "<dead>";
  }
  if (id == root()) {
    return "/";
  }
  std::vector<const Node*> chain;
  while (n->id != root()) {
    chain.push_back(n);
    n = &nodes_[n->parent.value];
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    out += '/';
    out += (*it)->name;
  }
  return out;
}

std::string NameSpace::PathOf(NodeId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return PathOfLocked(id);
}

size_t NameSpace::node_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return nodes_.size();
}

Status NameSpace::SetAclRef(NodeId id, uint32_t acl_ref) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Node* n = GetMutableLocked(id);
  if (n == nullptr) {
    return NotFoundError("node does not exist");
  }
  n->acl_ref = acl_ref;
  Touch(*n);
  return OkStatus();
}

Status NameSpace::SetLabelRef(NodeId id, uint32_t label_ref) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Node* n = GetMutableLocked(id);
  if (n == nullptr) {
    return NotFoundError("node does not exist");
  }
  n->label_ref = label_ref;
  Touch(*n);
  return OkStatus();
}

Status NameSpace::SetOwner(NodeId id, PrincipalId owner) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Node* n = GetMutableLocked(id);
  if (n == nullptr) {
    return NotFoundError("node does not exist");
  }
  n->owner = owner;
  Touch(*n);
  return OkStatus();
}

}  // namespace xsec
