#!/usr/bin/env python3
"""Regression gate for the F1 mediation figures.

Compares a fresh BENCH_f1.json against the committed baseline
(ci/bench_f1_baseline.json) on the *stats overhead ratio*:

    ratio = median cpu_time(BM_CheckNode_DacMacCached)
          / median cpu_time(BM_CheckNode_DacMacCached_NoStats)

The ratio is the cached-check cost with MonitorStats on, relative to the
same path with stats compiled out of the decision — i.e. exactly the
hot-path budget the stats layer is held to. Using the ratio (not absolute
nanoseconds) keeps the gate portable across machines: both measurements
come from the same run, so CPU speed and virtualization noise cancel.

Fails (exit 1) when the fresh ratio exceeds the baseline ratio by more
than --tolerance (default 10%).

Usage: check_bench_f1.py <fresh.json> <baseline.json> [--tolerance 0.10]
"""

import argparse
import json
import statistics
import sys

CACHED = "BM_CheckNode_DacMacCached"
NOSTATS = "BM_CheckNode_DacMacCached_NoStats"


def cpu_time(path, name):
    """Median cpu_time across all iteration runs of `name` (so files produced
    with --benchmark_repetitions contribute every repetition, not just the
    first; a single-run file degenerates to that run)."""
    with open(path) as f:
        data = json.load(f)
    times = [
        float(bench["cpu_time"])
        for bench in data.get("benchmarks", [])
        if bench.get("name") == name and bench.get("run_type", "iteration") == "iteration"
    ]
    if not times:
        raise KeyError(f"{path}: no benchmark named {name}")
    return statistics.median(times)


def ratio(path):
    on = cpu_time(path, CACHED)
    off = cpu_time(path, NOSTATS)
    if off <= 0:
        raise ValueError(f"{path}: non-positive cpu_time for {NOSTATS}")
    return on / off


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative ratio regression (default 0.10)")
    args = parser.parse_args()

    try:
        fresh = ratio(args.fresh)
        base = ratio(args.baseline)
    except (OSError, KeyError, ValueError, json.JSONDecodeError) as err:
        print(f"check_bench_f1: {err}", file=sys.stderr)
        return 1

    overhead = (fresh - 1.0) * 100.0
    print(f"stats-on/stats-off cached-check ratio: fresh {fresh:.4f} "
          f"(overhead {overhead:+.1f}%), baseline {base:.4f}")

    limit = base * (1.0 + args.tolerance)
    if fresh > limit:
        print(f"check_bench_f1: FAIL — fresh ratio {fresh:.4f} exceeds "
              f"baseline {base:.4f} by more than {args.tolerance:.0%} "
              f"(limit {limit:.4f})", file=sys.stderr)
        return 1
    print("check_bench_f1: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
