// The shared-ring batched mediation transport (MODEL.md §14): submission/
// completion semantics, deadline and cancellation on the completion wait,
// credit-based back-pressure at both gates, and the TSan-targeted stress
// scenarios (N producers against a stalled consumer, deadline/cancel races).

#include "src/monitor/mediation_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/base/credit_ring.h"
#include "src/base/failpoint.h"
#include "src/base/strings.h"

namespace xsec {
namespace {

class MediationRingTest : public ::testing::Test {
 protected:
  MediationRingTest() {
    alice_ = *principals_.CreateUser("alice");
    bob_ = *principals_.CreateUser("bob");
    (void)labels_.DefineLevels({"low", "high"});
    dir_ = *ns_.BindPath("/d", NodeKind::kDirectory, alice_);
    obj_ = *ns_.BindPath("/d/obj", NodeKind::kFile, alice_);
    proc_ = *ns_.BindPath("/d/proc", NodeKind::kProcedure, alice_);
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, alice_,
                  AccessMode::kRead | AccessMode::kWrite | AccessMode::kExecute});
    (void)ns_.SetAclRef(dir_, acls_.Create(std::move(acl)));
    monitor_ = std::make_unique<ReferenceMonitor>(&ns_, &acls_, &principals_, &labels_);
  }

  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  Subject AliceAtBottom() { return Subject{alice_, SecurityClass(), 1}; }
  Subject BobAtBottom() { return Subject{bob_, SecurityClass(), 2}; }

  static uint64_t DeadlineIn(uint64_t ns) { return MonotonicNowNs() + ns; }

  // Arms the per-shard worker stall site with a sleep, wedging that shard's
  // worker for `ms` per batch.
  static void StallShard(size_t shard, int ms, int times = -1) {
    std::string spec = StrFormat("sleep=%d", ms);
    if (times > 0) {
      spec += StrFormat(",times=%d", times);
    }
    ASSERT_TRUE(FailpointRegistry::Instance()
                    .Arm(StrFormat("ring.worker.%zu.batch", shard), spec)
                    .ok());
  }

  NameSpace ns_;
  AclStore acls_;
  PrincipalRegistry principals_;
  LabelAuthority labels_;
  std::unique_ptr<ReferenceMonitor> monitor_;
  PrincipalId alice_, bob_;
  NodeId dir_, obj_, proc_;
};

TEST_F(MediationRingTest, CreditRingPushDrainRoundTrip) {
  CreditRing<int> ring(4);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  std::vector<int> out;
  EXPECT_EQ(ring.DrainBatch(&out, 8), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  // Credits bound in-flight work: the drained items' credits are still out.
  EXPECT_TRUE(ring.TryPush(3));
  EXPECT_TRUE(ring.TryPush(4));
  EXPECT_FALSE(ring.TryPush(5));
  EXPECT_EQ(ring.rejected(), 1u);
  ring.ReleaseCredits(2);
  EXPECT_TRUE(ring.TryPush(5));
  ring.Stop();
  EXPECT_FALSE(ring.TryPush(6));
  out.clear();
  EXPECT_EQ(ring.DrainBatch(&out, 8), 3u);  // stop drains what is queued
  EXPECT_EQ(out, (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(ring.DrainBatch(&out, 8), 0u);  // then signals exit
}

TEST_F(MediationRingTest, CheckRoundTripMatchesPerCallDecisions) {
  MediationRing ring(monitor_.get());
  auto client = ring.NewClient();
  Subject alice = AliceAtBottom();
  Subject bob = BobAtBottom();

  auto allowed_ticket = ring.SubmitCheck(*client, alice, obj_, AccessMode::kRead);
  auto denied_ticket = ring.SubmitCheck(*client, bob, obj_, AccessMode::kRead);
  ASSERT_TRUE(allowed_ticket.ok());
  ASSERT_TRUE(denied_ticket.ok());

  auto allowed = ring.Wait(*client, *allowed_ticket);
  auto denied = ring.Wait(*client, *denied_ticket);
  ASSERT_TRUE(allowed.ok());
  ASSERT_TRUE(denied.ok());
  EXPECT_TRUE(allowed->decision.allowed);
  EXPECT_FALSE(denied->decision.allowed);
  EXPECT_EQ(denied->decision.reason, DenyReason::kDacNoGrant);

  // Same outcomes as the per-call path, and both were counted/audited.
  EXPECT_TRUE(monitor_->Check(alice, obj_, AccessMode::kRead).allowed);
  EXPECT_FALSE(monitor_->Check(bob, obj_, AccessMode::kRead).allowed);
  EXPECT_EQ(monitor_->audit().total_checks(), 4u);
  EXPECT_EQ(monitor_->audit().total_denials(), 2u);
  EXPECT_EQ(ring.submitted(), 2u);
  EXPECT_EQ(ring.completed(), 2u);
}

TEST_F(MediationRingTest, BatchSemanticsMatchPerCallAcrossOutcomes) {
  // Drive CheckBatch directly with a mix of allow / DAC-deny / MAC-deny /
  // not-found and hold it against Check on a twin monitor.
  ReferenceMonitor twin(&ns_, &acls_, &principals_, &labels_);
  SecurityClass high(1, CategorySet(0));
  Subject alice_low = AliceAtBottom();
  Subject bob_low = BobAtBottom();
  Subject alice_high = Subject{alice_, high, 3};
  std::vector<ReferenceMonitor::BatchCheckRequest> requests = {
      {alice_low, obj_, AccessModeSet(AccessMode::kRead)},
      {bob_low, obj_, AccessModeSet(AccessMode::kRead)},
      {alice_high, obj_, AccessModeSet(AccessMode::kWrite)},  // write-down: MAC denies
      {alice_low, NodeId{999999}, AccessModeSet(AccessMode::kRead)},
      {alice_low, obj_, AccessModeSet(AccessMode::kRead)},  // cached by now
  };
  std::vector<Decision> batched(requests.size());
  monitor_->CheckBatch(requests.data(), requests.size(), batched.data());
  for (size_t i = 0; i < requests.size(); ++i) {
    Decision per_call = twin.Check(requests[i].subject, requests[i].node, requests[i].modes);
    EXPECT_EQ(batched[i].allowed, per_call.allowed) << "request " << i;
    EXPECT_EQ(batched[i].reason, per_call.reason) << "request " << i;
  }
  // The batch recorded exactly one decision per request in stats and audit.
  EXPECT_EQ(monitor_->stats().checks_total(), requests.size());
  EXPECT_EQ(monitor_->audit().total_checks(), requests.size());
  EXPECT_EQ(monitor_->audit().total_denials(), 3u);
}

TEST_F(MediationRingTest, InvokeRunsContinuationOnlyWhenAllowed) {
  MediationRing ring(monitor_.get());
  auto client = ring.NewClient();
  Subject alice = AliceAtBottom();
  Subject bob = BobAtBottom();

  int runs = 0;
  auto ok_ticket = ring.SubmitInvoke(*client, alice, proc_, [&runs] {
    ++runs;
    return OkStatus();
  });
  auto denied_ticket = ring.SubmitInvoke(*client, bob, proc_, [&runs] {
    ++runs;
    return OkStatus();
  });
  auto failing_ticket = ring.SubmitInvoke(
      *client, alice, proc_, [] { return InternalError("handler failed"); });
  ASSERT_TRUE(ok_ticket.ok());
  ASSERT_TRUE(denied_ticket.ok());
  ASSERT_TRUE(failing_ticket.ok());

  auto ok = ring.Wait(*client, *ok_ticket);
  auto denied = ring.Wait(*client, *denied_ticket);
  auto failing = ring.Wait(*client, *failing_ticket);
  ASSERT_TRUE(ok.ok() && denied.ok() && failing.ok());
  EXPECT_TRUE(ok->decision.allowed);
  EXPECT_TRUE(ok->invoke_status.ok());
  EXPECT_FALSE(denied->decision.allowed);
  EXPECT_EQ(denied->invoke_status.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(failing->invoke_status.code(), StatusCode::kInternal);
  EXPECT_EQ(runs, 1) << "a denied invoke must never run its continuation";
}

TEST_F(MediationRingTest, WaitHonorsDeadlineThenDelivers) {
  MediationRingOptions options;
  options.cancel_poll_interval_ns = 200'000;  // tight slices keep the test fast
  MediationRing ring(monitor_.get(), options);
  auto client = ring.NewClient();
  StallShard(client->shard(), 50, /*times=*/1);

  Subject alice = AliceAtBottom();
  auto ticket = ring.SubmitCheck(*client, alice, obj_, AccessMode::kRead);
  ASSERT_TRUE(ticket.ok());

  CallOptions wait_options;
  wait_options.deadline_ns = DeadlineIn(2'000'000);  // 2 ms < the 50 ms stall
  auto timed_out = ring.Wait(*client, *ticket, wait_options);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);

  // The completion still arrives; a later unbounded wait consumes it.
  auto completion = ring.Wait(*client, *ticket);
  ASSERT_TRUE(completion.ok());
  EXPECT_TRUE(completion->decision.allowed);
}

TEST_F(MediationRingTest, CancellationWinsOverExpiredDeadline) {
  MediationRing ring(monitor_.get());
  auto client = ring.NewClient();
  std::atomic<bool> cancel{true};
  CallOptions options;
  options.cancel = &cancel;
  options.deadline_ns = 1;  // long past
  // Ticket 42 was never submitted; only cancel/deadline can end this wait,
  // and cancellation must win when both hold.
  auto result = ring.Wait(*client, 42, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(MediationRingTest, CancelFlagFlippedMidWaitUnblocks) {
  MediationRingOptions options;
  options.cancel_poll_interval_ns = 200'000;
  MediationRing ring(monitor_.get(), options);
  auto client = ring.NewClient();
  std::atomic<bool> cancel{false};
  CallOptions wait_options;
  wait_options.cancel = &cancel;
  std::thread flipper([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    cancel.store(true);
  });
  auto result = ring.Wait(*client, 7, wait_options);
  flipper.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(MediationRingTest, StalledWorkerBackpressuresWithResourceExhausted) {
  MediationRingOptions options;
  options.ring_capacity = 4;
  options.completion_capacity = 64;
  MediationRing ring(monitor_.get(), options);
  auto client = ring.NewClient();
  StallShard(client->shard(), 40);

  Subject alice = AliceAtBottom();
  size_t admitted = 0;
  size_t rejected = 0;
  // Far more submissions than capacity: once the stalled shard's credits
  // are gone every further submit fails fast instead of blocking.
  for (int i = 0; i < 64; ++i) {
    auto ticket = ring.SubmitCheck(*client, alice, obj_, AccessMode::kRead);
    if (ticket.ok()) {
      ++admitted;
    } else {
      ASSERT_EQ(ticket.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_LE(admitted, options.ring_capacity + 2 * options.batch_max);
  EXPECT_GT(rejected, 0u);
  EXPECT_GE(ring.stalls(), rejected);

  // Disarm; everything admitted still completes (nothing was lost).
  FailpointRegistry::Instance().DisarmAll();
  uint64_t seen = 0;
  for (uint64_t ticket = 1; ticket <= admitted; ++ticket) {
    CallOptions wait_options;
    wait_options.deadline_ns = DeadlineIn(2'000'000'000);
    auto completion = ring.Wait(*client, ticket, wait_options);
    ASSERT_TRUE(completion.ok()) << "ticket " << ticket;
    ++seen;
  }
  EXPECT_EQ(seen, admitted);
}

TEST_F(MediationRingTest, StalledConsumerExhaustsOnlyItsOwnCompletionCredits) {
  MediationRingOptions options;
  options.shards = 2;
  options.completion_capacity = 4;
  MediationRing ring(monitor_.get(), options);
  auto stuck = ring.NewClient();    // shard 0
  auto healthy = ring.NewClient();  // shard 1
  ASSERT_NE(stuck->shard(), healthy->shard());

  Subject alice = AliceAtBottom();
  // The stuck client never Waits: its 4 completion credits run out.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.SubmitCheck(*stuck, alice, obj_, AccessMode::kRead).ok());
  }
  auto rejected = ring.SubmitCheck(*stuck, alice, obj_, AccessMode::kRead);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(stuck->credit_rejections(), 1u);

  // The healthy client on the other shard is untouched by that stall.
  for (int i = 0; i < 16; ++i) {
    auto ticket = ring.SubmitCheck(*healthy, alice, obj_, AccessMode::kRead);
    ASSERT_TRUE(ticket.ok());
    auto completion = ring.Wait(*healthy, *ticket);
    ASSERT_TRUE(completion.ok());
    EXPECT_TRUE(completion->decision.allowed);
  }

  // Draining one completion returns one credit.
  ASSERT_TRUE(ring.Wait(*stuck, 1).ok());
  EXPECT_TRUE(ring.SubmitCheck(*stuck, alice, obj_, AccessMode::kRead).ok());
}

TEST_F(MediationRingTest, ClientDestructorWaitsOutInFlightWork) {
  MediationRing ring(monitor_.get());
  Subject alice = AliceAtBottom();
  {
    auto client = ring.NewClient();
    StallShard(client->shard(), 10, /*times=*/1);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(ring.SubmitCheck(*client, alice, obj_, AccessMode::kRead).ok());
    }
    // Destroyed with work in flight: the destructor must block until the
    // worker has posted everything, then tear down safely (ASan-verified).
  }
  FailpointRegistry::Instance().DisarmAll();
  EXPECT_EQ(ring.completed(), 8u);
}

TEST_F(MediationRingTest, TelemetryCountersTrackTraffic) {
  MediationRingOptions options;
  options.shards = 2;
  MediationRing ring(monitor_.get(), options);
  auto client = ring.NewClient();
  Subject alice = AliceAtBottom();
  for (int i = 0; i < 12; ++i) {
    auto ticket = ring.SubmitCheck(*client, alice, obj_, AccessMode::kRead);
    ASSERT_TRUE(ticket.ok());
    ASSERT_TRUE(ring.Wait(*client, *ticket).ok());
  }
  EXPECT_EQ(ring.shard_count(), 2u);
  EXPECT_EQ(ring.submitted(), 12u);
  EXPECT_EQ(ring.completed(), 12u);
  EXPECT_GE(ring.batches(), 1u);
  EXPECT_EQ(ring.depth(), 0u);
  EXPECT_EQ(ring.stalls(), 0u);
}

// -- Stress suites (the --quick/--faults sanitizer sweeps target these) -------

class MediationRingStressTest : public MediationRingTest {};

TEST_F(MediationRingStressTest, ProducersAgainstStalledConsumerNeverWedge) {
  MediationRingOptions options;
  options.ring_capacity = 16;
  options.completion_capacity = 32;
  MediationRing ring(monitor_.get(), options);
  auto client = ring.NewClient();
  StallShard(client->shard(), 5);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> exhausted{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Subject subject{alice_, SecurityClass(), static_cast<uint64_t>(100 + p)};
      for (int i = 0; i < kPerProducer; ++i) {
        auto ticket = ring.SubmitCheck(*client, subject, obj_, AccessMode::kRead);
        if (ticket.ok()) {
          admitted.fetch_add(1);
        } else {
          // The only back-pressure signal is kResourceExhausted; a producer
          // is never blocked and never sees another error.
          ASSERT_EQ(ticket.status().code(), StatusCode::kResourceExhausted);
          exhausted.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : producers) {
    t.join();
  }
  EXPECT_GT(exhausted.load(), 0u) << "the stall must produce visible back-pressure";

  // Prove the worker survived: disarm, drain every admitted completion.
  FailpointRegistry::Instance().DisarmAll();
  uint64_t drained = 0;
  for (uint64_t ticket = 1; drained < admitted.load(); ++ticket) {
    CallOptions wait_options;
    wait_options.deadline_ns = DeadlineIn(5'000'000'000);
    auto completion = ring.Wait(*client, ticket, wait_options);
    if (completion.ok()) {
      ++drained;
    }
    ASSERT_LT(ticket, uint64_t{kProducers * kPerProducer + 1});
  }
  EXPECT_EQ(ring.completed(), admitted.load());
}

TEST_F(MediationRingStressTest, DeadlineAndCancelRacesOnTheCompletionWait) {
  MediationRingOptions options;
  options.cancel_poll_interval_ns = 100'000;
  MediationRing ring(monitor_.get(), options);
  auto client = ring.NewClient();
  StallShard(client->shard(), 2);

  Subject alice = AliceAtBottom();
  constexpr int kRounds = 100;
  std::atomic<bool> cancel{false};
  std::atomic<int> delivered{0}, timed_out{0}, cancelled{0};
  std::vector<uint64_t> tickets;
  for (int i = 0; i < kRounds; ++i) {
    auto ticket = ring.SubmitCheck(*client, alice, obj_, AccessMode::kRead);
    if (ticket.ok()) {
      tickets.push_back(*ticket);
    }
  }
  std::thread flipper([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cancel.store(true);
  });
  std::vector<std::thread> waiters;
  std::atomic<size_t> next{0};
  for (int w = 0; w < 3; ++w) {
    waiters.emplace_back([&] {
      for (;;) {
        size_t i = next.fetch_add(1);
        if (i >= tickets.size()) {
          return;
        }
        CallOptions wait_options;
        wait_options.deadline_ns = DeadlineIn(1'000'000 * (i % 7 + 1));
        wait_options.cancel = &cancel;
        auto result = ring.Wait(*client, tickets[i], wait_options);
        if (result.ok()) {
          delivered.fetch_add(1);
        } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
          timed_out.fetch_add(1);
        } else {
          ASSERT_EQ(result.status().code(), StatusCode::kCancelled);
          cancelled.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : waiters) {
    t.join();
  }
  flipper.join();
  // Every wait ended in exactly one of the three outcomes; nothing hung.
  EXPECT_EQ(delivered + timed_out + cancelled, static_cast<int>(tickets.size()));
}

}  // namespace
}  // namespace xsec
