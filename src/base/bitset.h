// A growable bitset used for MAC category sets and principal-membership
// closures. Word-granular operations keep lattice checks cheap: Dominates()
// over category sets is a per-word AND/compare, which experiment F3 measures.

#ifndef XSEC_SRC_BASE_BITSET_H_
#define XSEC_SRC_BASE_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xsec {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t bit_count) { Resize(bit_count); }

  // Grows (never shrinks) the logical size; new bits are zero.
  void Resize(size_t bit_count);

  size_t size_bits() const { return bit_count_; }
  size_t size_words() const { return words_.size(); }

  // Accessors tolerate indices past the current size: Test() of an
  // out-of-range bit is false, Set() grows the set.
  void Set(size_t index);
  void Clear(size_t index);
  bool Test(size_t index) const;

  void ClearAll();
  void SetAll();

  // Number of set bits.
  size_t Count() const;
  bool None() const { return Count() == 0; }

  // True iff every set bit of *this is also set in `other`.
  bool IsSubsetOf(const DynamicBitset& other) const;
  // True iff the sets share no bit.
  bool IsDisjointFrom(const DynamicBitset& other) const;

  // Set algebra; the result is sized to cover both operands.
  DynamicBitset Union(const DynamicBitset& other) const;
  DynamicBitset Intersection(const DynamicBitset& other) const;
  DynamicBitset Difference(const DynamicBitset& other) const;

  void UnionInPlace(const DynamicBitset& other);

  bool operator==(const DynamicBitset& other) const;

  // Stable hash over the set bits (trailing zero words are ignored, so equal
  // sets of different capacities hash identically).
  uint64_t Hash() const;

  // Indices of the set bits, ascending.
  std::vector<size_t> ToIndices() const;

  // "{1,3,7}".
  std::string ToString() const;

 private:
  static constexpr size_t kBitsPerWord = 64;

  // Number of significant words (ignoring trailing zeros).
  size_t SignificantWords() const;

  std::vector<uint64_t> words_;
  size_t bit_count_ = 0;
};

}  // namespace xsec

#endif  // XSEC_SRC_BASE_BITSET_H_
