#!/usr/bin/env python3
"""Gate for the F12 wait-free publication + multi-sink drain figures.

Reads a fresh BENCH_f12.json and enforces the two claims the tentpole
makes about the telemetry publish path:

1. Publisher flatness. With the RCU-swapped epoch pointer, Tick's cost is
   a render plus one pointer push per channel, so fanning out to 64 idle
   kDropOldest subscribers must cost about the same as fanning out to 1:

       ratio = median cpu_time(BM_PublishFanOut/subscribers:64)
             / median cpu_time(BM_PublishFanOut/subscribers:1)

   must be <= --max-publish-ratio (default 1.10, i.e. ~flat within 10%).
   cpu_time is the right metric here: the publisher runs alone and the
   claim is about work *it* does per epoch.

2. Parallel drain. Registering a second audit sink must actually buy
   parallel drain, not serialize behind the first lane. Each bench sink
   sleeps ~20us per record, so lanes overlap their sleeps even on a
   single core and total sink-deliveries/sec should scale:

       speedup = median items_per_second(BM_MultiSinkDrain/sinks:2)
               / median items_per_second(BM_MultiSinkDrain/sinks:1)

   must be >= --min-drain-speedup (default 1.5). items_per_second is
   computed from real time (the bench uses UseRealTime), which is what
   overlapping sleeps improve.

3. Stitch integrity. Every MultiSinkDrain repetition must report
   stitch_violations == 0 — a nonzero counter means a lane emitted
   records out of global sequence order, which no amount of throughput
   excuses.

Both ratios come from the same run on the same machine, so CPU speed and
virtualization noise cancel; there is no committed baseline. Medians over
--benchmark_repetitions keep a single noisy repetition from flipping the
gate (aggregate rows emitted by repetitions are ignored; the median is
taken over the raw iteration rows).

Usage: check_bench_f12.py <fresh.json> [--max-publish-ratio 1.10]
                                       [--min-drain-speedup 1.5]
"""

import argparse
import json
import statistics
import sys

PUBLISH_BASE = "BM_PublishFanOut/subscribers:1"
PUBLISH_WIDE = "BM_PublishFanOut/subscribers:64"
DRAIN_ONE = "BM_MultiSinkDrain/sinks:1/real_time"
DRAIN_TWO = "BM_MultiSinkDrain/sinks:2/real_time"


def load(path):
    """Parses `path` and validates it actually carries benchmark data.

    A missing, empty, or benchmark-less file means the figure run did not
    happen (or crashed after truncating the output); the gate must fail
    loudly rather than let a broken pipeline read as green.
    """
    try:
        with open(path) as f:
            text = f.read()
    except OSError as err:
        raise ValueError(f"{path}: cannot read figures ({err}); "
                         "did bench_f12_subscription run?") from err
    if not text.strip():
        raise ValueError(f"{path}: file is empty — the benchmark run "
                         "produced no output; refusing to pass the gate")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as err:
        raise ValueError(f"{path}: not valid JSON ({err}) — likely a "
                         "benchmark crash mid-write; refusing to pass the "
                         "gate") from err
    if not isinstance(data, dict) or not data.get("benchmarks"):
        raise ValueError(f"{path}: no benchmark entries — refusing to pass "
                         "the gate")
    return data


def rows(data, name):
    """Raw (non-aggregate) repetition rows for benchmark `name`."""
    out = [b for b in data["benchmarks"]
           if b.get("name") == name and b.get("run_type") != "aggregate"]
    if not out:
        raise ValueError(f"benchmark {name} missing from figures — did the "
                         "bench binary change its naming?")
    return out


def median_field(data, name, field):
    values = [float(b[field]) for b in rows(data, name) if field in b]
    if not values:
        raise ValueError(f"benchmark {name} carries no {field} field")
    return statistics.median(values)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="fresh BENCH_f12.json")
    parser.add_argument("--max-publish-ratio", type=float, default=1.10,
                        help="ceiling for 64-subscriber / 1-subscriber "
                             "publisher cpu_time (default 1.10)")
    parser.add_argument("--min-drain-speedup", type=float, default=1.5,
                        help="floor for 2-sink / 1-sink drain throughput "
                             "(default 1.5)")
    args = parser.parse_args()

    try:
        data = load(args.fresh)

        base = median_field(data, PUBLISH_BASE, "cpu_time")
        wide = median_field(data, PUBLISH_WIDE, "cpu_time")
        if base <= 0:
            raise ValueError(f"{PUBLISH_BASE}: nonpositive cpu_time {base}")
        publish_ratio = wide / base

        one = median_field(data, DRAIN_ONE, "items_per_second")
        two = median_field(data, DRAIN_TWO, "items_per_second")
        if one <= 0:
            raise ValueError(f"{DRAIN_ONE}: nonpositive items_per_second "
                             f"{one}")
        drain_speedup = two / one

        stitch = 0.0
        for name in (DRAIN_ONE, DRAIN_TWO):
            for row in rows(data, name):
                stitch += float(row.get("stitch_violations", 0.0))
    except ValueError as err:
        print(f"F12 gate: ERROR: {err}", file=sys.stderr)
        return 1

    print(f"F12 gate: publisher cpu_time 64-sub/1-sub ratio = "
          f"{publish_ratio:.3f} (ceiling {args.max_publish_ratio:.2f})")
    print(f"F12 gate: 2-sink/1-sink drain throughput = "
          f"{drain_speedup:.2f}x (floor {args.min_drain_speedup:.2f}x)")
    print(f"F12 gate: total stitch_violations across drain reps = "
          f"{stitch:.0f}")

    failed = False
    if publish_ratio > args.max_publish_ratio:
        print("F12 gate: FAIL — publisher cost is not flat in subscriber "
              "count; the fan-out step is doing per-channel work beyond a "
              "pointer push (rendering per channel? lock contention?)",
              file=sys.stderr)
        failed = True
    if drain_speedup < args.min_drain_speedup:
        print("F12 gate: FAIL — a second sink did not speed up the drain; "
              "lanes are serializing (shared lock on the delivery path?) "
              "instead of draining in parallel", file=sys.stderr)
        failed = True
    if stitch != 0:
        print("F12 gate: FAIL — a lane emitted records out of global "
              "sequence order; the stitcher's ordering proof is broken",
              file=sys.stderr)
        failed = True
    if failed:
        return 1
    print("F12 gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
