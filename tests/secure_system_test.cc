#include "src/core/secure_system.h"

#include <gtest/gtest.h>

namespace xsec {
namespace {

TEST(SecureSystemTest, BootInstallsServices) {
  SecureSystem sys;
  for (const char* path : {"/svc/fs", "/svc/mbuf", "/svc/threads", "/svc/log", "/svc/vfs",
                           "/fs", "/obj/threads", "/obj/syslog"}) {
    EXPECT_TRUE(sys.name_space().Lookup(path).ok()) << path;
  }
  for (const char* proc : {"/svc/fs/read", "/svc/fs/write", "/svc/mbuf/alloc",
                           "/svc/threads/spawn", "/svc/log/append", "/svc/vfs/read"}) {
    auto node = sys.name_space().Lookup(proc);
    ASSERT_TRUE(node.ok()) << proc;
    EXPECT_EQ(sys.name_space().Get(*node)->kind, NodeKind::kProcedure) << proc;
  }
}

TEST(SecureSystemTest, UsersJoinEveryoneAutomatically) {
  SecureSystem sys;
  auto alice = sys.CreateUser("alice");
  ASSERT_TRUE(alice.ok());
  const DynamicBitset& closure = sys.principals().MembershipClosure(*alice);
  EXPECT_TRUE(closure.Test(sys.everyone().value));
}

TEST(SecureSystemTest, DefaultAclsMakeServicesCallable) {
  SecureSystem sys;
  auto alice = sys.CreateUser("alice");
  Subject subject = sys.Login(*alice, sys.labels().Bottom());
  // Listing the hierarchy and calling services work out of the box.
  auto stats = sys.Invoke(subject, "/svc/mbuf/stats", {});
  EXPECT_TRUE(stats.ok()) << stats.status();
  // Writing anywhere does not.
  EXPECT_EQ(sys.fs().Create(subject, "/fs/forbidden").status().code(),
            StatusCode::kPermissionDenied);
}

TEST(SecureSystemTest, SystemSubjectIsFullyPrivileged) {
  SecureSystem sys;
  (void)sys.labels().DefineLevels({"low", "high"});
  (void)sys.labels().DefineCategory("a");
  Subject root = sys.SystemSubject();
  EXPECT_TRUE(root.security_class == sys.labels().Top());
  EXPECT_EQ(root.principal, sys.system_principal());
}

TEST(SecureSystemTest, LoginProducesDistinctThreads) {
  SecureSystem sys;
  auto alice = sys.CreateUser("alice");
  Subject a = sys.Login(*alice, sys.labels().Bottom());
  Subject b = sys.Login(*alice, sys.labels().Bottom());
  EXPECT_NE(a.thread_id, b.thread_id);
  EXPECT_EQ(a.principal, b.principal);
}

TEST(SecureSystemTest, DuplicateUserRejected) {
  SecureSystem sys;
  ASSERT_TRUE(sys.CreateUser("alice").ok());
  EXPECT_EQ(sys.CreateUser("alice").status().code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(sys.CreateGroup("team").ok());
  EXPECT_EQ(sys.CreateGroup("team").status().code(), StatusCode::kAlreadyExists);
}

TEST(SecureSystemTest, MonitorOptionsPropagate) {
  MonitorOptions options;
  options.audit_policy = AuditPolicy::kAll;
  options.mac_enabled = false;
  SecureSystem sys(options);
  EXPECT_EQ(sys.monitor().audit().policy(), AuditPolicy::kAll);
  EXPECT_FALSE(sys.monitor().options().mac_enabled);
}

TEST(SecureSystemTest, LoginCheckedEnforcesCredentialAndClearance) {
  SecureSystem sys;
  (void)sys.labels().DefineLevels({"low", "mid", "high"});
  (void)sys.labels().DefineCategory("a");
  auto alice = sys.CreateUser("alice");
  ASSERT_TRUE(sys.principals().SetCredential(*alice, "sesame").ok());
  SecurityClass mid = *sys.labels().MakeClass("mid", {"a"});
  ASSERT_TRUE(sys.SetClearance(*alice, mid).ok());

  // Wrong credential.
  EXPECT_EQ(sys.LoginChecked("alice", "wrong", mid).status().code(),
            StatusCode::kPermissionDenied);
  // Within clearance (equal, and strictly below).
  EXPECT_TRUE(sys.LoginChecked("alice", "sesame", mid).ok());
  EXPECT_TRUE(sys.LoginChecked("alice", "sesame", sys.labels().Bottom()).ok());
  // Above clearance: level too high, or extra category.
  EXPECT_EQ(sys.LoginChecked("alice", "sesame", *sys.labels().MakeClass("high", {"a"}))
                .status()
                .code(),
            StatusCode::kPermissionDenied);
  // Unknown users and users without clearance.
  EXPECT_EQ(sys.LoginChecked("ghost", "x", mid).status().code(), StatusCode::kNotFound);
  auto bob = sys.CreateUser("bob");
  ASSERT_TRUE(sys.principals().SetCredential(*bob, "pw").ok());
  // No clearance set: any class goes.
  EXPECT_TRUE(sys.LoginChecked("bob", "pw", sys.labels().Top()).ok());
  EXPECT_EQ(sys.SetClearance(PrincipalId{9999}, mid).code(), StatusCode::kNotFound);
}

TEST(SecureSystemTest, AuditSeesDeniedServiceCalls) {
  SecureSystem sys;
  auto alice = sys.CreateUser("alice");
  Subject subject = sys.Login(*alice, sys.labels().Bottom());
  sys.monitor().audit().Clear();
  (void)sys.fs().Create(subject, "/fs/forbidden");
  auto denials = sys.monitor().audit().Query(
      [](const AuditRecord& r) { return !r.allowed; });
  ASSERT_FALSE(denials.empty());
  EXPECT_EQ(denials.front().principal, *alice);
}

}  // namespace
}  // namespace xsec
