// Umbrella header: the public face of the xsec library.
//
//   #include "src/xsec.h"
//
// pulls in the SecureSystem facade and everything reachable from it (name
// space, principals, ACLs, labels, reference monitor, kernel, services),
// plus the policy-persistence and code-loading helpers. Benchmarks and tests
// include the narrow headers directly; applications usually only need this.

#ifndef XSEC_SRC_XSEC_H_
#define XSEC_SRC_XSEC_H_

#include "src/codeload/code_loader.h"
#include "src/core/applet_example.h"
#include "src/core/secure_system.h"
#include "src/policy/policy_io.h"

#endif  // XSEC_SRC_XSEC_H_
