# Empty compiler generated dependencies file for bench_f4_namespace.
# This may be replaced when dependencies are built.
