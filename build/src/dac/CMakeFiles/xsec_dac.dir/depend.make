# Empty dependencies file for xsec_dac.
# This may be replaced when dependencies are built.
