#include "src/baselines/afs_model.h"

#include "src/naming/path.h"

namespace xsec {
namespace {

// Collapses a requested mode onto what AFS rights can express.
AccessMode Collapse(AccessMode mode) {
  switch (mode) {
    case AccessMode::kWriteAppend:
    case AccessMode::kExtend:
      return AccessMode::kWrite;  // no append-only or extend right
    case AccessMode::kExecute:
      return AccessMode::kRead;   // executing needs 'r'
    default:
      return mode;
  }
}

bool AceMatches(const BaselineAce& ace, const BaselineSubject& subject) {
  if (ace.is_group) {
    return subject.gids.count(ace.id) != 0;
  }
  return subject.uid == ace.id;
}

}  // namespace

bool AfsModel::Allows(const BaselineWorld& world, const BaselineSubject& subject,
                      const BaselineObject& object, AccessMode mode) const {
  // Directory granularity: the governing ACL is the parent directory's.
  const BaselineObject* governing = &object;
  if (object.category != ObjectCategory::kDirectory) {
    const BaselineObject* parent = world.FindObject(ParentPath(object.path));
    if (parent != nullptr) {
      governing = parent;
    }
  }
  AccessMode effective = Collapse(mode);
  bool allowed = false;
  for (const BaselineAce& ace : governing->acl) {
    if (!AceMatches(ace, subject) || !ace.modes.Contains(effective)) {
      continue;
    }
    if (!ace.allow) {
      return false;  // AFS negative rights override
    }
    allowed = true;
  }
  return allowed;
}

}  // namespace xsec
