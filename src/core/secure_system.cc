#include "src/core/secure_system.h"

#include <cassert>

#include "src/base/strings.h"

namespace xsec {

SecureSystem::SecureSystem(MonitorOptions options) : kernel_(options) {
  fs_ = std::make_unique<MemFs>(&kernel_);
  mbufs_ = std::make_unique<MbufPool>(&kernel_);
  threads_ = std::make_unique<ThreadService>(&kernel_);
  log_ = std::make_unique<LogService>(&kernel_);
  vfs_ = std::make_unique<VfsService>(&kernel_);
  net_ = std::make_unique<NetStack>(&kernel_);
  stats_ = std::make_unique<StatsService>(&kernel_);
  Status status = InstallDefaults();
  assert(status.ok() && "SecureSystem boot failed");
  (void)status;
}

Status SecureSystem::InstallDefaults() {
  everyone_ = *kernel_.principals().CreateGroup("everyone");

  XSEC_RETURN_IF_ERROR(fs_->Install());
  XSEC_RETURN_IF_ERROR(mbufs_->Install());
  XSEC_RETURN_IF_ERROR(threads_->Install());
  XSEC_RETURN_IF_ERROR(log_->Install());
  XSEC_RETURN_IF_ERROR(vfs_->Install());
  XSEC_RETURN_IF_ERROR(net_->Install());
  XSEC_RETURN_IF_ERROR(stats_->Install());

  NameSpace& ns = kernel_.name_space();
  AclStore& acls = kernel_.acls();
  auto set_acl = [&](std::string_view path, Acl acl) -> Status {
    auto node = ns.Lookup(path);
    if (!node.ok()) {
      return node.status();
    }
    return ns.SetAclRef(*node, acls.Create(std::move(acl)));
  };

  // Defaults: the hierarchy is browsable and services are callable by
  // everyone; individual nodes restrict from there. Nothing is writable or
  // extensible by default (fail-closed for mutation).
  Acl listable;
  listable.AddEntry(
      AclEntry{AclEntryType::kAllow, everyone_, AccessMode::kList | AccessMode::kRead});
  XSEC_RETURN_IF_ERROR(set_acl("/", std::move(listable)));

  Acl callable;
  callable.AddEntry(AclEntry{AclEntryType::kAllow, everyone_,
                             AccessMode::kList | AccessMode::kExecute});
  XSEC_RETURN_IF_ERROR(set_acl("/svc", std::move(callable)));

  return OkStatus();
}

StatusOr<PrincipalId> SecureSystem::CreateUser(std::string_view name) {
  auto user = kernel_.principals().CreateUser(name);
  if (!user.ok()) {
    return user;
  }
  XSEC_RETURN_IF_ERROR(kernel_.principals().AddMember(everyone_, *user));
  return user;
}

StatusOr<PrincipalId> SecureSystem::CreateGroup(std::string_view name) {
  return kernel_.principals().CreateGroup(name);
}

Subject SecureSystem::Login(PrincipalId principal, const SecurityClass& security_class) {
  return kernel_.CreateSubject(principal, security_class);
}

StatusOr<Subject> SecureSystem::LoginChecked(std::string_view name,
                                             std::string_view credential,
                                             const SecurityClass& security_class) {
  auto user = kernel_.principals().Authenticate(name, credential);
  if (!user.ok()) {
    return user.status();
  }
  const SecurityClass* clearance = kernel_.labels().ClearanceOf(user->value);
  if (clearance != nullptr && !clearance->Dominates(security_class)) {
    return PermissionDeniedError(
        StrFormat("requested class %s exceeds the clearance of '%s'",
                  kernel_.labels().ClassToString(security_class).c_str(),
                  std::string(name).c_str()));
  }
  return kernel_.CreateSubject(*user, security_class);
}

Status SecureSystem::SetClearance(PrincipalId user, const SecurityClass& clearance) {
  if (kernel_.principals().Get(user) == nullptr) {
    return NotFoundError("no such principal");
  }
  kernel_.labels().SetClearance(user.value, clearance);
  return OkStatus();
}

}  // namespace xsec
