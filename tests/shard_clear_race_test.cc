// Regression tests for the Clear()/in-flight-check race (ISSUE 8, satellite):
// a CheckBatch (or single check) that captured its stamps before a
// DecisionCache::Clear() must not be able to re-insert its pre-clear decision
// afterwards. Clear() bumps clear_epoch_ BEFORE wiping, and the epoch-carrying
// Insert refuses under the shard lock when the epoch moved — so a stale
// insert either lands before the wipe (and is wiped) or refuses. Both
// interleavings leave the cache empty of pre-clear decisions, which makes the
// property deterministically testable despite the race.
//
// This file rides in xsec_ring_tests alongside mediation_ring_test.cc so the
// sanitizer jobs (TSan in particular) run the concurrent hammer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/monitor/decision_cache.h"
#include "src/monitor/mediation_ring.h"
#include "src/monitor/reference_monitor.h"

namespace xsec {
namespace {

Subject TestSubject(PrincipalId p, uint64_t thread_id = 1) {
  return Subject{p, SecurityClass(), thread_id};
}

TEST(ShardClearRaceTest, StaleEpochInsertIsRefused) {
  DecisionCache cache(64);
  Subject subject = TestSubject(PrincipalId{1});
  CacheStamps stamps;
  DecisionCache::CachedDecision out;

  // An insert carrying an epoch captured before Clear() must be a no-op.
  uint64_t stale_epoch = cache.clear_epoch();
  cache.Clear();
  cache.Insert(subject, NodeId{1}, AccessModeSet(AccessMode::kRead), stamps,
               DecisionCache::CachedDecision{true, DenyReason::kNone}, stale_epoch);
  EXPECT_FALSE(cache.Lookup(subject, NodeId{1}, AccessModeSet(AccessMode::kRead), stamps, &out));

  // The same insert with a current epoch lands.
  cache.Insert(subject, NodeId{1}, AccessModeSet(AccessMode::kRead), stamps,
               DecisionCache::CachedDecision{true, DenyReason::kNone}, cache.clear_epoch());
  EXPECT_TRUE(cache.Lookup(subject, NodeId{1}, AccessModeSet(AccessMode::kRead), stamps, &out));
  EXPECT_TRUE(out.allowed);
}

TEST(ShardClearRaceTest, ClearRacingInsertNeverResurrectsPreClearDecision) {
  // The determinism argument: whatever the interleaving, an Insert whose
  // epoch predates a Clear() is unobservable once BOTH the Insert and the
  // Clear() have returned. Either the Insert landed first and the wipe
  // removed it, or it saw the bumped epoch and refused. So the post-join
  // Lookup below must miss on EVERY iteration — under TSan and otherwise.
  constexpr int kRounds = 400;
  DecisionCache cache(64);
  Subject subject = TestSubject(PrincipalId{2});
  CacheStamps stamps;

  for (int round = 0; round < kRounds; ++round) {
    NodeId node{static_cast<uint32_t>(round + 1)};
    uint64_t pre_clear_epoch = cache.clear_epoch();
    std::atomic<bool> go{false};
    std::thread inserter([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      cache.Insert(subject, node, AccessModeSet(AccessMode::kRead), stamps,
                   DecisionCache::CachedDecision{true, DenyReason::kNone}, pre_clear_epoch);
    });
    go.store(true, std::memory_order_release);
    cache.Clear();
    inserter.join();

    DecisionCache::CachedDecision out;
    ASSERT_FALSE(cache.Lookup(subject, node, AccessModeSet(AccessMode::kRead), stamps, &out))
        << "round " << round << ": a pre-clear decision survived Clear()";
  }
}

// The end-to-end shape the fix exists for: CheckBatch captures its stamp set
// and clear epoch once at batch start; a concurrent Clear() plus ACL
// tightening must not let the batch re-install its pre-clear allows. The
// hammer runs ring submissions against cache clears and policy mutations,
// then proves quiescent agreement with the final (deny) policy.
TEST(ShardClearRaceTest, RingBatchesRacingClearConvergeOnFinalPolicy) {
  NameSpace ns;
  AclStore acls;
  PrincipalRegistry principals;
  LabelAuthority labels;
  MonitorOptions moptions;
  moptions.audit_policy = AuditPolicy::kOff;
  ReferenceMonitor monitor(&ns, &acls, &principals, &labels, moptions);

  PrincipalId user = *principals.CreateUser("u");
  constexpr int kNodes = 8;
  std::vector<NodeId> nodes;
  std::vector<AclStore::AclRef> refs;
  for (int i = 0; i < kNodes; ++i) {
    NodeId node = *ns.BindPath("/t" + std::to_string(i) + "/obj", NodeKind::kObject, user);
    Acl acl;
    acl.AddEntry({AclEntryType::kAllow, user, AccessModeSet(AccessMode::kRead)});
    AclStore::AclRef ref = acls.Create(std::move(acl), ns.ShardOf(node));
    ASSERT_TRUE(ns.SetAclRef(node, ref).ok());
    nodes.push_back(node);
    refs.push_back(ref);
  }

  MediationRingOptions options;
  options.shards = 2;
  MediationRing ring(&monitor, options);

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      auto client = ring.NewClient();
      uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        NodeId node = nodes[(i + t) % kNodes];
        auto ticket =
            ring.SubmitCheck(*client, TestSubject(user, t + 1), node, AccessMode::kRead);
        if (ticket.ok()) {
          (void)ring.Wait(*client, *ticket);
        }
        ++i;
      }
    });
  }
  std::thread clearer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      monitor.cache().Clear();
      std::this_thread::yield();
    }
  });

  // Tighten policy under load: strip the allow entry from every node, with
  // cache clears racing the in-flight batches the whole time.
  for (int i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(acls.Replace(refs[i], Acl()).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) {
    t.join();
  }
  clearer.join();

  // Quiescent: every node now denies, and no raced batch left a stale allow
  // behind — a final Clear()-free probe must agree with the final policy.
  for (NodeId node : nodes) {
    Decision d = monitor.Check(TestSubject(user), node, AccessMode::kRead);
    EXPECT_FALSE(d.allowed) << "node " << node.value
                            << ": stale pre-clear allow resurrected into the cache";
  }
}

}  // namespace
}  // namespace xsec
