#include "src/base/status.h"

#include <gtest/gtest.h>

namespace xsec {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = PermissionDeniedError("no execute access");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(s.message(), "no execute access");
  EXPECT_EQ(s.ToString(), "PERMISSION_DENIED: no execute access");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(PermissionDeniedError("x").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(NotFoundError("a"), NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == PermissionDeniedError("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kPermissionDenied), "PERMISSION_DENIED");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValueWorks) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

Status Helper(bool fail) {
  XSEC_RETURN_IF_ERROR(fail ? InternalError("inner") : OkStatus());
  return OkStatus();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_EQ(Helper(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace xsec
