// Lightweight status and status-or-value types used across xsec.
//
// The library is exception-free: every fallible operation returns a Status or
// a StatusOr<T>. Codes deliberately mirror the small set of conditions an
// access-controlled system produces; kPermissionDenied is the load-bearing one.

#ifndef XSEC_SRC_BASE_STATUS_H_
#define XSEC_SRC_BASE_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace xsec {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kFailedPrecondition,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
  // The caller withdrew the request (cooperative cancellation), as opposed
  // to kDeadlineExceeded where a time bound expired.
  kCancelled,
  // The target exists and the caller is authorized, but the service is
  // temporarily refusing work: a quarantined extension answering fail-fast,
  // or the monitor in lockdown. Retryable once the condition clears, unlike
  // kPermissionDenied (a policy decision) or kResourceExhausted (a full
  // queue the caller can drain).
  kUnavailable,
};

// Human-readable name of a status code ("OK", "PERMISSION_DENIED", ...).
std::string_view StatusCodeName(StatusCode code);

// A status is a code plus an optional diagnostic message. The message is for
// humans (audit records, test failures); decision logic must branch on the
// code only.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "PERMISSION_DENIED: no execute access on /svc/fs/read".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.ToString(); }

// Convenience constructors, mirroring absl::*Error.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status PermissionDeniedError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status DeadlineExceededError(std::string message);
Status CancelledError(std::string message);
Status UnavailableError(std::string message);

// Either a value or a non-OK status. Accessing value() on an error aborts in
// debug builds; callers must check ok() first.
template <typename T>
class StatusOr {
 public:
  StatusOr(const T& value) : status_(OkStatus()), value_(value) {}  // NOLINT: implicit
  StatusOr(T&& value) : status_(OkStatus()), value_(std::move(value)) {}  // NOLINT: implicit
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT: implicit
    assert(!status_.ok() && "StatusOr constructed from OK status without a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace xsec

// Propagates a non-OK Status from an expression, absl-style.
#define XSEC_RETURN_IF_ERROR(expr)        \
  do {                                    \
    ::xsec::Status _xsec_st = (expr);     \
    if (!_xsec_st.ok()) return _xsec_st;  \
  } while (0)

#endif  // XSEC_SRC_BASE_STATUS_H_
